"""CI smoke check: span tracing over a lossy fleet must cost nothing.

Runs the same seeded guided-GA campaign (noc-frequency) twice:

1. inline, single process, tracing **off** — the reference run;
2. through a live :class:`~repro.distributed.FleetCoordinator` with two
   real ``nautilus worker`` subprocesses and tracing **on**, one worker
   SIGKILLed the moment it is holding dispatched tasks.

The traced fleet run must produce a convergence curve bit-identical to
the untraced inline run — the span layer consumes zero RNG draws and
fault-tolerant re-dispatch never changes what the search sees. On top of
that the span tree itself is checked: accounting closes (every span
inside its parent's window, every dispatched task owned by exactly one
task span even across SIGKILL retries and duplicate results), the phase
partition covers >=95% of each generation's wall clock, and the Perfetto
export is valid trace-event JSON with one complete event per span.

Usage::

    PYTHONPATH=src python benchmarks/smoke_trace.py
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

from repro.core import DatasetEvaluator, GAConfig, GeneticSearch
from repro.core.evalstack import EvaluationStack
from repro.distributed import FleetCoordinator, RetryPolicy
from repro.obs import (
    perfetto_export,
    phase_budget,
    validate_accounting,
)
from repro.queries import QUERIES, build_hints, load_dataset, resolve_objective

SRC_DIR = Path(__file__).resolve().parent.parent / "src"
QUERY = "noc-frequency"
SEED = 3
GENERATIONS = 10


def _build_search(dataset, evaluator, tracing: bool):
    query = QUERIES[QUERY]
    objective, hint_kind = resolve_objective(query)
    return GeneticSearch(
        dataset.space,
        evaluator,
        objective,
        GAConfig(generations=GENERATIONS, seed=SEED, tracing=tracing),
        hints=build_hints(hint_kind),
    )


def _curve(result):
    return [
        (r.generation, r.distinct_evaluations, r.best_raw, r.best_score)
        for r in result.records
    ]


def _spawn_worker(coordinator, name: str) -> subprocess.Popen:
    env = dict(os.environ, PYTHONPATH=str(SRC_DIR))
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "worker",
            "--connect", coordinator.address,
            "--spaces", "noc", "--name", name,
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    deadline = time.monotonic() + 30.0
    while name not in coordinator.workers:
        if time.monotonic() > deadline:
            process.kill()
            raise AssertionError(f"worker {name} never registered")
        time.sleep(0.01)
    return process


def _kill_mid_run(coordinator, victim: subprocess.Popen, done: threading.Event):
    """SIGKILL the victim once it is actually holding dispatched tasks."""
    while not done.is_set():
        info = coordinator.workers.get("victim")
        if info is not None and info.in_flight > 0:
            break
        time.sleep(0.001)
    os.kill(victim.pid, signal.SIGKILL)


def _check_tree(spans, distinct_evaluations: int) -> None:
    closed = [s for s in spans if s["end_s"] is not None]
    assert closed, "traced run recorded no spans"

    report = validate_accounting(spans)
    assert report["ok"], "span accounting broken:\n" + "\n".join(
        report["errors"]
    )
    assert report["open_spans"] == 0, (
        f"{report['open_spans']} spans never closed"
    )

    # One owning task span per dispatched task, even through the SIGKILL:
    # double ownership is flagged by validate_accounting above, and every
    # distinct evaluation the fleet served must be owned by some task span.
    task_spans = [s for s in spans if s["name"] == "task"]
    owned = {s["attrs"].get("task") for s in task_spans}
    assert len(owned) == len(task_spans), "a task is owned by two spans"
    assert len(task_spans) >= distinct_evaluations, (
        f"only {len(task_spans)} task spans for "
        f"{distinct_evaluations} distinct evaluations"
    )
    workers = {s["attrs"].get("worker") for s in task_spans}
    assert workers - {None, ""}, "task spans carry no worker attribution"

    budget = phase_budget(spans)
    assert budget["coverage"] >= 0.95, (
        f"phase partition covers only {budget['coverage']:.1%} "
        "of the generation wall clock"
    )

    doc = perfetto_export(spans)
    encoded = json.dumps(doc)  # must be valid trace-event JSON
    events = [e for e in json.loads(encoded)["traceEvents"] if e["ph"] == "X"]
    assert len(events) == len(closed), (
        f"{len(events)} complete events for {len(closed)} closed spans"
    )
    assert all(e["dur"] >= 0 and e["ts"] >= 0 for e in events)

    retries = sum(1 for s in spans if s["name"] == "retry")
    print(
        f"  spans:   {len(closed)} closed, {len(task_spans)} tasks on "
        f"{sorted(w for w in workers if w)}, {retries} retries, "
        f"coverage={budget['coverage']:.1%}"
    )


def main() -> int:
    dataset = load_dataset(QUERY.split("-")[0])

    inline_stack = EvaluationStack(DatasetEvaluator(dataset))
    inline = _build_search(dataset, inline_stack, tracing=False).run()
    print(
        f"  inline:  best={inline.best.score:.6g} "
        f"distinct={inline.distinct_evaluations} (tracing off)"
    )

    coordinator = FleetCoordinator(
        policy=RetryPolicy(
            task_timeout_s=30.0,
            heartbeat_interval_s=0.1,
            heartbeat_timeout_s=2.0,
        )
    ).start()
    victim = survivor = None
    try:
        victim = _spawn_worker(coordinator, "victim")
        survivor = _spawn_worker(coordinator, "survivor")
        fleet_stack = EvaluationStack(
            DatasetEvaluator(dataset), backend="fleet", fleet=coordinator
        )
        done = threading.Event()
        killer = threading.Thread(
            target=_kill_mid_run, args=(coordinator, victim, done), daemon=True
        )
        killer.start()
        search = _build_search(dataset, fleet_stack, tracing=True)
        fleet = search.run()
        done.set()
        killer.join(10.0)
        victim.wait(10.0)

        assert fleet.best.score == inline.best.score, (
            f"best score drifted under tracing: fleet={fleet.best.score!r} "
            f"inline={inline.best.score!r}"
        )
        assert fleet.best_raw == inline.best_raw
        assert fleet.distinct_evaluations == inline.distinct_evaluations
        assert _curve(fleet) == _curve(inline), (
            "tracing or the fleet perturbed the seeded curve"
        )
        print(
            f"  fleet:   best={fleet.best.score:.6g} "
            f"distinct={fleet.distinct_evaluations} (tracing on)"
        )

        _check_tree(search.spans(), fleet.distinct_evaluations)
        print(
            "  ok: SIGKILLed worker mid-run under tracing; curve "
            "bit-identical, span accounting closed, Perfetto export valid"
        )
    finally:
        for process in (victim, survivor):
            if process is not None and process.poll() is None:
                process.kill()
                process.wait(10.0)
        coordinator.stop()
    return 0


if __name__ == "__main__":
    sys.exit(main())
