"""CI smoke check: every bundled hint set survives the JSON wire format.

Round-trips each hint kind in the query registry through
serialize -> validate-against-its-space -> deserialize and demands full
structural equality, at the default confidence and at an override. A
failure means the schema can no longer express something a bundled hint
factory produces (a new channel, a non-JSON-safe domain value), which
would silently break ``nautilus submit --hints`` and inline campaign
hints before any test that exercises the service notices.

Usage::

    PYTHONPATH=src python benchmarks/smoke_hints_schema.py
"""

from __future__ import annotations

import json
import sys

from repro.core import hintset_from_json, hintset_to_json
from repro.queries import QUERIES, build_hints, load_dataset


def main() -> int:
    failures = []
    checked = 0
    for query_name in sorted(QUERIES):
        query = QUERIES[query_name]
        dataset = load_dataset(query.space)
        for confidence in (None, 0.25):
            hints = build_hints(query.hint_kind, confidence)
            # Through real JSON text, not just dicts — what rides over HTTP
            # and hints files.
            wire = json.loads(json.dumps(hintset_to_json(hints)))
            restored = hintset_from_json(wire, space=dataset.space)
            label = (
                f"{query_name}/{query.hint_kind}"
                f"{'' if confidence is None else f'@{confidence}'}"
            )
            if restored != hints:
                failures.append(f"  {label}: round trip not lossless")
                continue
            checked += 1
            print(
                f"  ok {label}: {len(hints.params)} hinted params "
                f"round-trip losslessly"
            )
    if failures:
        print("hint sets no longer survive the JSON schema:")
        print("\n".join(failures))
        return 1
    print(f"all {checked} hint-set round trips match")
    return 0


if __name__ == "__main__":
    sys.exit(main())
