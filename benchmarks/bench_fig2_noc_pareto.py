"""Figure 2: area/power vs peak bisection bandwidth for 64-endpoint NoCs.

Paper: eight topology families on a commercial 65nm node, with "2-3 orders
of magnitude of variation across all presented metrics (power, area,
performance)". Claims reproduced: all eight families build; richer
topologies (fat tree) buy more bisection bandwidth at more area/power than
rings; the clouds span multiple orders of magnitude.
"""

from repro.experiments import figure2


def test_fig2_noc_pareto(benchmark, publish):
    area_fig, power_fig = benchmark.pedantic(figure2, rounds=1, iterations=1)
    publish(area_fig, logx=True, logy=True)
    publish(power_fig, logx=True, logy=True)

    assert set(area_fig.series) == {
        "ring",
        "double_ring",
        "concentrated_ring",
        "concentrated_double_ring",
        "mesh",
        "torus",
        "fat_tree",
        "butterfly",
    }
    # 2-3 orders of magnitude of variation (paper Section 1).
    assert area_fig.notes["bw_span_orders"] >= 2.0
    assert power_fig.notes["bw_span_orders"] >= 2.0
    assert area_fig.notes["x_span_orders"] >= 1.5

    def peak_bw(figure, family):
        return max(y for _, y in figure.series[family])

    # Topology-richness ordering of achievable bisection bandwidth.
    assert (
        peak_bw(area_fig, "ring")
        < peak_bw(area_fig, "mesh")
        < peak_bw(area_fig, "torus")
        < peak_bw(area_fig, "fat_tree")
    )
