"""Extension: the hint taxonomy on a third IP domain (FIR filters).

The paper evaluates two generators (NoC, FFT) and claims generality of the
approach. This bench runs the same three-way comparison on a domain the
paper only gestures at ("signal processing, arithmetic units"): a 63-tap
low-pass FIR generator whose stopband attenuation is computed from the
quantized coefficients. Claims checked: the guided variants converge
severalfold cheaper on the minimize-area query, with a statistically
significant difference, and the quality-constrained composite query
(min area subject to stopband >= 50 dB) lands on a compliant design.
"""

from repro.analysis import compare_engines
from repro.core import DatasetEvaluator, GAConfig, GeneticSearch, minimize
from repro.dsp import fir_area_hints
from repro.experiments import run_many

RUNS = 40
GENERATIONS = 60


def _sweep(dataset):
    objective = minimize("luts")

    def factory(hints, label):
        def build(seed):
            return GeneticSearch(
                dataset.space,
                DatasetEvaluator(dataset),
                objective,
                GAConfig(generations=GENERATIONS, seed=seed),
                hints=hints,
                label=label,
            )

        return build

    return {
        "baseline": run_many(factory(None, "baseline"), RUNS, label="baseline"),
        "weak": run_many(
            factory(fir_area_hints(0.35), "weak"), RUNS, label="weak"
        ),
        "strong": run_many(
            factory(fir_area_hints(0.8), "strong"), RUNS, label="strong"
        ),
    }


def test_ext_fir_domain(benchmark, publish):
    from repro.analysis import FigureSeries
    from repro.dataset import fir_dataset

    dataset = fir_dataset()
    results = benchmark.pedantic(lambda: _sweep(dataset), rounds=1, iterations=1)
    best = dataset.best_value(minimize("luts"))
    threshold = 1.02 * best

    figure = FigureSeries(
        "figE1",
        "FIR (extension): Minimize # LUTs",
        "# Designs Evaluated",
        "LUTs",
    )
    for label, result in results.items():
        figure.add(label, result.mean_curve())
        figure.note(f"cross[{label}]", result.curve_cross(threshold))
    comparison = compare_engines(results["strong"], results["baseline"], threshold)
    figure.note("strong_vs_baseline", comparison.verdict())
    publish(figure)

    strong_cross = figure.notes["cross[strong]"]
    baseline_cross = figure.notes["cross[baseline]"]
    assert strong_cross is not None and baseline_cross is not None
    assert baseline_cross / strong_cross > 2.0  # severalfold, as in fig4/6
    assert comparison.significant
