"""Ablation: the confidence hint (paper Section 3).

"Setting low confidence values will make the algorithm behave more
similarly to the baseline GA, while setting high confidence values ...
will cause the algorithm to perform very directed optimization."

Sweeps confidence from 0 to ~1 on the Figure 4 query and checks:
* confidence 0 behaves like the baseline (same convergence cost band);
* higher confidence buys faster convergence to the 1% bar;
* even at maximal confidence the search still converges (stochasticity is
  preserved — hints are probabilistic, footnote 1).
"""

from repro.core import DatasetEvaluator, GAConfig, GeneticSearch, maximize
from repro.experiments import run_many
from repro.noc import frequency_hints

RUNS = 24
GENERATIONS = 80
CONFIDENCES = (0.0, 0.25, 0.5, 0.8, 0.97)


def _sweep(dataset):
    objective = maximize("fmax_mhz")
    threshold = 0.99 * dataset.best_value(objective)

    def factory(confidence):
        hints = frequency_hints(confidence) if confidence is not None else None

        def build(seed):
            return GeneticSearch(
                dataset.space,
                DatasetEvaluator(dataset),
                objective,
                GAConfig(generations=GENERATIONS, seed=seed),
                hints=hints,
            )

        return build

    rows = {"baseline": run_many(factory(None), RUNS).curve_cross(threshold)}
    for confidence in CONFIDENCES:
        rows[f"conf={confidence}"] = run_many(
            factory(confidence), RUNS
        ).curve_cross(threshold)
    return rows


def test_ablation_confidence(benchmark, noc_dataset):
    rows = benchmark.pedantic(lambda: _sweep(noc_dataset), rounds=1, iterations=1)
    print()
    for label, cross in rows.items():
        print(f"  {label:12s} mean-curve crosses 1% bar at {cross} evals")

    baseline = rows["baseline"]
    zero_conf = rows["conf=0.0"]
    assert baseline is not None and zero_conf is not None
    # Confidence 0 == baseline behaviour (same cost band).
    assert abs(zero_conf - baseline) / baseline < 0.35
    # Guided confidence levels beat the baseline...
    assert rows["conf=0.8"] < baseline
    # ...and even near-total trust still converges.
    assert rows["conf=0.97"] is not None
