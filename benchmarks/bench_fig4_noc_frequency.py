"""Figure 4: maximize frequency in the NoC design space.

Paper (40-run averages, 80 generations, non-expert hints from an 80-design
sweep): "The baseline GA requires about 2.8x and 1.8x the number of
synthesis jobs [vs strongly/weakly guided Nautilus] to converge to a
solution within 1% of the best solution", and the Nautilus curves stop at
fewer total synthesized designs. Claims reproduced: both guided variants
converge to the 1% bar severalfold earlier than the baseline and synthesize
fewer designs overall.
"""

from repro.experiments import figure4

RUNS = 40
GENERATIONS = 80


def test_fig4_noc_frequency(benchmark, noc_dataset, publish):
    figure = benchmark.pedantic(
        lambda: figure4(noc_dataset, runs=RUNS, generations=GENERATIONS),
        rounds=1,
        iterations=1,
    )
    publish(figure)

    speedup_strong = figure.notes["speedup_strong"]
    speedup_weak = figure.notes["speedup_weak"]
    # Paper: 2.8x (strong) and 1.8x (weak). Shape bar: clearly >1 with the
    # strong variant at least ~2x.
    assert speedup_strong is not None and speedup_strong > 2.0
    assert speedup_weak is not None and speedup_weak > 1.3

    # Guided runs synthesize fewer designs over the same 80 generations
    # ("the Nautilus lines require fewer designs to be synthesized").
    assert (
        figure.notes["total_evals[strong]"] < figure.notes["total_evals[baseline]"]
    )

    # All three variants end within a few percent of the space optimum.
    best = figure.notes["space_best"]
    for label, points in figure.series.items():
        assert points[-1][1] > 0.975 * best, label
