"""CI smoke check: distinct-evaluation counts must be bit-stable.

Runs a reduced fig6-style workload (fft-luts, baseline and nautilus
engines, seeds 0-2, 20 generations) and compares every run's distinct
design-evaluation count and final best metric against the checked-in
baseline in ``benchmarks/baselines/eval_counts.json``.

The counts are the x-axis of every figure in the paper — the number of
synthesis jobs a search pays for. Any refactor of the evaluation pipeline
must leave them bit-identical; this script failing means search behavior
(or its accounting) changed and the figures are no longer comparable to
previous revisions.

Usage::

    PYTHONPATH=src python benchmarks/smoke_eval_counts.py             # check
    PYTHONPATH=src python benchmarks/smoke_eval_counts.py --update    # rebaseline
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.core import DatasetEvaluator, GAConfig, GeneticSearch
from repro.queries import QUERIES, build_hints, load_dataset, resolve_objective

BASELINE_PATH = Path(__file__).parent / "baselines" / "eval_counts.json"
QUERY = "fft-luts"
ENGINES = ("baseline", "nautilus")
SEEDS = (0, 1, 2)
GENERATIONS = 20


def run_workload() -> dict[str, dict]:
    query = QUERIES[QUERY]
    dataset = load_dataset(query.space)
    objective, hint_kind = resolve_objective(query)
    results = {}
    for engine in ENGINES:
        for seed in SEEDS:
            hints = build_hints(hint_kind) if engine == "nautilus" else None
            search = GeneticSearch(
                dataset.space,
                DatasetEvaluator(dataset),
                objective,
                GAConfig(generations=GENERATIONS, seed=seed),
                hints=hints,
            )
            result = search.run()
            results[f"{QUERY}/{engine}/{seed}"] = {
                "distinct_evaluations": result.distinct_evaluations,
                "best_raw": result.best_raw,
            }
    return results


def main(argv: list[str]) -> int:
    results = run_workload()
    if "--update" in argv:
        BASELINE_PATH.parent.mkdir(parents=True, exist_ok=True)
        BASELINE_PATH.write_text(json.dumps(results, indent=2) + "\n")
        print(f"baseline written to {BASELINE_PATH}")
        return 0
    expected = json.loads(BASELINE_PATH.read_text())
    failures = []
    for key in sorted(expected):
        want, got = expected[key], results.get(key)
        if got != want:
            failures.append(f"  {key}: expected {want}, got {got}")
        else:
            print(f"  ok {key}: {want['distinct_evaluations']} distinct evals")
    if failures:
        print("distinct-evaluation counts drifted from the baseline:")
        print("\n".join(failures))
        print("(if the change is intentional, rerun with --update)")
        return 1
    print(f"all {len(expected)} runs match {BASELINE_PATH.name}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
