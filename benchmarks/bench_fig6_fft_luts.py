"""Figure 6: minimize LUTs in the FFT design space (expert hints).

Paper (40-run averages): all three methods converge to about the same
minimum (~540 LUTs); strongly guided Nautilus reaches the optimum after
~101 synthesized designs vs ~463 for the baseline (4.6x); to the relaxed
2x-minimum goal, 23.6 vs 78.9 designs; random sampling would need ~11,921.
Claims reproduced: same-minimum convergence for the guided variants, a
severalfold strong-vs-baseline gap at the optimum bar, and a large
GA-vs-random gap at the relaxed bar.
"""

from repro.experiments import figure6

RUNS = 40
GENERATIONS = 80


def test_fig6_fft_luts(benchmark, fft_ds, publish):
    figure = benchmark.pedantic(
        lambda: figure6(fft_ds, runs=RUNS, generations=GENERATIONS),
        rounds=1,
        iterations=1,
    )
    publish(figure)

    best = figure.notes["space_best"]
    # Paper's minimum is ~540 LUTs; our substrate lands in the same band.
    assert 300 <= best <= 800

    # Strong guidance reaches the optimum bar; baseline is severalfold
    # more expensive when it gets there at all (paper: 101 vs 463).
    strong_min = figure.notes["evals_to_min[strong]"]
    baseline_min = figure.notes["evals_to_min[baseline]"]
    assert strong_min is not None
    if baseline_min is not None:
        assert baseline_min / strong_min > 2.0
    else:
        # Baseline's mean curve never touches the optimum in 80 gens —
        # an even stronger version of the paper's gap.
        assert figure.notes["success_rate[baseline]"] < 1.0

    # Relaxed 2x-minimum goal: all GAs reach it quickly. The paper's
    # equivalent rarity bar ("11,921 random draws") maps to the *optimum*
    # bar in our denser space: random sampling needs orders of magnitude
    # more draws than the guided GA spends reaching the minimum.
    relaxed_strong = figure.notes["evals_to_2x_min[strong]"]
    relaxed_baseline = figure.notes["evals_to_2x_min[baseline]"]
    assert relaxed_strong is not None and relaxed_baseline is not None
    assert relaxed_strong <= relaxed_baseline * 1.1
    random_to_min = figure.notes["random_sampling_expected_min"]
    assert random_to_min > 20 * strong_min  # GA >> random sampling

    # Guided variants converge to (essentially) the same minimum.
    strong_final = figure.series["Nautilus (strongly guided)"][-1][1]
    assert strong_final <= 1.02 * best
