"""Benchmark: warm-started campaigns reach cold-start quality cheaper.

The archive's economic claim is cross-campaign: a search seeded with the
best designs previous campaigns already paid for should need substantially
fewer *distinct evaluations* (synthesis jobs — the paper's cost unit) to
reach the quality a cold-start search ends at.

For each (cold_seed, warm_seed) pair: run a cold GA on ``noc-frequency``
whose evaluation stack records into a fresh archive (exactly the daemon's
tap wiring), note its final best; then run a *differently seeded* GA whose
initial population is warm-started with the archive's top designs, and
count the distinct evaluations it needs before its best-so-far matches the
cold run's final best. Pass: >= 25% aggregate reduction.

Writes ``results/BENCH_archive.json``; exits 1 when the floor is missed.

Usage::

    PYTHONPATH=src python benchmarks/bench_archive_warmstart.py
"""

from __future__ import annotations

import json
import sys
import tempfile
from pathlib import Path

from repro.archive import DesignArchive
from repro.core import DatasetEvaluator, GAConfig, GeneticSearch
from repro.core.evalstack import EvaluationStack
from repro.queries import QUERIES, load_dataset, resolve_objective

RESULTS_PATH = Path(__file__).parent.parent / "results" / "BENCH_archive.json"
QUERY = "noc-frequency"
GENERATIONS = 30
WARM_SEEDS = 5
SEED_PAIRS = ((0, 1), (1, 2), (2, 3))
REDUCTION_FLOOR = 0.25


def run_pair(dataset, objective, cold_seed: int, warm_seed: int, root: Path):
    evaluator = DatasetEvaluator(dataset)
    archive = DesignArchive(root / f"pair-{cold_seed}-{warm_seed}")

    cold_stack = EvaluationStack(
        evaluator, archive=archive, campaign=f"cold-{cold_seed}"
    )
    cold = GeneticSearch(
        dataset.space,
        cold_stack,
        objective,
        GAConfig(generations=GENERATIONS, seed=cold_seed),
    ).run()

    seeds = archive.warm_start_configs(
        dataset.space, cold_stack.fingerprint, objective, WARM_SEEDS
    )
    warm = GeneticSearch(
        dataset.space,
        EvaluationStack(evaluator),
        objective,
        GAConfig(
            generations=GENERATIONS, seed=warm_seed, warm_start=tuple(seeds)
        ),
    ).run()

    target = cold.best.score
    evals_to_reach = None
    for record in warm.records:
        if record.best_score >= target:
            evals_to_reach = record.distinct_evaluations
            break
    return {
        "cold_seed": cold_seed,
        "warm_seed": warm_seed,
        "cold_best": cold.best_raw,
        "cold_evals": cold.distinct_evaluations,
        "warm_best": warm.best_raw,
        "warm_evals_to_reach_cold_best": evals_to_reach,
        "archived_rows": archive.stats()["rows"],
        "reached": evals_to_reach is not None,
    }


def main() -> int:
    query = QUERIES[QUERY]
    dataset = load_dataset(query.space)
    objective, __ = resolve_objective(query)

    pairs = []
    with tempfile.TemporaryDirectory(prefix="nautilus-bench-archive-") as tmp:
        for cold_seed, warm_seed in SEED_PAIRS:
            pair = run_pair(dataset, objective, cold_seed, warm_seed, Path(tmp))
            pairs.append(pair)
            print(
                f"cold seed {cold_seed}: best {pair['cold_best']:.4g} in "
                f"{pair['cold_evals']} evals | warm seed {warm_seed}: "
                f"reached it in {pair['warm_evals_to_reach_cold_best']} evals"
                if pair["reached"]
                else f"cold seed {cold_seed}: warm run NEVER reached "
                f"{pair['cold_best']:.4g}"
            )

    reached = all(pair["reached"] for pair in pairs)
    cold_total = sum(pair["cold_evals"] for pair in pairs)
    warm_total = sum(
        pair["warm_evals_to_reach_cold_best"] or pair["cold_evals"]
        for pair in pairs
    )
    reduction = 1.0 - warm_total / cold_total if cold_total else 0.0
    passed = reached and reduction >= REDUCTION_FLOOR

    payload = {
        "query": QUERY,
        "generations": GENERATIONS,
        "warm_seeds": WARM_SEEDS,
        "pairs": pairs,
        "cold_evals_total": cold_total,
        "warm_evals_total": warm_total,
        "reduction": reduction,
        "floor": REDUCTION_FLOOR,
        "pass": passed,
    }
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    with open(RESULTS_PATH, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(
        f"distinct evaluations to cold-start quality: {warm_total} vs "
        f"{cold_total} cold ({reduction:.0%} reduction, floor "
        f"{REDUCTION_FLOOR:.0%}) -> {'PASS' if passed else 'FAIL'}"
    )
    print(f"results written to {RESULTS_PATH}")
    return 0 if passed else 1


if __name__ == "__main__":
    sys.exit(main())
