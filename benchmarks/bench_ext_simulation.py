"""Extension: latency/throughput characterization via cycle-level simulation.

The paper's datasets include simulation-derived metrics ("we run FPGA
synthesis and/or simulations for each design instance"). This bench
produces the classic interconnection-networks figure those simulations
feed: offered load vs latency per topology family, plus saturation
throughput, under uniform traffic — and checks the textbook orderings
(Dally & Towles ch. 19) that validate the simulator:

* zero-load latency ordering follows hop count: fat tree < torus < mesh < ring;
* saturation throughput ordering follows bisection: ring lowest, fat tree
  highest (mesh/torus unordered under single-path oblivious routing);
* latency rises monotonically with offered load for every family
  (pre-saturation region).
"""

from repro.analysis import FigureSeries
from repro.noc import (
    NetworkSimulator,
    build_topology,
    default_router_config,
    saturation_throughput,
)

ENDPOINTS = 64
FAMILIES = ("ring", "mesh", "torus", "fat_tree")
RATES = (0.02, 0.05, 0.1, 0.2, 0.3, 0.45)
CYCLES = 1200


def _characterize():
    curves = {}
    saturations = {}
    diverse_saturations = {}
    for family in FAMILIES:
        topology = build_topology(family, ENDPOINTS)
        simulator = NetworkSimulator(
            topology, default_router_config(topology.router_radix)
        )
        points = []
        for rate in RATES:
            report = simulator.run(rate, cycles=CYCLES, seed=3)
            points.append(
                (
                    report.delivered_rate,
                    report.avg_latency_cycles,
                    report.blocked_fraction,
                )
            )
        curves[family] = points
        saturations[family] = saturation_throughput(simulator, cycles=600, seed=3)
        diverse = NetworkSimulator(
            topology,
            default_router_config(topology.router_radix),
            routing="diverse",
        )
        diverse_saturations[family] = saturation_throughput(
            diverse, cycles=600, seed=3
        )
    return curves, saturations, diverse_saturations


def test_ext_simulation_curves(benchmark, publish):
    curves, saturations, diverse = benchmark.pedantic(
        _characterize, rounds=1, iterations=1
    )

    figure = FigureSeries(
        "figE2",
        "NoC (extension): Latency vs Offered Load",
        "Delivered load (flits/endpoint/cycle)",
        "Average latency (cycles)",
    )
    for family, points in curves.items():
        figure.add(family, [(x, y) for x, y, __ in points])
    for family, saturation in saturations.items():
        figure.note(f"saturation[{family}]", round(saturation, 3))
    for family, saturation in diverse.items():
        figure.note(f"saturation_diverse[{family}]", round(saturation, 3))
    publish(figure)

    zero_load = {family: curves[family][0][1] for family in FAMILIES}
    # Hop-count ordering at low load.
    assert zero_load["fat_tree"] < zero_load["torus"]
    assert zero_load["torus"] < zero_load["mesh"]
    assert zero_load["mesh"] < zero_load["ring"]

    # Bisection ordering of saturation throughput. Under deterministic
    # single-path routing the torus cannot exploit its path diversity (the
    # classic oblivious-routing caveat, Dally & Towles ch. 9), so mesh vs
    # torus is only asserted under the path-diverse router.
    assert saturations["ring"] < saturations["mesh"]
    assert saturations["ring"] < saturations["torus"]
    assert saturations["fat_tree"] == max(saturations.values())
    assert diverse["torus"] > diverse["mesh"]  # 2x bisection pays off
    assert diverse["torus"] > saturations["torus"]  # diversity helps

    # Latency monotone in load over the *pre-saturation* region. Past
    # saturation, delivered-packet statistics suffer survivorship bias
    # (long-haul packets stall and never complete within the window), so
    # only points with <5% injection blocking participate.
    for family, points in curves.items():
        latencies = [
            latency for __, latency, blocked in points if blocked < 0.05
        ]
        for earlier, later in zip(latencies, latencies[1:]):
            assert later >= earlier - 1.0, family
