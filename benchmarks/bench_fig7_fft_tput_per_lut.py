"""Figure 7: maximize throughput per LUT in the FFT design space.

Paper (40-run averages): strongly guided Nautilus reaches 1.45 MSPS/LUT
(~93% of the ~1.55 space maximum) using ~61.6 synthesis runs, vs >8x
(501.4) for the baseline; only Nautilus ever reaches the >1.5 MSPS/LUT
elite region even though the baseline explores >5x more of the space.
Claims reproduced: a large strong-vs-baseline speedup at the 93% bar, and
an elite region (97% of max) that the guided variants reach far more
reliably than the baseline.
"""

from repro.experiments import figure7

RUNS = 40
GENERATIONS = 80


def test_fig7_fft_tput_per_lut(benchmark, fft_ds, publish):
    figure = benchmark.pedantic(
        lambda: figure7(fft_ds, runs=RUNS, generations=GENERATIONS),
        rounds=1,
        iterations=1,
    )
    publish(figure)

    best = figure.notes["space_best"]
    # Paper tops out around 1.5-1.7 MSPS/LUT; same band here.
    assert 0.8 <= best <= 2.0

    # The 93%-of-max bar (paper's 1.45 on a 1.55 max): strong guidance is
    # severalfold cheaper (paper: >8x).
    strong = figure.notes["evals_to_threshold[strong]"]
    baseline = figure.notes["evals_to_threshold[baseline]"]
    assert strong is not None
    if baseline is not None:
        assert baseline / strong > 2.5

    # Elite region (97% of max): Nautilus reaches it consistently, the
    # baseline only sometimes ("the baseline is never able to approach"
    # the top region in the paper).
    assert figure.notes["elite_success_rate[strong]"] >= 0.9
    assert (
        figure.notes["elite_success_rate[strong]"]
        > figure.notes["elite_success_rate[baseline]"]
    )

    # Guided runs synthesize fewer designs over the same generations.
    assert (
        figure.notes["total_evals[strong]"] < figure.notes["total_evals[baseline]"]
    )
