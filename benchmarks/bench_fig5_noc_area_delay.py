"""Figure 5: minimize the area-delay product in the NoC design space.

Paper: results shown for the first 20 generations only; "Nautilus achieves
similar quality of results with about half the number of synthesis runs
required by the baseline", using hints that also cover area-affecting
parameters such as VC buffer depth. Claims reproduced: at the 20-generation
budget the guided search reaches the quality bar the baseline cannot, with
fewer designs synthesized, and its final quality is strictly better.
"""

from repro.experiments import figure5

RUNS = 40
GENERATIONS = 20  # paper: "results are shown only for the first 20 generations"


def test_fig5_noc_area_delay(benchmark, noc_dataset, publish):
    figure = benchmark.pedantic(
        lambda: figure5(noc_dataset, runs=RUNS, generations=GENERATIONS),
        rounds=1,
        iterations=1,
    )
    publish(figure)

    strong_cross = figure.notes["evals_to_threshold[strong]"]
    baseline_cross = figure.notes["evals_to_threshold[baseline]"]
    # Strong guidance reaches the bar within the 20-generation budget...
    assert strong_cross is not None
    # ...at least twice as cheaply as the baseline wherever the baseline
    # reaches it at all (paper: "about half the number of synthesis runs").
    if baseline_cross is not None:
        assert baseline_cross / strong_cross > 1.7

    # Equal-generations quality: the guided curve ends strictly lower.
    baseline_final = figure.series["Baseline"][-1][1]
    strong_final = figure.series["Nautilus (strongly guided)"][-1][1]
    assert strong_final < baseline_final

    # And it pays fewer synthesis jobs doing so.
    assert (
        figure.notes["total_evals[strong]"] < figure.notes["total_evals[baseline]"]
    )
