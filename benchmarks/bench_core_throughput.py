"""Core-throughput benchmark: encoded-genome hot path vs the dict-based core.

Measures the breeding hot path three ways and writes
``results/BENCH_core.json``:

* **current** — the encoded core as shipped: code-vector crossover/mutation,
  resolved per-generation guidance, columnar populations, O(changes)
  ``replace``.
* **reference** — the pre-refactor *algorithms* re-implemented in this file
  on today's API (dict-decode per crossover, per-call rate dicts and axis
  builds, full re-validating genome rebuild per mutation). Running both in
  the same process on the same machine gives a machine-independent speedup
  ratio that CI can assert.
* **pre-refactor capture** — ``benchmarks/baselines/core_throughput_pre.json``,
  absolute numbers captured on the seed tree before the refactor (only
  comparable on the capture machine).

The reference pipeline is also a *parity witness*: it consumes RNG draws in
the exact historical order, so a seeded end-to-end run through it must
produce bit-identical results to the encoded pipeline — asserted on every
invocation before any timing is trusted.

Usage::

    python benchmarks/bench_core_throughput.py           # full run
    python benchmarks/bench_core_throughput.py --quick   # CI perf smoke:
        # smaller workload, asserts the speedup floors vs the in-run
        # reference (>=3x operator microbench, >=1.5x end-to-end).
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.core import maximize  # noqa: E402
from repro.core.engine import GAConfig, GeneticSearch  # noqa: E402
from repro.core.evalstack import EvaluationStack  # noqa: E402
from repro.core.evaluator import DatasetEvaluator  # noqa: E402
from repro.core.genome import Genome  # noqa: E402
from repro.core.guidance import StaticHints  # noqa: E402
from repro.core.kernel import RngStreams  # noqa: E402
from repro.core.operators import (  # noqa: E402
    BreedingPipeline,
    GeneticOperators,
    single_point_crossover,
)
from repro.core.population import Population  # noqa: E402
from repro.core.selection import SELECTION_STRATEGIES, Individual  # noqa: E402
from repro.queries import QUERIES, build_hints, load_dataset  # noqa: E402

BASELINE = Path(__file__).resolve().parent / "baselines" / "core_throughput_pre.json"
RESULTS = Path(__file__).resolve().parents[1] / "results" / "BENCH_core.json"

#: Floors the quick (CI) mode asserts against the in-run reference.
MICRO_FLOOR = 3.0
E2E_FLOOR = 1.5


# -- the pre-refactor algorithms, verbatim shapes on today's API --------------
#
# These are *not* dead code kept around: they are the measurement reference
# and the draw-order witness. Do not "optimize" them — their cost profile
# (dict decode per crossover, per-call rate dict + axis index builds, full
# re-validating rebuild per mutation) is the thing being measured against.


def legacy_roulette_selection(population, rng):
    # Pre-refactor roulette: walk every row's .score attribute and rebuild
    # the weight table on each parent draw.
    finite = [ind.score for ind in population if ind.score != float("-inf")]
    if not finite:
        return population[rng.randrange(len(population))]
    floor = min(finite)
    weights = [
        (ind.score - floor) if ind.score != float("-inf") else 0.0
        for ind in population
    ]
    total = sum(weights)
    if total <= 0.0:
        return population[rng.randrange(len(population))]
    pick = rng.random() * total
    acc = 0.0
    for individual, weight in zip(population, weights):
        acc += weight
        if pick <= acc:
            return individual
    return population[-1]


def legacy_single_point_crossover(a: Genome, b: Genome, rng) -> Genome:
    names = a.space.param_names
    point = rng.randrange(1, len(names)) if len(names) > 1 else 0
    values = {}
    for i, name in enumerate(names):
        values[name] = a[name] if i < point else b[name]
    return Genome(a.space, values)


class LegacyOperators(GeneticOperators):
    """Historical whole-genome mutation: per-call rates, dict rebuild."""

    def mutate(self, genome, guidance, rng):
        rates = self.gene_mutation_rates(guidance)
        changes = {}
        channels = [] if self.observer is not None else None
        for param in self.space.params:
            if rng.random() < rates[param.name]:
                value, channel = self._mutate_value(
                    param, genome[param.name], guidance, rng
                )
                changes[param.name] = value
                if channels is not None:
                    channels.append((param.name, channel))
        if channels is not None:
            self.observer.mutation_attempted(channels)
        if not changes:
            return genome
        # Full re-validating rebuild — the pre-refactor replace cost.
        merged = dict(genome)
        merged.update(changes)
        return Genome(genome.space, merged)


def legacy_is_feasible(space, genome) -> bool:
    # Pre-refactor feasibility: materialize a config dict per check.
    if not space.constraints:
        return True
    config = dict(genome)
    return all(constraint(config) for constraint in space.constraints)


class LegacyBreedingPipeline(BreedingPipeline):
    """The historical breed sequence with dict-based feasibility checks."""

    def breed(self, population, guidance, rngs, timings=None):
        parent = self.select(population, rngs.selection)
        genome = parent.genome
        if rngs.crossover.random() < self.crossover_rate:
            other = self.select(population, rngs.selection)
            for _ in range(self.CROSSOVER_ATTEMPTS):
                candidate = self.crossover(parent.genome, other.genome, rngs.crossover)
                if legacy_is_feasible(self.space, candidate):
                    genome = candidate
                    break
        return self.operators.mutate_feasible(genome, guidance, rngs.mutation)


# -- measurement ---------------------------------------------------------------


def best_rate(fn, units: int, repeats: int) -> float:
    """Best-of-N units/sec (min-time is the standard low-noise estimator)."""
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return units / min(times)


def build_breeding(
    space, objective, hints, dataset, pipeline_cls, operators_cls, select, crossover
):
    stack = EvaluationStack.wrap(DatasetEvaluator(dataset))
    provider = StaticHints(hints)
    provider.bind(space, objective, stack)
    state = provider.start()
    operators = operators_cls(space, 0.1)
    pipeline = pipeline_cls(space, operators, select, crossover, 0.9)
    return pipeline, state


def micro_bench(space, objective, hints, dataset, breeds, repeats):
    """Breed throughput for the encoded pipeline and the legacy reference."""
    rates = {}
    for label, pipeline_cls, operators_cls, select, crossover in (
        (
            "current",
            BreedingPipeline,
            GeneticOperators,
            SELECTION_STRATEGIES["roulette"],
            single_point_crossover,
        ),
        (
            "reference",
            LegacyBreedingPipeline,
            LegacyOperators,
            legacy_roulette_selection,
            legacy_single_point_crossover,
        ),
    ):
        pipeline, state = build_breeding(
            space, objective, hints, dataset, pipeline_cls, operators_cls,
            select, crossover,
        )
        rngs = RngStreams(1234)
        pop_genomes = space.random_population(24, rngs.init)
        # The engine hands pipelines a columnar Population — benchmark the
        # same shape. The legacy reference walks it as rows, exactly as the
        # pre-refactor strategies walked their list.
        population = Population(
            [
                Individual(g, float(i % 7) + 1.0, float(i))
                for i, g in enumerate(pop_genomes)
            ]
        )

        def run(pipeline=pipeline, state=state, rngs=rngs, population=population):
            for _ in range(breeds):
                pipeline.breed(population, state, rngs, None)

        rates[label] = best_rate(run, breeds, repeats)
    return rates


def replace_bench(space, breeds, repeats):
    rng0 = RngStreams(77)
    base = space.random_genome(rng0.init)
    name = space.param_names[0]
    param = space.params[0]

    def current():
        rng = RngStreams(99).mutation
        for _ in range(breeds):
            base.replace(**{name: param.random_value(rng)})

    def reference():
        rng = RngStreams(99).mutation
        for _ in range(breeds):
            merged = dict(base)
            merged[name] = param.random_value(rng)
            Genome(space, merged)

    return {
        "current": best_rate(current, breeds, repeats),
        "reference": best_rate(reference, breeds, repeats),
    }


def construct_bench(space, breeds, repeats):
    rng0 = RngStreams(77)
    values = space.random_genome(rng0.init).as_dict()

    def run():
        for _ in range(breeds):
            Genome(space, values)

    return {"current": best_rate(run, breeds, repeats)}


def e2e_run(space, dataset, objective, hints, generations, legacy: bool):
    search = GeneticSearch(
        space,
        DatasetEvaluator(dataset),
        objective,
        GAConfig(population_size=24, generations=generations, seed=7),
        hints=hints,
    )
    if legacy:
        # Swap in the reference pipeline; the kernel only sees .breed().
        search.operators = LegacyOperators(space, search.config.mutation_rate)
        search.operators.observer = search.pipeline.operators.observer
        search.pipeline = LegacyBreedingPipeline(
            space,
            search.operators,
            legacy_roulette_selection,
            legacy_single_point_crossover,
            search.config.crossover_rate,
        )
    return search.run()


def e2e_bench(space, dataset, objective, hints, generations, repeats):
    rates = {}
    for label, legacy in (("current", False), ("reference", True)):
        def run(legacy=legacy):
            e2e_run(space, dataset, objective, hints, generations, legacy)

        rates[label] = best_rate(run, generations, repeats)
    return rates


def parity_witness(space, dataset, objective, hints, generations):
    """Seeded encoded and legacy runs must be bit-identical."""
    current = e2e_run(space, dataset, objective, hints, generations, legacy=False)
    legacy = e2e_run(space, dataset, objective, hints, generations, legacy=True)
    mismatches = []
    if current.best_raw != legacy.best_raw:
        mismatches.append(f"best_raw {current.best_raw} != {legacy.best_raw}")
    if current.best_config != legacy.best_config:
        mismatches.append("best_config differs")
    if current.distinct_evaluations != legacy.distinct_evaluations:
        mismatches.append(
            f"distinct_evaluations {current.distinct_evaluations} != "
            f"{legacy.distinct_evaluations}"
        )
    cur_curve = [r.best_score for r in current.records]
    leg_curve = [r.best_score for r in legacy.records]
    if cur_curve != leg_curve:
        mismatches.append("best_score curves differ")
    if mismatches:
        raise SystemExit(
            "encoded/legacy parity broken: " + "; ".join(mismatches)
        )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI perf smoke: small workload, assert speedup floors vs the "
        "in-run reference",
    )
    args = parser.parse_args()

    breeds = 600 if args.quick else 2000
    # Quick e2e runs long enough that per-run setup does not dilute the
    # generations/sec ratio below its steady-state value.
    generations = 25 if args.quick else 40
    repeats = 3 if args.quick else 5
    e2e_repeats = 2 if args.quick else 3

    query = QUERIES["noc-frequency"]
    dataset = load_dataset(query.space)
    space = dataset.space
    objective = maximize(query.metric)
    hints = build_hints(query.hint_kind)

    print("parity witness: seeded encoded vs legacy run ...", flush=True)
    parity_witness(space, dataset, objective, hints, generations)
    print("  ok: bit-identical", flush=True)

    micro = micro_bench(space, objective, hints, dataset, breeds, repeats)
    replace = replace_bench(space, breeds, repeats)
    construct = construct_bench(space, breeds, repeats)
    e2e = e2e_bench(space, dataset, objective, hints, generations, e2e_repeats)

    pre = json.loads(BASELINE.read_text()) if BASELINE.exists() else None
    vs_reference = {
        "breed": micro["current"] / micro["reference"],
        "replace": replace["current"] / replace["reference"],
        "e2e": e2e["current"] / e2e["reference"],
    }
    vs_capture = None
    if pre is not None:
        vs_capture = {
            "breed": micro["current"] / pre["micro"]["breed_per_sec"],
            "replace": replace["current"] / pre["micro"]["replace_per_sec"],
            "construct": construct["current"] / pre["micro"]["construct_per_sec"],
            "e2e": e2e["current"] / pre["e2e"]["generations_per_sec"],
        }

    out = {
        "workload": {
            "query": "noc-frequency",
            "population": 24,
            "micro_breeds": breeds,
            "e2e_generations": generations,
            "seed": 7,
            "quick": args.quick,
        },
        "python": platform.python_version(),
        "machine": platform.machine(),
        "current": {
            "breed_per_sec": micro["current"],
            "replace_per_sec": replace["current"],
            "construct_per_sec": construct["current"],
            "e2e_generations_per_sec": e2e["current"],
        },
        "reference": {
            "breed_per_sec": micro["reference"],
            "replace_per_sec": replace["reference"],
            "e2e_generations_per_sec": e2e["reference"],
        },
        "pre_capture": pre,
        "speedup": {"vs_reference": vs_reference, "vs_capture": vs_capture},
        "floors": {"micro": MICRO_FLOOR, "e2e": E2E_FLOOR},
    }

    RESULTS.parent.mkdir(parents=True, exist_ok=True)
    RESULTS.write_text(json.dumps(out, indent=2) + "\n")
    print(json.dumps(out["speedup"], indent=2))
    print(f"wrote {RESULTS}")

    if args.quick:
        failures = []
        if vs_reference["breed"] < MICRO_FLOOR:
            failures.append(
                f"breed microbench {vs_reference['breed']:.2f}x < {MICRO_FLOOR}x"
            )
        if vs_reference["e2e"] < E2E_FLOOR:
            failures.append(
                f"e2e {vs_reference['e2e']:.2f}x < {E2E_FLOOR}x"
            )
        if failures:
            raise SystemExit("speedup floors not met: " + "; ".join(failures))
        print(
            f"floors met: breed {vs_reference['breed']:.2f}x >= {MICRO_FLOOR}x, "
            f"e2e {vs_reference['e2e']:.2f}x >= {E2E_FLOOR}x"
        )


if __name__ == "__main__":
    main()
