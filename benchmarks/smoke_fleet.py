"""CI smoke check: a lossy fleet must not change seeded search results.

Runs the same seeded guided-GA campaign (noc-frequency) twice:

1. inline, single process — the reference run;
2. through a live :class:`~repro.distributed.FleetCoordinator` with two
   real ``nautilus worker`` subprocesses, one of which is SIGKILLed the
   moment it is holding dispatched tasks.

The fleet run must finish despite the mid-batch kill, with a best score,
best raw metric, distinct-evaluation count, and full convergence curve
bit-identical to the inline run — fault-tolerant re-dispatch may change
*where* an evaluation runs, never *what* the search sees. The eval-stack
accounting invariant (requests == distinct + memo + persistent + dedup)
is asserted on both runs: a killed worker loses nothing and double-pays
nothing.

Usage::

    PYTHONPATH=src python benchmarks/smoke_fleet.py
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

from repro.core import DatasetEvaluator, GAConfig, GeneticSearch
from repro.core.evalstack import EvaluationStack
from repro.distributed import FleetCoordinator, RetryPolicy
from repro.queries import QUERIES, build_hints, load_dataset, resolve_objective

SRC_DIR = Path(__file__).resolve().parent.parent / "src"
QUERY = "noc-frequency"
SEED = 3
GENERATIONS = 10


def _build_search(dataset, evaluator):
    query = QUERIES[QUERY]
    objective, hint_kind = resolve_objective(query)
    return GeneticSearch(
        dataset.space,
        evaluator,
        objective,
        GAConfig(generations=GENERATIONS, seed=SEED),
        hints=build_hints(hint_kind),
    )


def _curve(result):
    return [
        (r.generation, r.distinct_evaluations, r.best_raw, r.best_score)
        for r in result.records
    ]


def _assert_invariant(stats):
    assert stats.requests == (
        stats.distinct
        + stats.memo_hits
        + stats.persistent_hits
        + stats.batch_dedup_hits
    ), f"eval accounting broken: {stats}"


def _spawn_worker(coordinator, name: str) -> subprocess.Popen:
    env = dict(os.environ, PYTHONPATH=str(SRC_DIR))
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "worker",
            "--connect", coordinator.address,
            "--spaces", "noc", "--name", name,
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    deadline = time.monotonic() + 30.0
    while name not in coordinator.workers:
        if time.monotonic() > deadline:
            process.kill()
            raise AssertionError(f"worker {name} never registered")
        time.sleep(0.01)
    return process


def _kill_mid_run(coordinator, victim: subprocess.Popen, done: threading.Event):
    """SIGKILL the victim once it is actually holding dispatched tasks."""
    while not done.is_set():
        info = coordinator.workers.get("victim")
        if info is not None and info.in_flight > 0:
            break
        time.sleep(0.001)
    os.kill(victim.pid, signal.SIGKILL)


def main() -> int:
    dataset = load_dataset(QUERY.split("-")[0])

    inline_stack = EvaluationStack(DatasetEvaluator(dataset))
    inline = _build_search(dataset, inline_stack).run()
    _assert_invariant(inline_stack.stats())
    print(
        f"  inline:  best={inline.best.score:.6g} "
        f"distinct={inline.distinct_evaluations}"
    )

    coordinator = FleetCoordinator(
        policy=RetryPolicy(
            task_timeout_s=30.0,
            heartbeat_interval_s=0.1,
            heartbeat_timeout_s=2.0,
        )
    ).start()
    victim = survivor = None
    try:
        victim = _spawn_worker(coordinator, "victim")
        survivor = _spawn_worker(coordinator, "survivor")
        fleet_stack = EvaluationStack(
            DatasetEvaluator(dataset), backend="fleet", fleet=coordinator
        )
        done = threading.Event()
        killer = threading.Thread(
            target=_kill_mid_run, args=(coordinator, victim, done), daemon=True
        )
        killer.start()
        fleet = _build_search(dataset, fleet_stack).run()
        done.set()
        killer.join(10.0)
        victim.wait(10.0)
        _assert_invariant(fleet_stack.stats())

        assert fleet.best.score == inline.best.score, (
            f"best score drifted: fleet={fleet.best.score!r} "
            f"inline={inline.best.score!r}"
        )
        assert fleet.best_raw == inline.best_raw
        assert fleet.distinct_evaluations == inline.distinct_evaluations
        assert _curve(fleet) == _curve(inline), "convergence curve drifted"

        status = coordinator.status()
        served = status["totals"]["completed"] + status["totals"]["unavailable"]
        assert served >= fleet.distinct_evaluations, (
            f"evaluations lost: served {served} < "
            f"{fleet.distinct_evaluations} distinct"
        )
        deadline = time.monotonic() + 10.0
        while "victim" not in {
            d["name"] for d in coordinator.status()["departed"]
        }:
            assert time.monotonic() < deadline, "victim was never dropped"
            time.sleep(0.05)
        print(
            f"  fleet:   best={fleet.best.score:.6g} "
            f"distinct={fleet.distinct_evaluations} "
            f"requeued={status['totals']['requeued']} "
            f"duplicates-dropped={status['totals']['duplicate_results']}"
        )
        print(
            "  ok: SIGKILLed worker mid-run; curves bit-identical, "
            "nothing lost, nothing double-paid"
        )
    finally:
        for process in (victim, survivor):
            if process is not None and process.poll() is None:
                process.kill()
                process.wait(10.0)
        coordinator.stop()
    return 0


if __name__ == "__main__":
    sys.exit(main())
