"""Figure 3: baseline GA vs Nautilus with only 1 or 2 "bias" hints.

Paper: on the FFT space (average of 20 runs), the baseline GA takes 56
generations to find a solution within the top 1%, while Nautilus with just
one or two bias hints gets there in 15-23 generations. Our substrate's
low-LUT region is denser, so the equivalent hard bar is the top 0.1% of
designs (see figure3's docstring). Claims reproduced: the
design-solution-score curves rise toward 100%; bias-only guidance reaches
the quality bar in a fraction of the baseline's generations (and lands in
the paper's own 15-23 generation window); adding the second hint keeps the
advantage.
"""

from repro.experiments import figure3

RUNS = 20  # paper: Figure 3 averages 20 runs
GENERATIONS = 80


def test_fig3_bias_hints(benchmark, fft_ds, publish):
    figure = benchmark.pedantic(
        lambda: figure3(fft_ds, runs=RUNS, generations=GENERATIONS),
        rounds=1,
        iterations=1,
    )
    publish(figure)

    baseline_gens = figure.notes["gens_to_top0.1pct[Baseline GA]"]
    one_hint_gens = figure.notes['gens_to_top0.1pct[Nautilus w/ 1 "Bias" Hint]']
    two_hint_gens = figure.notes['gens_to_top0.1pct[Nautilus w/ 2 "Bias" Hints]']

    assert baseline_gens is not None
    assert one_hint_gens is not None and two_hint_gens is not None
    # Bias-only guidance reaches the top-1% bar substantially earlier
    # (paper: 15-23 generations vs 56).
    assert one_hint_gens < 0.8 * baseline_gens
    assert two_hint_gens < 0.8 * baseline_gens
    assert two_hint_gens <= one_hint_gens * 1.25  # 2 hints not worse than 1

    # Score curves end near the top of the 0-100% scale for all variants.
    for label, points in figure.series.items():
        assert points[-1][1] > 95.0, label
