"""Fleet throughput scaling: 1 vs 2 vs 4 workers on the NoC router space.

Dispatches batches of distinct NoC router designs through a live
:class:`~repro.distributed.FleetCoordinator` with in-process workers whose
evaluators carry a fixed per-design cost (simulating a synthesis job —
the bundled analytical models answer in microseconds, which would only
measure protocol overhead). Reports wall-clock throughput per fleet size
and the speedup over the single-worker fleet, and asserts scaling is real:
two workers must beat one, four must beat two.

Emits ``results/BENCH_fleet.json``::

    {
      "task_cost_s": 0.02,
      "tasks_per_round": 128,
      "rounds": [
        {"workers": 1, "elapsed_s": ..., "throughput_per_s": ..., "speedup": 1.0},
        {"workers": 2, ...},
        {"workers": 4, ...}
      ]
    }

Usage::

    PYTHONPATH=src python benchmarks/bench_fleet_scaling.py
"""

from __future__ import annotations

import json
import random
import sys
import threading
import time
from pathlib import Path

from repro.core import DatasetEvaluator
from repro.core.evalstack import EvaluationStack
from repro.distributed import FleetCoordinator, FleetWorker, RetryPolicy
from repro.queries import load_dataset

RESULTS_PATH = Path(__file__).resolve().parent.parent / "results" / "BENCH_fleet.json"
FLEET_SIZES = (1, 2, 4)
TASKS_PER_ROUND = 128
TASK_COST_S = 0.02
SEED = 7


def _delayed_provider(dataset):
    """Evaluator provider adding a fixed per-design synthesis cost."""

    def provider(alias):
        inner = DatasetEvaluator(dataset)

        class _Slow:
            fingerprint = inner.fingerprint

            @staticmethod
            def evaluate(genome):
                time.sleep(TASK_COST_S)
                return inner.evaluate(genome)

        return dataset.space, _Slow()

    return provider


def _start_workers(coordinator, dataset, count):
    provider = _delayed_provider(dataset)
    handles = []
    for index in range(count):
        worker = FleetWorker(
            coordinator.host,
            coordinator.port,
            spaces=["noc"],
            name=f"bench-w{index}",
            evaluator_provider=provider,
        )
        thread = threading.Thread(target=worker.run, daemon=True)
        thread.start()
        handles.append((worker, thread))
    deadline = time.monotonic() + 10.0
    while len(coordinator.workers) < count:
        assert time.monotonic() < deadline, "workers never registered"
        time.sleep(0.01)
    return handles


def _measure(dataset, genomes, workers: int) -> dict:
    coordinator = FleetCoordinator(
        policy=RetryPolicy(task_timeout_s=60.0)
    ).start()
    handles = _start_workers(coordinator, dataset, workers)
    try:
        stack = EvaluationStack(
            DatasetEvaluator(dataset), backend="fleet", fleet=coordinator
        )
        started = time.perf_counter()
        outcomes = stack.evaluate_many(genomes)
        elapsed = time.perf_counter() - started
        assert all(isinstance(o, dict) for o in outcomes), "evaluation failed"
        status = coordinator.status()
        assert status["totals"]["completed"] == len(genomes)
        assert status["totals"]["local_fallback"] == 0
        return {
            "workers": workers,
            "elapsed_s": round(elapsed, 4),
            "throughput_per_s": round(len(genomes) / elapsed, 2),
        }
    finally:
        for worker, thread in handles:
            worker.stop()
            thread.join(5.0)
        coordinator.stop()


def main() -> int:
    dataset = load_dataset("noc")
    rng = random.Random(SEED)
    seen: dict = {}
    while len(seen) < TASKS_PER_ROUND:
        genome = dataset.space.random_genome(rng)
        seen[genome.key] = genome
    genomes = list(seen.values())

    rounds = []
    for workers in FLEET_SIZES:
        row = _measure(dataset, genomes, workers)
        base = rounds[0]["throughput_per_s"] if rounds else row["throughput_per_s"]
        row["speedup"] = round(row["throughput_per_s"] / base, 2)
        rounds.append(row)
        print(
            f"  {workers} worker(s): {row['throughput_per_s']:.1f} evals/s "
            f"({row['elapsed_s']}s, speedup x{row['speedup']})"
        )

    by_size = {row["workers"]: row["throughput_per_s"] for row in rounds}
    assert by_size[2] > by_size[1] * 1.3, "2 workers did not beat 1"
    assert by_size[4] > by_size[2] * 1.3, "4 workers did not beat 2"

    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(
        json.dumps(
            {
                "task_cost_s": TASK_COST_S,
                "tasks_per_round": TASKS_PER_ROUND,
                "rounds": rounds,
            },
            indent=1,
        )
        + "\n"
    )
    print(f"  wrote {RESULTS_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
