"""Ablation: adaptive confidence (extension beyond the paper).

Section 3 flags balancing guidance strength against GA stochasticity as "a
particularly important issue" but leaves confidence fixed. The adaptive
extension (``repro.core.adaptive``) backs confidence off when the search
stalls and restores it while progress continues.

Checks on the Figure 4 query:
* with *correct* hints, adaptive ~= fixed strong confidence (no tax);
* with *adversarially wrong* hints, adaptive recovers faster than fixed
  confidence (it abandons the bad guidance), approaching baseline cost.
"""

from repro.core import (
    AdaptiveSearch,
    DatasetEvaluator,
    GAConfig,
    GeneticSearch,
    maximize,
)
from repro.experiments import run_many
from repro.noc import frequency_hints

RUNS = 24
GENERATIONS = 80


def _sweep(dataset):
    objective = maximize("fmax_mhz")
    right = frequency_hints(0.8)
    wrong = right.for_minimization()  # sign-flipped saboteur

    def factory(cls, hints):
        def build(seed):
            return cls(
                dataset.space,
                DatasetEvaluator(dataset),
                objective,
                GAConfig(generations=GENERATIONS, seed=seed),
                hints=hints,
            )

        return build

    return {
        "baseline (no hints)": run_many(factory(GeneticSearch, None), RUNS),
        "fixed conf, right hints": run_many(factory(GeneticSearch, right), RUNS),
        "adaptive, right hints": run_many(factory(AdaptiveSearch, right), RUNS),
        "fixed conf, wrong hints": run_many(factory(GeneticSearch, wrong), RUNS),
        "adaptive, wrong hints": run_many(factory(AdaptiveSearch, wrong), RUNS),
    }


def test_ablation_adaptive_confidence(benchmark, noc_dataset):
    results = benchmark.pedantic(lambda: _sweep(noc_dataset), rounds=1, iterations=1)
    best = noc_dataset.best_value(maximize("fmax_mhz"))
    threshold = 0.99 * best
    crossings = {}
    print()
    for label, result in results.items():
        crossings[label] = result.curve_cross(threshold)
        print(
            f"  {label:26s} cross-1%={crossings[label]} "
            f"final={result.mean_best():7.2f}"
        )

    # No tax with good hints: adaptive within 1.6x of fixed strong.
    assert crossings["adaptive, right hints"] is not None
    assert (
        crossings["adaptive, right hints"]
        <= 1.6 * crossings["fixed conf, right hints"]
    )
    # Recovery with bad hints: adaptive beats fixed-wrong.
    fixed_wrong = crossings["fixed conf, wrong hints"]
    adaptive_wrong = crossings["adaptive, wrong hints"]
    assert adaptive_wrong is not None
    if fixed_wrong is not None:
        assert adaptive_wrong < fixed_wrong
