"""Ablation: adversarially wrong hints (paper Section 3, footnote 1).

"Note that these hints are incorporated in a probabilistic manner,
maintaining the stochastic nature of GA, which is still free to explore the
full design space and overcome local optima" — and, implicitly, to survive
an author whose intuition is wrong.

We flip the sign of every bias in the Figure 4 hint vector and check that
(a) wrong hints do hurt (they should — otherwise hints would carry no
information), but (b) the guided GA still converges to near-optimal quality
within the budget at moderate confidence, because value guidance is
probabilistic and importance only reweights, never forbids.
"""

from repro.core import DatasetEvaluator, GAConfig, GeneticSearch, HintSet, maximize
from repro.experiments import run_many
from repro.noc import frequency_hints

RUNS = 24
GENERATIONS = 80


def _flip(hints: HintSet) -> HintSet:
    return hints.for_minimization()  # sign-flip helper doubles as saboteur


def _sweep(dataset):
    objective = maximize("fmax_mhz")

    def factory(hints):
        def build(seed):
            return GeneticSearch(
                dataset.space,
                DatasetEvaluator(dataset),
                objective,
                GAConfig(generations=GENERATIONS, seed=seed),
                hints=hints,
            )

        return build

    return {
        "baseline": run_many(factory(None), RUNS),
        "right hints (conf 0.8)": run_many(factory(frequency_hints(0.8)), RUNS),
        "wrong hints (conf 0.8)": run_many(factory(_flip(frequency_hints(0.8))), RUNS),
        "wrong hints (conf 0.35)": run_many(
            factory(_flip(frequency_hints(0.35))), RUNS
        ),
    }


def test_ablation_wrong_hints(benchmark, noc_dataset):
    results = benchmark.pedantic(lambda: _sweep(noc_dataset), rounds=1, iterations=1)
    best = noc_dataset.best_value(maximize("fmax_mhz"))
    threshold = 0.99 * best
    print()
    for label, result in results.items():
        print(
            f"  {label:26s} final={result.mean_best():7.2f} MHz "
            f"cross-1%={result.curve_cross(threshold)}"
        )

    right = results["right hints (conf 0.8)"]
    wrong_strong = results["wrong hints (conf 0.8)"]
    wrong_weak = results["wrong hints (conf 0.35)"]

    # (a) hints carry information: wrong ones are worse than right ones.
    right_cross = right.curve_cross(threshold)
    wrong_cross = wrong_strong.curve_cross(threshold)
    assert right_cross is not None
    assert wrong_cross is None or wrong_cross > right_cross

    # (b) stochastic recovery: even actively misleading hints leave the GA
    # able to find high-quality designs within the budget.
    assert wrong_strong.mean_best() > 0.95 * best
    assert wrong_weak.mean_best() > 0.96 * best
