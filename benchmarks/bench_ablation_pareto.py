"""Ablation: multi-objective extension vs the paper's query-based framing.

The paper's related work argues that modeling the full Pareto set is
"extremely difficult" at these space sizes and prefers per-query search.
This bench quantifies that trade on the router frequency-vs-area space:

* how much of the exhaustive ground-truth front a budgeted NSGA-II run
  recovers (and at what evaluation cost);
* that hint guidance also helps the multi-objective engine (better
  hypervolume per evaluation);
* that a *single* Nautilus query remains far cheaper when the user only
  needs one point — the paper's core argument.
"""

from repro.core import (
    DatasetEvaluator,
    GAConfig,
    GeneticSearch,
    ParetoSearch,
    dominates,
    maximize,
    minimize,
)
from repro.noc import frequency_hints

POP = 32
GENERATIONS = 60


def _truth_front(dataset):
    front: list[tuple[float, float]] = []
    for metrics in dataset.iter_metrics():
        point = (metrics["fmax_mhz"], -metrics["luts"])
        if any(dominates(p, point) for p in front):
            continue
        front = [p for p in front if not dominates(point, p)]
        front.append(point)
    return front


def _run(dataset):
    objectives = [maximize("fmax_mhz"), minimize("luts")]
    truth = _truth_front(dataset)
    config = GAConfig(population_size=POP, generations=GENERATIONS, seed=5, elitism=1)
    plain = ParetoSearch(
        dataset.space, DatasetEvaluator(dataset), objectives, config
    ).run()
    guided = ParetoSearch(
        dataset.space,
        DatasetEvaluator(dataset),
        objectives,
        config,
        hints=frequency_hints(0.5),
    ).run()
    single_query = GeneticSearch(
        dataset.space,
        DatasetEvaluator(dataset),
        maximize("fmax_mhz"),
        GAConfig(generations=80, seed=5),
        hints=frequency_hints(0.8),
    ).run()
    return truth, plain, guided, single_query


def _coverage(truth, found_raws):
    matched = 0
    for t_fmax, t_neg_luts in truth:
        t_luts = -t_neg_luts
        for f_fmax, f_luts in found_raws:
            if f_fmax >= 0.97 * t_fmax and f_luts <= 1.10 * t_luts:
                matched += 1
                break
    return matched / len(truth)


def test_ablation_pareto(benchmark, noc_dataset):
    truth, plain, guided, single_query = benchmark.pedantic(
        lambda: _run(noc_dataset), rounds=1, iterations=1
    )
    plain_cov = _coverage(truth, plain.front_raws())
    guided_cov = _coverage(truth, guided.front_raws())
    print()
    print(f"  true front size       : {len(truth)}")
    print(
        f"  plain NSGA-II         : {len(plain.front)} pts, "
        f"coverage {plain_cov:.0%}, {plain.distinct_evaluations} evals"
    )
    print(
        f"  guided NSGA-II        : {len(guided.front)} pts, "
        f"coverage {guided_cov:.0%}, {guided.distinct_evaluations} evals"
    )
    print(
        f"  single Nautilus query : best point in "
        f"{single_query.distinct_evaluations} evals"
    )

    # The budgeted front search recovers most of the true trade-off...
    assert guided_cov >= 0.7
    # ...guidance does not hurt coverage and reduces evaluations...
    assert guided_cov >= plain_cov - 0.15
    # ...and a single query stays much cheaper than front modeling —
    # the paper's argument for query-based search.
    assert single_query.distinct_evaluations < 0.5 * guided.distinct_evaluations
