"""CI smoke check for the cross-campaign design archive.

Two assertions, end to end against a live daemon:

1. **Warm starts pay off.** Campaign A (cold) and campaign B (same query,
   different seed, ``warm_start``) run sequentially against one daemon
   sharing one archive. B must reach A's final best with strictly fewer
   distinct evaluations, the archive endpoints must serve the recorded
   history, and both Prometheus families must be exported.

2. **The archive is purely additive.** With the archive disabled, the full
   16-run engine-parity matrix stays bit-identical to the checked-in
   ``benchmarks/baselines/engine_parity.json`` — proving the tap, the
   warm-start plumbing and the guidance kind cost zero RNG draws when off.

Usage::

    PYTHONPATH=src python benchmarks/smoke_archive.py
"""

from __future__ import annotations

import json
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from smoke_engine_parity import BASELINE_PATH, run_workload  # noqa: E402

from repro.service import CampaignSpec, SearchService, ServiceClient  # noqa: E402

QUERY = "noc-frequency"
GENERATIONS = 12
WARM_SEEDS = 5


def check(condition: bool, label: str) -> None:
    if not condition:
        print(f"FAIL {label}")
        sys.exit(1)
    print(f"  ok {label}")


def warm_start_smoke(root: Path) -> None:
    service = SearchService(root, port=0, workers=1, archive=True).start()
    try:
        client = ServiceClient(port=service.port)

        cold = client.wait(
            client.submit(
                CampaignSpec(
                    query=QUERY, engine="nautilus",
                    generations=GENERATIONS, seed=0, label="cold",
                )
            ),
            timeout=600,
        )
        check(cold["state"] == "done", "campaign A (cold) completed")

        stats = client.archive_stats()
        check(
            stats["enabled"] and stats["rows"] > 0,
            f"archive recorded {stats['rows']} rows from campaign A",
        )
        payload = client.archive_query(QUERY, k=3)
        check(
            payload["count"] >= 1
            and payload["rows"][0]["raw"] >= cold["best_raw"],
            "GET /archive/query serves campaign A's best design",
        )

        warm = client.wait(
            client.submit(
                CampaignSpec(
                    query=QUERY, engine="nautilus",
                    generations=GENERATIONS, seed=1, label="warm",
                    warm_start=WARM_SEEDS,
                )
            ),
            timeout=600,
        )
        check(warm["state"] == "done", "campaign B (warm-started) completed")

        curve = client.curve(warm["id"])
        evals_to_reach = next(
            (
                point["distinct_evaluations"]
                for point in curve
                if point["best_raw"] >= cold["best_raw"]
            ),
            None,
        )
        check(
            evals_to_reach is not None,
            "campaign B reached campaign A's final best",
        )
        check(
            evals_to_reach < cold["distinct_evaluations"],
            f"with fewer distinct evaluations "
            f"({evals_to_reach} vs {cold['distinct_evaluations']})",
        )

        text = client.metrics_prometheus()
        check(
            "nautilus_archive_rows_total" in text
            and "nautilus_warm_start_seeds_total" in text,
            "Prometheus exports both archive families",
        )
    finally:
        service.stop()


def parity_smoke() -> None:
    with open(BASELINE_PATH, encoding="utf-8") as handle:
        baseline = json.load(handle)
    results = run_workload()
    check(
        results == baseline,
        "archive-disabled engine matrix bit-identical to engine_parity.json",
    )


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="nautilus-smoke-archive-") as tmp:
        warm_start_smoke(Path(tmp) / "campaigns")
    parity_smoke()
    print("archive smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
