"""Ablation: GA hyper-parameters (paper Section 2, "Evaluating GAs").

The paper discusses how population size and mutation rate trade exploration
against exploitation. This bench sweeps both around the paper's operating
point (population 10, mutation 0.1) on the Figure 6 query and reports the
landscape — checking the operating point is a sensible choice (no swept
alternative dominates it by a large margin) and that extreme settings
behave as the theory predicts (tiny mutation under-explores).
"""

from repro.core import DatasetEvaluator, GAConfig, GeneticSearch, minimize
from repro.experiments import run_many
from repro.fft import lut_hints

RUNS = 16
GENERATIONS = 40


def _run(dataset, population, mutation):
    objective = minimize("luts")

    def build(seed):
        return GeneticSearch(
            dataset.space,
            DatasetEvaluator(dataset),
            objective,
            GAConfig(
                population_size=population,
                mutation_rate=mutation,
                generations=GENERATIONS,
                seed=seed,
            ),
            hints=lut_hints(),
        )

    return run_many(build, RUNS)


def _sweep(dataset):
    rows = {}
    for population in (4, 10, 30):
        rows[f"pop={population}, mut=0.1"] = _run(dataset, population, 0.1)
    for mutation in (0.02, 0.3):
        rows[f"pop=10, mut={mutation}"] = _run(dataset, 10, mutation)
    return rows


def test_ablation_ga_params(benchmark, fft_ds):
    results = benchmark.pedantic(lambda: _sweep(fft_ds), rounds=1, iterations=1)
    best = fft_ds.best_value(minimize("luts"))
    threshold = 1.05 * best
    print()
    crossings = {}
    for label, result in results.items():
        crossings[label] = result.curve_cross(threshold)
        print(
            f"  {label:20s} final={result.mean_best():7.1f} LUTs "
            f"cross-5%bar={crossings[label]} "
            f"total={result.mean_distinct_evaluations():.0f}"
        )

    paper_point = crossings["pop=10, mut=0.1"]
    assert paper_point is not None
    # The paper's operating point is competitive: nothing in the sweep
    # reaches the bar at less than half its cost.
    for label, cross in crossings.items():
        if cross is not None:
            assert cross > 0.45 * paper_point, label
    # Big populations pay more evaluations per unit progress.
    assert (
        results["pop=30, mut=0.1"].mean_distinct_evaluations()
        > results["pop=10, mut=0.1"].mean_distinct_evaluations()
    )
    # Starved mutation under-explores: worse final quality than the paper
    # point or later crossing.
    starved = results["pop=10, mut=0.02"]
    paper = results["pop=10, mut=0.1"]
    assert (
        starved.mean_best() >= paper.mean_best()
        or (crossings["pop=10, mut=0.02"] or 10**9) >= paper_point
    )
