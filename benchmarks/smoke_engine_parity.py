"""CI smoke check: seeded engine curves must be bit-stable across refactors.

Runs fig4/fig6-style workloads (noc-frequency and fft-luts) through every
single-objective engine — the baseline GA, the guided (nautilus) GA, the
adaptive-confidence GA, and the random-sampling baseline — and compares the
*full* per-generation convergence curve of each seeded run against the
checked-in baseline in ``benchmarks/baselines/engine_parity.json``.

Where ``smoke_eval_counts.py`` pins only the end-of-run distinct-evaluation
count, this check pins every point of every curve: generation index,
distinct evaluations, best raw metric and best internal score. Any engine
or kernel refactor must leave all of them bit-identical for a fixed seed;
a drift here means seeded searches no longer reproduce prior revisions.

The matrix runs with observability (hint attribution + health telemetry)
at its default, *enabled* — so the pinned baseline also proves telemetry
never perturbs the search. A second in-process pass re-runs seeded
GA/adaptive/Pareto searches with ``GAConfig(observability=False)`` and
demands bit-identical curves: instrumentation must consume zero RNG.
A third pass re-runs the full matrix with ``GAConfig(tracing=True)``
against the same baseline — span tracing is held to the same zero-RNG
bar — and checks one traced run's span tree closes its accounting.

Usage::

    PYTHONPATH=src python benchmarks/smoke_engine_parity.py             # check
    PYTHONPATH=src python benchmarks/smoke_engine_parity.py --update    # rebaseline
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.core import (
    AdaptiveSearch,
    DatasetEvaluator,
    GAConfig,
    GeneticSearch,
    RandomSearch,
)
from repro.queries import QUERIES, build_hints, load_dataset, resolve_objective

BASELINE_PATH = Path(__file__).parent / "baselines" / "engine_parity.json"
WORKLOADS = ("noc-frequency", "fft-luts")
ENGINES = ("baseline", "nautilus", "adaptive", "random")
SEEDS = (0, 1)
GENERATIONS = 15
RANDOM_BUDGET = 120


def _build(
    engine: str, dataset, objective, hint_kind: str, seed: int,
    tracing: bool = False,
):
    evaluator = DatasetEvaluator(dataset)
    config = GAConfig(generations=GENERATIONS, seed=seed, tracing=tracing)
    if engine == "random":
        return RandomSearch(
            dataset.space, evaluator, objective, budget=RANDOM_BUDGET,
            seed=seed, tracing=tracing,
        )
    if engine == "baseline":
        return GeneticSearch(dataset.space, evaluator, objective, config)
    hints = build_hints(hint_kind)
    if engine == "nautilus":
        return GeneticSearch(
            dataset.space, evaluator, objective, config, hints=hints
        )
    return AdaptiveSearch(dataset.space, evaluator, objective, config, hints=hints)


def run_workload(tracing: bool = False) -> dict[str, dict]:
    results = {}
    for query_name in WORKLOADS:
        query = QUERIES[query_name]
        dataset = load_dataset(query.space)
        objective, hint_kind = resolve_objective(query)
        for engine in ENGINES:
            for seed in SEEDS:
                search = _build(
                    engine, dataset, objective, hint_kind, seed,
                    tracing=tracing,
                )
                result = search.run()
                results[f"{query_name}/{engine}/{seed}"] = {
                    "stop_reason": result.stop_reason,
                    "distinct_evaluations": result.distinct_evaluations,
                    "curve": [
                        [
                            r.generation,
                            r.distinct_evaluations,
                            r.best_raw,
                            r.best_score,
                        ]
                        for r in result.records
                    ],
                }
    return results


def _curve(result) -> list[list]:
    return [
        [r.generation, r.distinct_evaluations, r.best_raw, r.best_score]
        for r in result.records
    ]


def check_observability_identity() -> list[str]:
    """Same seed, observability on vs. off -> bit-identical curves."""
    from repro.core import ParetoSearch
    from repro.queries import MULTI_QUERIES, resolve_multi_objectives

    failures = []
    query = QUERIES["noc-frequency"]
    dataset = load_dataset(query.space)
    objective, hint_kind = resolve_objective(query)
    hints = build_hints(hint_kind)
    for engine in ("baseline", "nautilus", "adaptive"):
        curves = {}
        for enabled in (True, False):
            config = GAConfig(
                generations=GENERATIONS, seed=0, observability=enabled
            )
            evaluator = DatasetEvaluator(dataset)
            if engine == "baseline":
                search = GeneticSearch(
                    dataset.space, evaluator, objective, config
                )
            elif engine == "nautilus":
                search = GeneticSearch(
                    dataset.space, evaluator, objective, config, hints=hints
                )
            else:
                search = AdaptiveSearch(
                    dataset.space, evaluator, objective, config, hints=hints
                )
            curves[enabled] = _curve(search.run())
        if curves[True] != curves[False]:
            failures.append(f"  noc-frequency/{engine}: observability drift")
        else:
            print(f"  ok noc-frequency/{engine}: observability on == off")
    multi = MULTI_QUERIES["noc-frequency-vs-area-delay"]
    objectives, __ = resolve_multi_objectives(multi)
    fronts = {}
    for enabled in (True, False):
        search = ParetoSearch(
            dataset.space,
            DatasetEvaluator(dataset),
            objectives,
            GAConfig(
                population_size=24,
                generations=GENERATIONS,
                seed=0,
                observability=enabled,
            ),
        )
        result = search.run()
        fronts[enabled] = (_curve(result), sorted(map(tuple, result.front_raws())))
    if fronts[True] != fronts[False]:
        failures.append("  noc pareto: observability drift")
    else:
        print("  ok noc pareto: observability on == off")
    return failures


def check_tracing_identity() -> list[str]:
    """Span tracing on -> the whole 16-run matrix stays bit-identical.

    Re-runs every workload/engine/seed cell with ``GAConfig(tracing=True)``
    (and ``RandomSearch(tracing=True)``) and compares each curve against
    the same checked-in baseline the untraced matrix is pinned to: the
    span layer must consume zero RNG draws. One traced run's tree is then
    checked structurally — all spans closed, accounting invariants hold.
    """
    from repro.obs import validate_accounting

    failures = []
    expected = json.loads(BASELINE_PATH.read_text())
    traced = run_workload(tracing=True)
    drifted = sorted(key for key in expected if traced.get(key) != expected[key])
    if drifted:
        failures.extend(f"  {key}: tracing perturbed the curve" for key in drifted)
    else:
        print(f"  ok tracing: all {len(expected)} traced runs match baseline")
    query = QUERIES["noc-frequency"]
    dataset = load_dataset(query.space)
    objective, hint_kind = resolve_objective(query)
    search = _build(
        "nautilus", dataset, objective, hint_kind, seed=0, tracing=True
    )
    search.run()
    report = validate_accounting(search.spans())
    if not report["ok"] or report["open_spans"]:
        failures.append(
            "  noc-frequency/nautilus: span accounting broken: "
            + "; ".join(report["errors"])
            + f" ({report['open_spans']} open)"
        )
    else:
        print(
            f"  ok tracing: {report['spans']} spans, accounting closed "
            f"({report['task_spans']} task spans)"
        )
    return failures


def check_guidance_identity() -> list[str]:
    """Explicit providers must match the hints= shorthand bit-for-bit.

    ``GeneticSearch(hints=h)`` and ``GeneticSearch(guidance=StaticHints(h))``
    are two spellings of the same search; likewise ``AdaptiveSearch`` and a
    plain GA composed with an ``AdaptiveConfidence`` provider. Any drift
    means the guidance refactor changed engine behavior.
    """
    from repro.core import AdaptiveConfidence, StaticHints

    failures = []
    query = QUERIES["noc-frequency"]
    dataset = load_dataset(query.space)
    objective, hint_kind = resolve_objective(query)
    hints = build_hints(hint_kind)
    config = GAConfig(generations=GENERATIONS, seed=0)
    pairs = {
        "static": (
            GeneticSearch(
                dataset.space, DatasetEvaluator(dataset), objective, config,
                hints=hints,
            ),
            GeneticSearch(
                dataset.space, DatasetEvaluator(dataset), objective, config,
                guidance=StaticHints(hints),
            ),
        ),
        "adaptive": (
            AdaptiveSearch(
                dataset.space, DatasetEvaluator(dataset), objective, config,
                hints=hints,
            ),
            GeneticSearch(
                dataset.space, DatasetEvaluator(dataset), objective, config,
                guidance=AdaptiveConfidence(hints),
            ),
        ),
    }
    for kind, (shorthand, explicit) in pairs.items():
        if _curve(shorthand.run()) != _curve(explicit.run()):
            failures.append(f"  noc-frequency/{kind}: provider drift")
        else:
            print(f"  ok noc-frequency/{kind}: provider == shorthand")
    return failures


def check_encoded_identity() -> list[str]:
    """Trusted code vectors must agree with the validating decode path.

    Every genome a seeded search produces travels the trusted fast path
    (codes recombined/stepped without re-validation). Round-tripping each
    one through the validating boundary — decode to a config dict, re-encode
    via ``space.genome`` — must land on identical codes, keys and equality;
    any divergence means the fast path can manufacture a design the
    validating path would reject or key differently.
    """
    import random as _random

    from repro.core import Genome
    from repro.core.params import values_key

    failures = []
    query = QUERIES["noc-frequency"]
    dataset = load_dataset(query.space)
    space = dataset.space
    objective, hint_kind = resolve_objective(query)
    search = _build("nautilus", dataset, objective, hint_kind, seed=0)
    result = search.run()
    genomes = [ind.genome for ind in search._population]
    genomes.append(space.genome(result.best_config))
    rng = _random.Random(2024)
    genomes.extend(space.random_genome(rng) for _ in range(64))
    bad = 0
    for genome in genomes:
        revalidated = space.genome(genome.as_dict())
        ok = (
            revalidated.codes == genome.codes
            and revalidated == genome
            and revalidated.key == genome.key
            and hash(revalidated) == hash(genome)
            and space.codec.values_key(genome.codes)
            == values_key(genome.as_dict().values())
            and Genome.from_codes(space, genome.codes).as_dict()
            == genome.as_dict()
        )
        bad += not ok
    if bad:
        failures.append(
            f"  noc-frequency/encoded: {bad}/{len(genomes)} genomes diverge "
            "between trusted codes and the validating path"
        )
    else:
        print(
            f"  ok noc-frequency/encoded: {len(genomes)} genomes identical "
            "via codes and validating re-encode"
        )
    return failures


def main(argv: list[str]) -> int:
    results = run_workload()
    if "--update" in argv:
        BASELINE_PATH.parent.mkdir(parents=True, exist_ok=True)
        BASELINE_PATH.write_text(json.dumps(results, indent=1) + "\n")
        print(f"baseline written to {BASELINE_PATH}")
        return 0
    expected = json.loads(BASELINE_PATH.read_text())
    failures = []
    for key in sorted(expected):
        want, got = expected[key], results.get(key)
        if got != want:
            failures.append(f"  {key}: curves drifted")
        else:
            print(
                f"  ok {key}: {len(want['curve'])} curve points, "
                f"{want['distinct_evaluations']} distinct evals"
            )
    extra = sorted(set(results) - set(expected))
    if extra:
        failures.append(f"  unexpected runs not in baseline: {extra}")
    failures.extend(check_observability_identity())
    failures.extend(check_tracing_identity())
    failures.extend(check_guidance_identity())
    failures.extend(check_encoded_identity())
    if failures:
        print("seeded engine curves drifted from the baseline:")
        print("\n".join(failures))
        print("(if the change is intentional, rerun with --update)")
        return 1
    print(f"all {len(expected)} runs match {BASELINE_PATH.name}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
