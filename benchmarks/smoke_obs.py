"""CI smoke check: the observability surface works end to end.

Boots an in-process :class:`repro.service.SearchService`, runs one tiny
seeded campaign to completion, then verifies the telemetry the daemon
exposes:

* ``GET /metrics?format=prometheus`` parses as text exposition format
  0.0.4 (checked with the small independent parser below — deliberately
  *not* ``repro.obs.parse_prometheus``, so a bug in the library parser
  cannot hide a bug in the renderer) and covers the evaluation-stack,
  scheduler, and kernel metric families;
* the JSON ``GET /metrics`` snapshot still carries the per-campaign keys;
* ``GET /campaigns/<id>/hints`` reports per-channel attribution with
  non-zero proposals;
* the campaign status carries a ``health`` block with a stall-risk score.

Usage::

    PYTHONPATH=src python benchmarks/smoke_obs.py
"""

from __future__ import annotations

import re
import sys
import tempfile
import urllib.request

from repro.service import CampaignSpec, SearchService

_METRIC_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)(?P<labels>\{[^}]*\})? "
    r"(?P<value>[0-9eE+.\-]+|\+Inf|-Inf|NaN)$"
)

#: Families the daemon must expose: eval stack, scheduler, kernel.
REQUIRED_FAMILIES = (
    "nautilus_eval_requests_total",
    "nautilus_eval_distinct_total",
    "nautilus_eval_memo_hits_total",
    "nautilus_eval_batch_seconds",
    "nautilus_scheduler_steps_total",
    "nautilus_campaign_states",
    "nautilus_search_generations",
    "nautilus_search_best_score",
)


def parse_exposition(text: str) -> dict[str, list[tuple[str, float]]]:
    """Parse Prometheus text format 0.0.4: {family: [(sample line, value)]}.

    Independent ~30-line stdlib parser; raises ValueError on any line that
    is not a comment, a blank, or a well-formed sample.
    """
    families: dict[str, list[tuple[str, float]]] = {}
    typed: dict[str, str] = {}
    for line in text.splitlines():
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            __, __, name, kind = line.split(" ", 3)
            if kind not in ("counter", "gauge", "histogram", "summary", "untyped"):
                raise ValueError(f"bad TYPE {kind!r} for {name}")
            typed[name] = kind
            continue
        if line.startswith("#"):
            continue
        match = _METRIC_LINE.match(line)
        if match is None:
            raise ValueError(f"malformed sample line: {line!r}")
        sample = match.group("name")
        # histogram samples (_bucket/_sum/_count) belong to the base family
        family = re.sub(r"_(bucket|sum|count)$", "", sample)
        family = family if family in typed else sample
        if family not in typed:
            raise ValueError(f"sample {sample!r} has no preceding TYPE line")
        families.setdefault(family, []).append((line, float(match.group("value"))))
    return families


def main() -> int:
    failures: list[str] = []
    with tempfile.TemporaryDirectory() as root:
        service = SearchService(root, port=0, workers=1)
        service.start(run_scheduler=False)
        try:
            spec = CampaignSpec(query="noc-frequency", generations=6, seed=7)
            cid = service.scheduler.submit(spec).id
            while service.scheduler.tick():
                pass

            base = service.address
            with urllib.request.urlopen(f"{base}/metrics?format=prometheus") as r:
                content_type = r.headers.get("Content-Type", "")
                text = r.read().decode()
            if "text/plain" not in content_type:
                failures.append(f"bad content type {content_type!r}")
            families = parse_exposition(text)
            for name in REQUIRED_FAMILIES:
                if name not in families:
                    failures.append(f"missing metric family {name}")
                elif not any(value == value for __, value in families[name]):
                    failures.append(f"family {name} has no finite samples")
            print(f"prometheus exposition: {len(families)} families, "
                  f"{sum(len(v) for v in families.values())} samples")

            import json

            with urllib.request.urlopen(f"{base}/metrics") as r:
                snapshot = json.loads(r.read())
            for key in ("campaign_best_score", "campaign_health",
                        "evaluations_total", "cache_hit_rate"):
                if key not in snapshot:
                    failures.append(f"JSON snapshot missing {key!r}")

            with urllib.request.urlopen(f"{base}/campaigns/{cid}/hints") as r:
                hints = json.loads(r.read())
            channels = hints.get("channels", {})
            if not channels:
                failures.append("hint report has no channels")
            if sum(c["proposals"] for c in channels.values()) == 0:
                failures.append("hint report counted zero proposals")
            print(f"hint report: {hints.get('generations')} generations, "
                  f"channels {sorted(channels)}")

            with urllib.request.urlopen(f"{base}/campaigns/{cid}") as r:
                status = json.loads(r.read())
            health = status.get("health")
            if not health or "stall_risk" not in health:
                failures.append("campaign status missing health/stall_risk")
            else:
                print(f"health: diversity={health['diversity']:.3f} "
                      f"stall_risk={health['stall_risk']:.2f}")
        finally:
            service.stop()
    if failures:
        print("observability smoke failed:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print("observability smoke ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
