"""Figure 1: frequency vs area over ~30k VC router variants.

Paper: "LUT usage and maximum frequency for approximately 30,000 router
design points based on FPGA synthesis results" — a cloud spanning a wide
frequency band (60-200 MHz there) and ~20k LUTs of area, all functionally
interchangeable. The claim reproduced: the space is huge and the metrics
spread over a large multiplicative range, motivating automated search.
"""

from repro.experiments import figure1


def test_fig1_router_scatter(benchmark, noc_dataset, publish):
    figure = benchmark.pedantic(
        lambda: figure1(noc_dataset), rounds=1, iterations=1
    )
    publish(figure)

    assert figure.notes["design_points"] == 30_240
    lut_lo, lut_hi = figure.notes["lut_range"]
    fmax_lo, fmax_hi = figure.notes["fmax_range_mhz"]
    # Paper band: tens of LUTs x 100 spread, 60-200 MHz. Ours: the same
    # qualitative spread (orders of magnitude in area, >3x in frequency).
    assert lut_hi / lut_lo > 20
    assert fmax_hi / fmax_lo > 3
    assert 100 <= fmax_hi <= 300  # paper's Virtex-6 plateau is ~200 MHz
