"""Ablation: empirically estimated hints vs expert hints vs none.

Paper Section 4.1: for the NoC the hints were estimated "by synthesizing 80
designs (less than 0.3% of the design space) and observing trends". This
bench runs that estimation live (sweep budget included in the cost!) and
compares three ways of obtaining guidance on the Figure 4 query:

* baseline (no hints);
* hints estimated by the 80-design sweep, with the sweep's cost charged
  up front;
* the static sweep-derived hint vector shipped in ``repro.noc.hints``.

Claim reproduced: even after paying for its own sweep, estimation-guided
search reaches the quality bar cheaper than the unguided baseline.
"""

from repro.core import DatasetEvaluator, GAConfig, GeneticSearch, maximize
from repro.experiments import run_many
from repro.noc import estimate_router_hints, frequency_hints

RUNS = 24
GENERATIONS = 80
SWEEP_BUDGET = 80


def _sweep(dataset):
    objective = maximize("fmax_mhz")
    evaluator = DatasetEvaluator(dataset)
    estimated, sweep_cost = estimate_router_hints(
        dataset.space, evaluator, objective, budget=SWEEP_BUDGET, seed=80
    )

    def factory(hints):
        def build(seed):
            return GeneticSearch(
                dataset.space,
                evaluator,
                objective,
                GAConfig(generations=GENERATIONS, seed=seed),
                hints=hints,
            )

        return build

    return {
        "baseline": (run_many(factory(None), RUNS), 0),
        "estimated hints": (run_many(factory(estimated), RUNS), sweep_cost),
        "static sweep vector": (run_many(factory(frequency_hints(0.8)), RUNS), 0),
    }


def test_ablation_hint_estimation(benchmark, noc_dataset):
    results = benchmark.pedantic(
        lambda: _sweep(noc_dataset), rounds=1, iterations=1
    )
    best = noc_dataset.best_value(maximize("fmax_mhz"))
    threshold = 0.99 * best
    print()
    totals = {}
    for label, (result, upfront) in results.items():
        cross = result.curve_cross(threshold)
        totals[label] = (cross + upfront) if cross is not None else None
        print(
            f"  {label:22s} cross-1%={cross} (+{upfront} sweep) "
            f"=> effective {totals[label]}"
        )

    baseline_total = totals["baseline"]
    estimated_total = totals["estimated hints"]
    assert baseline_total is not None and estimated_total is not None
    # Estimation pays for itself: sweep + guided search < unguided search.
    assert estimated_total < baseline_total
