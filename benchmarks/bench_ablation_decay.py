"""Ablation: the importance-decay hint (paper Section 3).

"The idea is to allow for the importance of some parameters to decay over
time ... to initially focus on parameters believed to be important to
coarsely navigate towards promising regions ... and then gradually shift
focus to experimenting with less important parameters to perform more
localized fine-tuning."

On the Figure 4 query the coarse parameters (pipeline depth, VC count,
allocator) point at the right region but the last mile is decided by
low-importance parameters. With decay the late-phase mutation budget
shifts to those, improving final quality of results over no-decay at the
same confidence.
"""

from repro.core import DatasetEvaluator, GAConfig, GeneticSearch, maximize
from repro.experiments import run_many
from repro.noc import frequency_hints

RUNS = 24
GENERATIONS = 80
DECAYS = (0.0, 0.03, 0.06, 0.15)


def _sweep(dataset):
    objective = maximize("fmax_mhz")

    def factory(decay):
        hints = frequency_hints(0.8).with_decay(decay)

        def build(seed):
            return GeneticSearch(
                dataset.space,
                DatasetEvaluator(dataset),
                objective,
                GAConfig(generations=GENERATIONS, seed=seed),
                hints=hints,
            )

        return build

    return {decay: run_many(factory(decay), RUNS) for decay in DECAYS}


def test_ablation_importance_decay(benchmark, noc_dataset):
    results = benchmark.pedantic(lambda: _sweep(noc_dataset), rounds=1, iterations=1)
    objective_best = noc_dataset.best_value(maximize("fmax_mhz"))
    threshold = 0.995 * objective_best
    print()
    for decay, result in results.items():
        print(
            f"  decay={decay:<5} final={result.mean_best():7.2f} MHz "
            f"cross-0.5%bar={result.curve_cross(threshold)}"
        )

    # Decayed variants reach the fine-tuned (0.5%) bar no later than the
    # frozen-importance variant, and the final quality is at least as good.
    frozen = results[0.0]
    best_decayed = max(
        (results[d] for d in DECAYS if d > 0), key=lambda r: r.mean_best()
    )
    assert best_decayed.mean_best() >= frozen.mean_best() - 0.5
    frozen_cross = frozen.curve_cross(threshold)
    decayed_cross = best_decayed.curve_cross(threshold)
    if frozen_cross is not None:
        assert decayed_cross is not None and decayed_cross <= frozen_cross * 1.2
