"""Shared benchmark fixtures: cached datasets and a results directory.

Every benchmark regenerates one paper figure at paper scale (40 runs of 80
generations, Section 4.1; Figure 3 uses 20 runs), writes the series to
``results/<fig>.csv``, an ASCII rendering to ``results/<fig>.txt``, and
asserts the paper's qualitative claims (who wins, by roughly what factor).

Because every search is seeded and the synthesis flow is deterministic, the
numbers are exactly reproducible run to run; the assertions use generous
bands only to tolerate future model recalibration.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import FigureSeries, ascii_plot


@pytest.fixture(scope="session")
def noc_dataset():
    from repro.dataset import router_dataset

    return router_dataset()


@pytest.fixture(scope="session")
def fft_ds():
    from repro.dataset import fft_dataset

    return fft_dataset()


@pytest.fixture(scope="session")
def results_dir() -> Path:
    path = Path(__file__).resolve().parent.parent / "results"
    path.mkdir(exist_ok=True)
    return path


@pytest.fixture
def publish(results_dir):
    """Write a figure's CSV + ASCII chart and echo the headline numbers."""

    def _publish(figure: FigureSeries, logx: bool = False, logy: bool = False):
        figure.to_csv(results_dir / f"{figure.name}.csv")
        rendering = ascii_plot(figure, logx=logx, logy=logy)
        summary = "\n".join(figure.summary_rows())
        (results_dir / f"{figure.name}.txt").write_text(
            rendering + "\n\n" + summary + "\n"
        )
        print()
        print(rendering)
        print(summary)
        return figure

    return _publish
