"""FIR filter quality/area trade-off — computed metrics meet Pareto search.

The FIR generator's stopband attenuation is computed from the quantized
coefficients' actual frequency response, so "how many coefficient bits do I
need?" has a measurable answer. This example maps the area-vs-quality
trade-off front with the multi-objective extension, then answers the
question an IP user actually asks: the cheapest design meeting a 50 dB
spec, found by a constrained single query.

Run with:  python examples/fir_quality_tradeoff.py
"""

from repro.analysis import FigureSeries, ascii_plot
from repro.core import (
    DatasetEvaluator,
    GAConfig,
    GeneticSearch,
    ParetoSearch,
    maximize,
    minimize,
)
from repro.dataset import fir_dataset
from repro.dsp import fir_area_hints

print("loading FIR dataset (characterizes ~2.8k designs on first run)...")
dataset = fir_dataset()

# --- the full trade-off front ---------------------------------------------------

front = ParetoSearch(
    dataset.space,
    DatasetEvaluator(dataset),
    [minimize("luts"), maximize("stopband_db")],
    GAConfig(population_size=24, generations=40, seed=2, elitism=1),
).run()

figure = FigureSeries(
    "fir_front", "FIR: area vs stopband attenuation", "LUTs", "Stopband (dB)"
)
figure.add(
    "non-dominated designs",
    [(luts, att) for luts, att in front.front_raws()],
)
print(ascii_plot(figure, logx=True))
print(
    f"{len(front.front)} non-dominated designs from "
    f"{front.distinct_evaluations} evaluations\n"
)
for luts, attenuation in front.front_raws()[:8]:
    print(f"  {luts:7.0f} LUTs -> {attenuation:5.1f} dB")

# --- the spec-driven query -------------------------------------------------------

spec = minimize(
    "luts", name="luts_at_50dB", constraint=lambda m: m["stopband_db"] >= 50.0
)
result = GeneticSearch(
    dataset.space,
    DatasetEvaluator(dataset),
    spec,
    GAConfig(seed=3, generations=40),
    hints=fir_area_hints(),
).run()
winner = dataset.lookup(result.best.genome)
print(
    f"\ncheapest design meeting 50 dB: {winner['luts']:.0f} LUTs at "
    f"{winner['stopband_db']:.1f} dB "
    f"({result.distinct_evaluations} synthesis runs)"
)
print("configuration:", result.best_config)
