"""Nautilus-enabling your own IP generator — the IP author's workflow.

The paper's pitch is that design-space search should ship *inside* the IP
generator. This example shows everything an IP author adds to make that
happen for a toy AXI crossbar generator:

1. elaborate configurations into netlists with ``repro.synth`` primitives;
2. declare the parameter space (with a structural feasibility constraint);
3. either hand-author hints or derive them with the built-in sweep
   (`estimate_hints`, the paper's non-expert methodology);
4. expose a one-call ``tune()`` entry point to IP users.

Run with:  python examples/custom_ip_generator.py
"""

from repro.core import (
    CallableEvaluator,
    DesignSpace,
    GAConfig,
    GeneticSearch,
    IntParam,
    OrderedParam,
    PowOfTwoParam,
    estimate_hints,
    maximize,
)
from repro.synth import (
    Crossbar,
    LogicCloud,
    Module,
    Register,
    RoundRobinArbiter,
    MatrixArbiter,
    SynthesisFlow,
    emit_verilog,
)

# --- the IP author's generator -------------------------------------------------


def build_axi_crossbar(config):
    """Elaborate an AXI crossbar: masters x slaves, with an arbiter per slave."""
    module = Module(
        f"axi_xbar_m{config['masters']}s{config['slaves']}w{config['data_width']}"
    )
    module.add("in_regs", Register(config["data_width"]), replicate=config["masters"])
    arbiter = (
        MatrixArbiter(config["masters"])
        if config["arbiter"] == "matrix"
        else RoundRobinArbiter(config["masters"])
    )
    module.add("arbiters", arbiter, replicate=config["slaves"])
    module.add(
        "switch",
        Crossbar(config["masters"], config["slaves"], config["data_width"]),
    )
    module.add(
        "decode",
        LogicCloud(luts=8 + 2 * config["slaves"], levels=2),
        replicate=config["masters"],
    )
    module.add("out_regs", Register(config["data_width"]), replicate=config["slaves"])
    module.chain("in_regs", "decode", "arbiters", "switch", "out_regs")
    return module


def crossbar_space():
    return DesignSpace(
        "axi_crossbar",
        [
            IntParam("masters", 2, 16),
            IntParam("slaves", 2, 16),
            PowOfTwoParam("data_width", 32, 512),
            OrderedParam("arbiter", ("round_robin", "matrix")),
        ],
        # A crossbar wider than 8x8 at 512 bits would never meet timing;
        # the author knows this and carves it out structurally.
        constraints=[
            lambda c: not (c["data_width"] >= 512 and c["masters"] * c["slaves"] > 64)
        ],
    )


# --- hint derivation (once, at IP release time) ---------------------------------

flow = SynthesisFlow()
space = crossbar_space()
evaluator = CallableEvaluator(
    lambda g: flow.run(build_axi_crossbar(g.as_dict())).metrics()
)
objective = maximize("fmax_mhz")

print("deriving hints from an 80-design sweep (ships with the IP)...")
hints, used = estimate_hints(space, evaluator, objective, budget=80, seed=42)
for name in space.param_names:
    h = hints.params.get(name)
    if h:
        print(f"  {name:12s} importance={h.importance:3d} bias={h.bias:+.2f}")
    else:
        print(f"  {name:12s} (no clear trend)")
print(f"  ({used} synthesis runs spent)\n")


# --- what the IP user calls ------------------------------------------------------


def tune(seed=0):
    """The generator's public auto-tune entry point."""
    return GeneticSearch(
        space,
        evaluator,
        objective,
        GAConfig(generations=40, seed=seed),
        hints=hints,
    ).run()


result = tune()
print(
    f"auto-tuned crossbar: {result.best_raw:.0f} MHz after "
    f"{result.distinct_evaluations} synthesis runs"
)
print("configuration:", result.best_config)

print("\ngenerated RTL (head):")
print("\n".join(emit_verilog(build_axi_crossbar(result.best_config)).splitlines()[:12]))
