"""Simulation-driven NoC tuning — fitness from dynamic behaviour.

The paper lists throughput among the candidate fitness metrics and gets it
from "FPGA synthesis and/or simulations". This example optimizes a metric
that only the cycle-level simulator can produce: **saturation throughput
per mm^2** of a 16-endpoint network, under uniform and adversarial traffic.

Each evaluation runs the flit-level simulator (plus the synthesis flow for
area), so this is the expensive-evaluation regime the paper targets: the
guided GA's job is to spend as few of them as possible.

Run with:  python examples/noc_simulation_tuning.py
"""

from repro.core import (
    CallableEvaluator,
    ChoiceParam,
    DesignSpace,
    GAConfig,
    GeneticSearch,
    HintSet,
    IntParam,
    ParamHints,
    PowOfTwoParam,
    maximize,
)
from repro.noc import (
    BitComplement,
    NetworkSimulator,
    RouterConfig,
    asic_estimate,
    build_router,
    build_topology,
    saturation_throughput,
)
from repro.synth import SynthesisFlow

ENDPOINTS = 16
FAMILIES = ("ring", "double_ring", "mesh", "torus")

space = DesignSpace(
    "sim_tuned_noc",
    [
        ChoiceParam("topology", FAMILIES),
        PowOfTwoParam("num_vcs", 2, 4),
        PowOfTwoParam("buffer_depth", 2, 16),
        IntParam("pipeline_stages", 1, 3),
    ],
)

flow = SynthesisFlow()
_topologies = {family: build_topology(family, ENDPOINTS) for family in FAMILIES}


def evaluate(genome):
    config = genome.as_dict()
    topology = _topologies[config["topology"]]
    router = RouterConfig(
        num_vcs=config["num_vcs"],
        buffer_depth=config["buffer_depth"],
        flit_width=64,
        vc_allocator="separable_input_first",
        sw_allocator="round_robin",
        pipeline_stages=config["pipeline_stages"],
        crossbar_type="mux",
        speculative=False,
        buffer_org="private",
        num_ports=topology.router_radix,
    )
    simulator = NetworkSimulator(topology, router)
    saturation = saturation_throughput(simulator, cycles=400)
    adversarial = simulator.run(
        max(saturation / 2, 0.02), cycles=400, pattern=BitComplement()
    )
    area = asic_estimate(flow.run(build_router(router))).area_mm2 * topology.num_routers
    return {
        "saturation_rate": saturation,
        "adversarial_latency": adversarial.avg_latency_cycles,
        "area_mm2": area,
        "saturation_per_mm2": saturation / area,
    }


evaluator = CallableEvaluator(evaluate)

hints = HintSet(
    {
        "topology": ParamHints(
            importance=90, bias=0.9,
            ordering=("ring", "double_ring", "mesh", "torus"),
        ),
        "buffer_depth": ParamHints(importance=60, target=8),
        "num_vcs": ParamHints(importance=40, bias=0.4),
    },
    confidence=0.6,
)

objective = maximize("saturation_per_mm2")
print(f"searching {space.size()} network configs (each eval = full simulation)...")
result = GeneticSearch(
    space,
    evaluator,
    objective,
    GAConfig(seed=4, generations=12, population_size=8, max_evaluations=60),
    hints=hints,
).run()

print(
    f"\nbest: {result.best_raw:.3f} saturation-flits/endpoint/cycle per mm^2 "
    f"after {result.distinct_evaluations} simulated designs"
)
print("configuration:", result.best_config)
metrics = evaluate(result.best.genome)
print(
    f"  saturation {metrics['saturation_rate']:.3f} flits/ep/cy, "
    f"area {metrics['area_mm2']:.2f} mm2, "
    f"bit-complement latency {metrics['adversarial_latency']:.1f} cycles"
)
