"""NoC router tuning — the paper's Figure 4/5 scenario end to end.

An IP user needs a virtual-channel router but has no idea what nine
microarchitecture parameters like "separable_input_first" mean. This script
plays out the paper's workflow:

1. load (or build) the offline-characterized ~30k-design router dataset;
2. run the baseline GA and the weakly/strongly guided Nautilus on the
   "maximize frequency" query, averaged over several runs;
3. print the convergence curves the paper plots, the speedup headline, and
   the winning configuration with its generated Verilog.

Run with:  python examples/noc_router_tuning.py
"""

from repro.analysis import FigureSeries, ascii_plot
from repro.core import DatasetEvaluator, GAConfig, GeneticSearch, maximize
from repro.dataset import router_dataset
from repro.experiments import run_many
from repro.noc import WEAK_CONFIDENCE, STRONG_CONFIDENCE, build_router, frequency_hints
from repro.synth import emit_verilog

RUNS = 10
GENERATIONS = 80

print("loading router dataset (characterizes ~30k designs on first run)...")
dataset = router_dataset()
objective = maximize("fmax_mhz")
best_possible = dataset.best_value(objective)
print(f"{len(dataset)} designs; best achievable frequency {best_possible:.1f} MHz\n")


def factory(hints, label):
    def build(seed):
        return GeneticSearch(
            dataset.space,
            DatasetEvaluator(dataset),
            objective,
            GAConfig(generations=GENERATIONS, seed=seed),
            hints=hints,
            label=label,
        )

    return build


variants = {
    "Baseline": run_many(factory(None, "baseline"), RUNS),
    "Nautilus (weakly guided)": run_many(
        factory(frequency_hints(WEAK_CONFIDENCE), "weak"), RUNS
    ),
    "Nautilus (strongly guided)": run_many(
        factory(frequency_hints(STRONG_CONFIDENCE), "strong"), RUNS
    ),
}

figure = FigureSeries(
    "fig4", "NoC: Maximize Frequency", "# Designs Evaluated", "Frequency (MHz)"
)
for label, result in variants.items():
    figure.add(label, result.mean_curve())
print(ascii_plot(figure))

threshold = 0.99 * best_possible
print(f"\nconvergence to within 1% of best ({threshold:.1f} MHz):")
baseline_cross = variants["Baseline"].curve_cross(threshold)
for label, result in variants.items():
    cross = result.curve_cross(threshold)
    speed = f"{baseline_cross / cross:.1f}x" if cross and baseline_cross else "-"
    print(
        f"  {label:28s} {cross and round(cross):>5} designs evaluated "
        f"(speedup vs baseline: {speed}, total synthesized "
        f"{result.mean_distinct_evaluations():.0f})"
    )

winner = max(
    (result for result in variants.values()),
    key=lambda r: r.mean_best(),
).results[0]
print("\nbest router found:", winner.best_config)
print("\nfirst lines of its generated Verilog:")
verilog = emit_verilog(build_router(winner.best_config))
print("\n".join(verilog.splitlines()[:14]))
