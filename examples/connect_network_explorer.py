"""CONNECT-style network exploration — the paper's Figure 2 scenario.

Generates 64-endpoint NoCs across eight topology families and a sweep of
router configurations, re-targets them to a 65nm-like ASIC node, and shows
the area/power vs bisection-bandwidth clouds that motivate automated design
space search: functionally interchangeable networks spanning orders of
magnitude in every metric.

Run with:  python examples/connect_network_explorer.py
"""

from repro.analysis import ascii_plot
from repro.experiments import figure2
from repro.noc import NetworkGenerator

area_fig, power_fig = figure2()

print(ascii_plot(area_fig, logx=True, logy=True))
print()
print(ascii_plot(power_fig, logx=True, logy=True))

print("\nper-family summary at flit_width=64, 2 VCs:")
generator = NetworkGenerator()
print(
    f"{'family':26s} {'routers':>7s} {'area mm2':>9s} {'power mW':>9s} "
    f"{'bisection Gbps':>14s} {'Gbps/mm2':>9s}"
)
from repro.noc import TOPOLOGY_FAMILIES

for family in TOPOLOGY_FAMILIES:
    report = generator.generate(family, 64, {"flit_width": 64})
    print(
        f"{family:26s} {report.num_routers:7d} {report.area_mm2:9.2f} "
        f"{report.power_mw:9.0f} {report.bisection_gbps:14.1f} "
        f"{report.bisection_gbps / report.area_mm2:9.1f}"
    )

print(
    "\nmetric spread across the clouds: "
    f"bandwidth {area_fig.notes['bw_span_orders']} orders of magnitude, "
    f"area {area_fig.notes['x_span_orders']} orders — the scale that makes "
    "manual navigation hopeless (paper Section 1)."
)
