"""The gate-level synthesis path end to end — a mini EDA flow in Python.

The fast analytical flow prices RTL blocks with closed-form rules; this
example shows the ground-truth path underneath it on a real design: a
moving-average peak detector written in the word-level RTL DSL, elaborated
to a structurally-hashed gate network, simulated cycle by cycle against a
Python reference, technology-mapped onto LUT6s with the FlowMap-style
mapper, reported vendor-style, emitted as synthesizable Verilog — and then
swept by the guided GA over its implementation parameters.

Run with:  python examples/gate_level_flow.py
"""

import random

from repro.core import (
    CallableEvaluator,
    DesignSpace,
    GAConfig,
    GeneticSearch,
    HintSet,
    IntParam,
    ParamHints,
    minimize,
)
from repro.synth import Rtl, render_report


def build_peak_detector(width, window_log2):
    """Running mean over 2**window_log2 samples plus a peak-hold register."""
    m = Rtl(f"peak_detect_w{width}_a{window_log2}")
    sample = m.input("sample", width)
    acc_width = width + window_log2
    accumulator = m.reg("accumulator", acc_width)
    peak = m.reg("peak", width)
    # Leaky accumulator: acc += sample - acc/2^window  (classic 1-pole IIR).
    leak = accumulator >> window_log2
    grown = (accumulator + sample.resize(acc_width))[0:acc_width]
    m.next(accumulator, (grown - leak.resize(acc_width))[0:acc_width])
    mean = (accumulator >> window_log2).resize(width)
    is_peak = sample.ge(peak)
    m.next(peak, m.mux(is_peak, sample, peak))
    m.output("mean", mean)
    m.output("peak", peak)
    m.output("above_mean", sample.ge(mean))
    return m


# --- 1. elaborate and inspect ---------------------------------------------------

design = build_peak_detector(width=10, window_log2=4)
print(
    f"elaborated: {design.network.gate_count()} gates, "
    f"{len(design.network.dffs())} flip-flops, depth {design.network.depth()}"
)

# --- 2. verify by simulation against a Python reference --------------------------

simulator = design.simulator()
rng = random.Random(7)
reference_acc = reference_peak = 0
mismatches = 0
for _ in range(300):
    value = rng.randrange(1 << 10)
    out = simulator.step(
        {f"sample[{i}]": (value >> i) & 1 for i in range(10)}
    )
    got_peak = sum(out[f"peak[{i}]"] << i for i in range(10))
    mismatches += got_peak != reference_peak
    if value >= reference_peak:
        reference_peak = value
print(f"300-cycle simulation vs reference: {mismatches} mismatches")

# --- 3. map, report, emit ---------------------------------------------------------

report = design.synthesize()
print()
print(render_report(report))
verilog = design.verilog()
print(f"gate-level Verilog: {len(verilog.splitlines())} lines "
      f"(head: {verilog.splitlines()[0]!r})")

# --- 4. let the guided GA pick the implementation parameters ----------------------

space = DesignSpace(
    "peak_detector",
    [IntParam("width", 8, 16), IntParam("window_log2", 2, 6)],
)
evaluator = CallableEvaluator(
    lambda g: build_peak_detector(g["width"], g["window_log2"])
    .synthesize()
    .metrics()
)
hints = HintSet(
    {
        "width": ParamHints(importance=80, bias=1.0),
        "window_log2": ParamHints(importance=50, bias=1.0),
    },
    confidence=0.7,
)
result = GeneticSearch(
    space, evaluator, minimize("luts"), GAConfig(seed=3, generations=15), hints=hints
).run()
print(
    f"\nGA over the gate-level generator: {result.best_raw:.0f} LUTs minimum "
    f"at {result.best_config} ({result.distinct_evaluations} mapped designs)"
)
