"""FFT throughput-per-LUT search — the paper's Figure 7 scenario.

The Spiral-style FFT generator exposes six implementation parameters for a
1024-point transform. The composite objective is throughput (MSPS) divided
by LUTs — the kind of "custom-defined composite function" fitness the paper
highlights. Expert hints (authored by the generator's developer) steer the
search; a random-sampling baseline shows why a GA is used at all.

Run with:  python examples/fft_throughput_search.py
"""

from repro.core import (
    DatasetEvaluator,
    GAConfig,
    GeneticSearch,
    RandomSearch,
    maximize,
)
from repro.dataset import fft_dataset
from repro.fft import throughput_per_lut_hints

GENERATIONS = 80
SEED = 7

print("loading FFT dataset (characterizes ~12k designs on first run)...")
dataset = fft_dataset()
objective = maximize("msps_per_lut")
best_possible = dataset.best_value(objective)
print(
    f"{len(dataset)} feasible designs; best achievable "
    f"{best_possible:.3f} MSPS/LUT\n"
)

engines = {
    "random sampling": RandomSearch(
        dataset.space, DatasetEvaluator(dataset), objective, budget=400, seed=SEED
    ),
    "baseline GA": GeneticSearch(
        dataset.space,
        DatasetEvaluator(dataset),
        objective,
        GAConfig(generations=GENERATIONS, seed=SEED),
    ),
    "Nautilus (expert hints)": GeneticSearch(
        dataset.space,
        DatasetEvaluator(dataset),
        objective,
        GAConfig(generations=GENERATIONS, seed=SEED),
        hints=throughput_per_lut_hints(),
    ),
}

print(f"{'engine':26s} {'best':>8s} {'% of max':>9s} {'designs':>8s}")
for label, engine in engines.items():
    result = engine.run()
    print(
        f"{label:26s} {result.best_raw:8.3f} "
        f"{100 * result.best_raw / best_possible:8.1f}% "
        f"{result.distinct_evaluations:8d}"
    )

nautilus = engines["Nautilus (expert hints)"].run()
print("\nwinning design:")

for key, value in nautilus.best_config.items():
    print(f"  {key} = {value}")
metrics = dataset.lookup(nautilus.best.genome)
print(
    f"\n  -> {metrics['throughput_msps']:.0f} MSPS at {metrics['fmax_mhz']:.0f} MHz "
    f"in {metrics['luts']:.0f} LUTs, {metrics['brams']:.0f} BRAMs, "
    f"{metrics['dsps']:.0f} DSPs (SNR {metrics['snr_db']:.1f} dB)"
)

# The unconstrained winner may have sacrificed numerical quality (8-bit
# unscaled arithmetic has terrible SNR). The paper notes the fitness
# function "can also be adapted to constrain the algorithm": require a
# usable SNR and search again.
constrained = maximize(
    "msps_per_lut",
    name="msps_per_lut_snr40",
    constraint=lambda m: m["snr_db"] >= 40.0,
)
result = GeneticSearch(
    dataset.space,
    DatasetEvaluator(dataset),
    constrained,
    GAConfig(generations=GENERATIONS, seed=SEED),
    hints=throughput_per_lut_hints(),
).run()
metrics = dataset.lookup(result.best.genome)
print(
    f"\nwith an SNR >= 40 dB constraint: {result.best_raw:.3f} MSPS/LUT "
    f"(SNR {metrics['snr_db']:.1f} dB, bit_width {result.best_config['bit_width']}, "
    f"scaling {result.best_config['scaling']}) "
    f"after {result.distinct_evaluations} synthesis runs"
)
