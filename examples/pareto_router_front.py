"""Multi-objective exploration: the router frequency/area trade-off front.

The paper argues for query-based search over modeling the whole Pareto set,
but sometimes you want to *see* the trade-off before committing to a query.
This example uses the NSGA-II-style extension (``repro.core.pareto``) to
approximate the frequency-vs-LUTs front of the ~30k-design router space, and
compares it against the exhaustive ground-truth front the dataset makes
available — showing how much of the true front a few hundred evaluations
recover.

Run with:  python examples/pareto_router_front.py
"""

from repro.analysis import FigureSeries, ascii_plot
from repro.core import (
    DatasetEvaluator,
    GAConfig,
    ParetoSearch,
    dominates,
    maximize,
    minimize,
)
from repro.dataset import router_dataset
from repro.noc import frequency_hints

print("loading router dataset...")
dataset = router_dataset()
objectives = [maximize("fmax_mhz"), minimize("luts")]

# Ground truth: the exhaustive non-dominated set over all 30k designs.
print("computing exhaustive ground-truth front...")
truth: list[tuple[float, float]] = []
for metrics in dataset.iter_metrics():
    point = (metrics["fmax_mhz"], -metrics["luts"])
    if any(dominates(existing, point) for existing in truth):
        continue
    truth = [p for p in truth if not dominates(point, p)]
    truth.append(point)
truth_raws = sorted((fmax, -neg_luts) for fmax, neg_luts in truth)
print(f"true front: {len(truth_raws)} designs\n")

search = ParetoSearch(
    dataset.space,
    DatasetEvaluator(dataset),
    objectives,
    GAConfig(population_size=32, generations=60, seed=5, elitism=1),
    hints=frequency_hints(0.5),
)
result = search.run()
found = result.front_raws()
print(
    f"NSGA-II front: {len(found)} designs from "
    f"{result.distinct_evaluations} evaluations "
    f"({result.distinct_evaluations / len(dataset):.1%} of the space)\n"
)

figure = FigureSeries(
    "pareto", "Router frequency vs area trade-off", "Frequency (MHz)", "LUTs"
)
figure.add("true front", [(f, l) for f, l in truth_raws])
figure.add("found front", [(f, l) for f, l in found])
print(ascii_plot(figure, logy=True))

# Coverage: fraction of true-front designs matched within 3% in both axes.
matched = 0
for t_fmax, t_luts in truth_raws:
    for f_fmax, f_luts in found:
        if abs(f_fmax - t_fmax) <= 0.03 * t_fmax and f_luts <= 1.1 * t_luts:
            matched += 1
            break
print(
    f"\ncoverage: {matched}/{len(truth_raws)} true-front designs approximated "
    f"within 3% frequency / 10% area"
)
