"""Quickstart: tune an IP's parameters with the guided GA in ~40 lines.

Scenario: you expose a small FIR-filter IP with three parameters and want
the engine to find the configuration with the fewest LUTs. Because each
"synthesis" here is our fast analytical flow, the whole example runs in
well under a second — against a real CAD flow the exact same code would
simply take longer per evaluation, which is precisely why minimizing the
number of distinct evaluations (the engine's whole purpose) matters.

Run with:  python examples/quickstart.py
"""

from repro.core import (
    CallableEvaluator,
    DesignSpace,
    GAConfig,
    GeneticSearch,
    HintSet,
    IntParam,
    OrderedParam,
    ParamHints,
    PowOfTwoParam,
    minimize,
)
from repro.synth import Adder, LutRam, Module, Multiplier, Register, SynthesisFlow

# 1. Describe the IP's parameter space.
space = DesignSpace(
    "fir_filter",
    [
        IntParam("taps", 4, 64, step=4),
        PowOfTwoParam("data_width", 8, 32),
        OrderedParam("multiplier_style", ("dsp", "fabric")),
    ],
)

# 2. Provide an evaluator: elaborate the design and synthesize it.
flow = SynthesisFlow()


def build_fir(config):
    module = Module(f"fir_t{config['taps']}_w{config['data_width']}")
    module.add("in_reg", Register(config["data_width"]))
    module.add("coeff_rom", LutRam(config["taps"], config["data_width"]))
    module.add(
        "multipliers",
        Multiplier(config["data_width"], use_dsp=config["multiplier_style"] == "dsp"),
        replicate=config["taps"],
    )
    module.add("adder_tree", Adder(config["data_width"] + 8), replicate=config["taps"] - 1)
    module.add("out_reg", Register(config["data_width"]))
    module.chain("in_reg", "multipliers", "adder_tree", "out_reg")
    module.connect("coeff_rom", "multipliers")
    return module


evaluator = CallableEvaluator(lambda g: flow.run(build_fir(g.as_dict())).metrics())

# 3. (Optional) encode what you know about the space as hints.
hints = HintSet(
    {
        "taps": ParamHints(importance=90, bias=1.0),        # more taps => more LUTs
        "data_width": ParamHints(importance=70, bias=1.0),  # wider => more LUTs
        "multiplier_style": ParamHints(importance=50, bias=1.0),  # fabric mults burn LUTs
    },
    confidence=0.7,
)

# 4. Search: baseline GA vs the hint-guided Nautilus GA.
objective = minimize("luts")
baseline = GeneticSearch(space, evaluator, objective, GAConfig(seed=1)).run()
nautilus = GeneticSearch(
    space, evaluator, objective, GAConfig(seed=1), hints=hints
).run()

print("objective: minimize LUTs over", space.size(), "candidate designs\n")
for result in (baseline, nautilus):
    print(
        f"{result.label:9s} best = {result.best_raw:6.0f} LUTs after "
        f"{result.distinct_evaluations:3d} distinct synthesis runs "
        f"-> {result.best_config}"
    )

threshold = 1.05 * min(baseline.best_raw, nautilus.best_raw)
print(
    f"\nevals to get within 5% of the best:"
    f"  baseline {baseline.evals_to_reach(threshold)},"
    f"  nautilus {nautilus.evals_to_reach(threshold)}"
)
