"""Results report generation: compile bench artifacts into one markdown file.

``nautilus report`` gathers everything the benchmark suite wrote under
``results/`` — figure summaries, headline notes, ASCII charts — plus the
dataset statistics, and renders a single ``RESULTS.md``. Useful for diffing
reproduction runs (every number is deterministic) and for readers who want
the outcome without re-running the suite.
"""

from __future__ import annotations

from pathlib import Path

from ..dataset.cache import data_dir

__all__ = ["generate_report"]

_FIGURE_ORDER = (
    "fig1",
    "fig2a",
    "fig2b",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "figE1",
    "figE2",
)


def _dataset_section() -> list[str]:
    lines = ["## Datasets", ""]
    try:
        from ..dataset import fft_dataset, fir_dataset, router_dataset
        from ..core import maximize, minimize

        rows = [
            ("NoC router", router_dataset(), maximize("fmax_mhz"), "fmax_mhz"),
            ("Spiral FFT", fft_dataset(), minimize("luts"), "luts"),
            ("FIR low-pass", fir_dataset(), minimize("luts"), "luts"),
        ]
        lines.append("| Space | Designs | Feasible | Reference optimum |")
        lines.append("|---|---|---|---|")
        for name, dataset, objective, metric in rows:
            best = dataset.best_value(objective)
            lines.append(
                f"| {name} | {len(dataset)} | {dataset.feasible_count} "
                f"| {objective.direction} {metric} = {best:.4g} |"
            )
    except Exception as exc:  # datasets missing: report what we can
        lines.append(f"(datasets unavailable: {exc})")
    lines.append("")
    return lines


def generate_report(
    results_dir: str | Path | None = None,
    output: str | Path | None = None,
) -> Path:
    """Render RESULTS.md from the artifacts in ``results/``.

    Returns the path written. Figures that have not been benchmarked yet are
    listed as missing rather than silently skipped.
    """
    results = Path(results_dir) if results_dir else (
        Path(__file__).resolve().parents[3] / "results"
    )
    output_path = Path(output) if output else results.parent / "RESULTS.md"

    lines = [
        "# RESULTS — regenerated figures",
        "",
        "Compiled by `nautilus report` from the benchmark artifacts in "
        f"`{results.name}/`. See EXPERIMENTS.md for paper-vs-measured "
        "commentary.",
        "",
    ]
    lines += _dataset_section()
    lines.append("## Figures")
    lines.append("")
    found_any = False
    for name in _FIGURE_ORDER:
        text_path = results / f"{name}.txt"
        if not text_path.exists():
            lines.append(f"### {name}")
            lines.append("")
            lines.append(
                f"*(not yet benchmarked — run `pytest benchmarks/ "
                f"--benchmark-only` to generate)*"
            )
            lines.append("")
            continue
        found_any = True
        lines.append(f"### {name}")
        lines.append("")
        lines.append("```")
        lines.append(text_path.read_text().rstrip())
        lines.append("```")
        csv_path = results / f"{name}.csv"
        if csv_path.exists():
            lines.append("")
            lines.append(f"Series data: `{results.name}/{csv_path.name}`")
        lines.append("")
    if not found_any:
        lines.append("*(no artifacts found)*")
    output_path.write_text("\n".join(lines) + "\n")
    return output_path
