"""Experiment harness: multi-run averaging and per-figure reproductions."""

from .runner import MultiRunResult, ReachStats, run_many
from .report import generate_report
from .figures import (
    figure1,
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    ga_config,
    search_variants,
)

__all__ = [
    "MultiRunResult",
    "ReachStats",
    "run_many",
    "figure1",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "ga_config",
    "search_variants",
    "generate_report",
]
