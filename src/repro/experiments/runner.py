"""Multi-run experiment harness.

The paper averages every search curve over repeated runs ("results are
averaged over 40 runs for each experiment to compensate for the noisy nature
of the stochastic process", Section 4.1; Figure 3 uses 20). This module runs
an engine factory across seeds and aggregates:

* the mean convergence curve — (mean distinct evaluations, mean best raw
  metric) per generation, which is exactly how the paper's Figures 3-7 plot
  quality against cost;
* mean evaluations/generations to reach a quality threshold, with the
  fraction of runs that reached it at all (the paper's "converges to a
  solution within 1% of the best" statistics).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import reduce
from typing import Callable, Protocol, Sequence

from ..core.engine import SearchResult
from ..core.evalstack import EvalStats

__all__ = ["MultiRunResult", "ReachStats", "run_many"]


class _Runnable(Protocol):
    def run(self) -> SearchResult: ...  # pragma: no cover


@dataclass(frozen=True)
class ReachStats:
    """Cost statistics for reaching a quality threshold across runs."""

    threshold: float
    mean_evals: float | None
    mean_generations: float | None
    success_rate: float
    runs: int

    def __str__(self) -> str:
        if self.mean_evals is None:
            return f"never reached {self.threshold:g} ({self.runs} runs)"
        return (
            f"reach {self.threshold:g}: {self.mean_evals:.1f} evals / "
            f"{self.mean_generations:.1f} gens on average "
            f"({self.success_rate:.0%} of {self.runs} runs)"
        )


class MultiRunResult:
    """Aggregated outcome of repeated searches with different seeds."""

    def __init__(self, results: Sequence[SearchResult], label: str = ""):
        if not results:
            raise ValueError("need at least one run")
        self.results = list(results)
        self.label = label or results[0].label
        self.objective = results[0].objective

    @property
    def runs(self) -> int:
        return len(self.results)

    # -- curves -----------------------------------------------------------------

    def mean_curve(self) -> list[tuple[float, float]]:
        """(mean evals, mean best raw) per generation index."""
        generations = min(len(r.records) for r in self.results)
        curve = []
        for g in range(generations):
            evals = [r.records[g].distinct_evaluations for r in self.results]
            raws = [
                r.records[g].best_raw
                for r in self.results
                if not math.isnan(r.records[g].best_raw)
            ]
            if not raws:
                continue
            curve.append((sum(evals) / len(evals), sum(raws) / len(raws)))
        return curve

    def mean_generation_curve(self) -> list[tuple[int, float]]:
        """(generation, mean best raw) per generation index."""
        generations = min(len(r.records) for r in self.results)
        curve = []
        for g in range(generations):
            raws = [
                r.records[g].best_raw
                for r in self.results
                if not math.isnan(r.records[g].best_raw)
            ]
            if raws:
                curve.append((g, sum(raws) / len(raws)))
        return curve

    def mean_score_curve(
        self, score: Callable[[float], float]
    ) -> list[tuple[int, float]]:
        """(generation, mean score(best raw)) — e.g. Figure 3's percent scale."""
        generations = min(len(r.records) for r in self.results)
        curve = []
        for g in range(generations):
            scores = [
                score(r.records[g].best_raw)
                for r in self.results
                if not math.isnan(r.records[g].best_raw)
            ]
            if scores:
                curve.append((g, sum(scores) / len(scores)))
        return curve

    # -- scalar statistics ---------------------------------------------------------

    def mean_best(self) -> float:
        """Mean final best raw metric over runs."""
        return sum(r.best_raw for r in self.results) / self.runs

    def mean_distinct_evaluations(self) -> float:
        """Mean total distinct designs evaluated per run."""
        return sum(r.distinct_evaluations for r in self.results) / self.runs

    def eval_stats(self) -> EvalStats:
        """Summed evaluation-stack counters/timers across all runs.

        Counters (requests, distinct, the hit breakdown, batch counts,
        timings) add across runs; ``max_batch`` is the max over runs. The
        derived rates on the returned snapshot then describe the whole
        experiment — e.g. ``hit_rate`` is the fraction of all requests any
        run served from its cache.
        """

        def add(a: EvalStats, b: EvalStats) -> EvalStats:
            summed = EvalStats(
                **{
                    name: getattr(a, name) + getattr(b, name)
                    for name in (
                        "requests",
                        "distinct",
                        "memo_hits",
                        "persistent_hits",
                        "batch_dedup_hits",
                        "batches",
                        "infeasible",
                        "errors",
                        "backend_time_s",
                        "wall_time_s",
                    )
                },
                max_batch=max(a.max_batch, b.max_batch),
            )
            return summed

        return reduce(add, (r.eval_stats for r in self.results), EvalStats())

    def operator_timings(self) -> dict[str, dict[str, float]]:
        """Per-operator call counts and wall time summed across all runs.

        Each run's :meth:`SearchResult.operator_timings` is already
        cumulative over that run's trace; summing them describes where the
        whole experiment spent its breeding time.
        """
        merged: dict[str, dict[str, float]] = {}
        for result in self.results:
            for operator, entry in result.operator_timings().items():
                slot = merged.setdefault(operator, {"calls": 0, "time_s": 0.0})
                slot["calls"] += entry.get("calls", 0)
                slot["time_s"] += entry.get("time_s", 0.0)
        return merged

    def hint_effect_report(self):
        """Merged hint-attribution report over every run's trace.

        Folds each run's ``hint-attribution`` events into one
        :class:`~repro.obs.HintEffectReport` — the multi-run answer to
        "which hint channels actually improved children on their
        parents". Empty (zero generations) when the engines ran with
        observability disabled.
        """
        from ..obs.attribution import HintEffectReport

        report = HintEffectReport()
        for result in self.results:
            report.merge(HintEffectReport.from_events(result.events))
        return report

    def curve_cross(self, threshold: float) -> float | None:
        """Evals at which the *mean* convergence curve crosses a threshold.

        This is how thresholds are read off the paper's averaged figures:
        the x-position where the plotted (mean) curve reaches the bar. It
        differs from :meth:`reach`, whose per-run mean conditions on
        success and so understates the cost for methods that often fail.
        """
        maximizing = self.objective.maximizing
        for evals, raw in self.mean_curve():
            if (raw >= threshold) if maximizing else (raw <= threshold):
                return evals
        return None

    def reach(self, threshold: float) -> ReachStats:
        """Average cost of first reaching a raw-metric threshold."""
        evals = []
        gens = []
        for result in self.results:
            e = result.evals_to_reach(threshold)
            if e is not None:
                evals.append(e)
                gens.append(result.generations_to_reach(threshold))
        if not evals:
            return ReachStats(threshold, None, None, 0.0, self.runs)
        return ReachStats(
            threshold,
            sum(evals) / len(evals),
            sum(gens) / len(gens),
            len(evals) / self.runs,
            self.runs,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MultiRunResult({self.label!r}, {self.runs} runs, "
            f"mean best={self.mean_best():.4g})"
        )


def run_many(
    factory: Callable[[int], _Runnable],
    runs: int,
    base_seed: int = 0,
    label: str = "",
) -> MultiRunResult:
    """Run ``factory(seed).run()`` for ``runs`` consecutive seeds.

    The factory receives a distinct seed per run; everything else about the
    engine (space, evaluator, hints, config) is up to the caller.
    """
    results = [factory(base_seed + i).run() for i in range(runs)]
    return MultiRunResult(results, label=label)
