"""Reproduction of every figure in the paper's evaluation.

One builder per figure, each returning a
:class:`~repro.analysis.series.FigureSeries` whose curves mirror the paper's
axes and whose ``notes`` carry the headline numbers quoted in the text
(speedup factors, eval counts, thresholds). Builders take ``runs`` /
``generations`` arguments so tests can run scaled-down versions while the
benchmarks run at paper scale (40 runs, 80 generations — Section 4.1).

Figure index (see DESIGN.md for the full experiment table):

* Figure 1 — frequency vs area scatter over the ~30k router dataset.
* Figure 2 — area/power vs peak bisection bandwidth for 64-endpoint
  CONNECT-style NoCs across eight topology families.
* Figure 3 — design-solution-score vs generation: baseline GA vs Nautilus
  with only 1 or 2 *bias* hints (FFT space).
* Figure 4 — NoC maximize frequency: baseline vs weakly/strongly guided.
* Figure 5 — NoC minimize area-delay product: baseline vs Nautilus.
* Figure 6 — FFT minimize LUTs: convergence plus evals-to-goal numbers.
* Figure 7 — FFT maximize throughput/LUT.
"""

from __future__ import annotations

import itertools
from typing import Sequence

from ..analysis.series import FigureSeries
from ..core.engine import GAConfig, GeneticSearch
from ..core.evaluator import DatasetEvaluator
from ..core.fitness import Objective, maximize, minimize
from ..core.hints import HintSet, ParamHints
from ..dataset.cache import fft_dataset, router_dataset
from ..dataset.dataset import Dataset
from ..fft.hints import (
    STRONG_CONFIDENCE as FFT_STRONG,
    WEAK_CONFIDENCE as FFT_WEAK,
    lut_hints,
    throughput_per_lut_hints,
)
from ..noc.hints import (
    STRONG_CONFIDENCE as NOC_STRONG,
    WEAK_CONFIDENCE as NOC_WEAK,
    area_delay_hints,
    frequency_hints,
)
from ..noc.network import NetworkGenerator
from ..noc.topology import TOPOLOGY_FAMILIES
from .runner import MultiRunResult, run_many

__all__ = [
    "figure1",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "ga_config",
    "search_variants",
]


def ga_config(generations: int = 80, seed: int = 0) -> GAConfig:
    """The paper's GA configuration (population 10, mutation 0.1)."""
    return GAConfig(
        population_size=10,
        generations=generations,
        mutation_rate=0.1,
        seed=seed,
    )


def search_variants(
    dataset: Dataset,
    objective: Objective,
    hints: HintSet,
    weak_confidence: float,
    strong_confidence: float,
    runs: int,
    generations: int,
    seed: int,
) -> dict[str, MultiRunResult]:
    """Run the paper's three-way comparison on a dataset-backed space.

    Returns baseline / weakly guided / strongly guided multi-run results.
    The weak and strong variants share the same hint vector and differ only
    in confidence (paper footnote 2).
    """
    space = dataset.space

    def factory(hint_set: HintSet | None, label: str):
        def build(seed_value: int) -> GeneticSearch:
            return GeneticSearch(
                space,
                DatasetEvaluator(dataset),
                objective,
                ga_config(generations, seed_value),
                hints=hint_set,
                label=label,
            )

        return build

    return {
        "baseline": run_many(
            factory(None, "baseline"), runs, base_seed=seed, label="baseline"
        ),
        "weak": run_many(
            factory(hints.with_confidence(weak_confidence), "nautilus-weak"),
            runs,
            base_seed=seed,
            label="nautilus (weakly guided)",
        ),
        "strong": run_many(
            factory(hints.with_confidence(strong_confidence), "nautilus-strong"),
            runs,
            base_seed=seed,
            label="nautilus (strongly guided)",
        ),
    }


# ---------------------------------------------------------------------------
# Figure 1: router design-space scatter
# ---------------------------------------------------------------------------


def figure1(dataset: Dataset | None = None, max_points: int = 4000) -> FigureSeries:
    """Frequency vs area for the ~30k router variants (paper Figure 1)."""
    dataset = dataset or router_dataset()
    figure = FigureSeries(
        "fig1",
        "Frequency vs. Area for Virtual-Channel Router Variants",
        "Area (LUTs)",
        "Frequency (MHz)",
    )
    rows = list(dataset.iter_metrics())
    stride = max(1, len(rows) // max_points)
    points = [
        (row["luts"], row["fmax_mhz"]) for row in rows[::stride]
    ]
    figure.add("router variants", points)
    all_luts = [row["luts"] for row in rows]
    all_fmax = [row["fmax_mhz"] for row in rows]
    figure.note("design_points", len(rows))
    figure.note("lut_range", (min(all_luts), max(all_luts)))
    figure.note("fmax_range_mhz", (min(all_fmax), max(all_fmax)))
    return figure


# ---------------------------------------------------------------------------
# Figure 2: CONNECT NoC area/power vs performance
# ---------------------------------------------------------------------------


def figure2(
    endpoints: int = 64,
    flit_widths: Sequence[int] = (16, 32, 64, 128, 256),
    vcs: Sequence[int] = (1, 2, 4),
    buffer_depths: Sequence[int] = (4, 16),
) -> tuple[FigureSeries, FigureSeries]:
    """Area and power vs peak bisection bandwidth (paper Figure 2).

    Sweeps router configurations within each of the eight topology families,
    mirroring the paper's cloud of 64-endpoint CONNECT configurations on a
    65nm ASIC target.
    """
    generator = NetworkGenerator()
    area_fig = FigureSeries(
        "fig2a",
        "NoC Area vs. Performance",
        "Area (in mm2)",
        "Peak Bisection Bandwidth (in Gbps)",
    )
    power_fig = FigureSeries(
        "fig2b",
        "NoC Power vs. Performance",
        "Power (in mW)",
        "Peak Bisection Bandwidth (in Gbps)",
    )
    for family in TOPOLOGY_FAMILIES:
        area_points = []
        power_points = []
        for width, vc, depth in itertools.product(flit_widths, vcs, buffer_depths):
            report = generator.generate(
                family,
                endpoints,
                {"flit_width": width, "num_vcs": vc, "buffer_depth": depth},
            )
            area_points.append((report.area_mm2, report.bisection_gbps))
            power_points.append((report.power_mw, report.bisection_gbps))
        area_fig.add(family, area_points)
        power_fig.add(family, power_points)
    for figure in (area_fig, power_fig):
        ys = [y for pts in figure.series.values() for _, y in pts]
        xs = [x for pts in figure.series.values() for x, _ in pts]
        figure.note("bw_span_orders", _orders_of_magnitude(ys))
        figure.note("x_span_orders", _orders_of_magnitude(xs))
    return area_fig, power_fig


def _orders_of_magnitude(values: Sequence[float]) -> float:
    import math

    positive = [v for v in values if v > 0]
    if not positive:
        return 0.0
    return round(math.log10(max(positive) / min(positive)), 2)


# ---------------------------------------------------------------------------
# Figure 3: bias-hints-only comparison on the FFT space
# ---------------------------------------------------------------------------


def figure3(
    dataset: Dataset | None = None,
    runs: int = 20,
    generations: int = 80,
    seed: int = 0,
    top_percent: float = 0.1,
) -> FigureSeries:
    """Design solution score vs generation with 1 or 2 bias hints.

    The paper's Figure 3 strips Nautilus down to *only* bias hints (no
    importance, no target) on the FFT space and shows the baseline taking 56
    generations to enter the top 1% vs 15-23 for Nautilus. Our substrate's
    low-LUT region is denser than the paper's, so the equivalent
    "hard quality bar" here is the top 0.1% of designs (the default);
    pass ``top_percent=1.0`` for the literal top-1% reading.
    """
    dataset = dataset or fft_dataset()
    objective = minimize("luts")
    space = dataset.space
    one_hint = HintSet(
        {"streaming_width": ParamHints(bias=1.0)}, confidence=FFT_STRONG
    )
    two_hints = HintSet(
        {
            "streaming_width": ParamHints(bias=1.0),
            "bit_width": ParamHints(bias=0.9),
        },
        confidence=FFT_STRONG,
    )

    def factory(hint_set: HintSet | None, label: str):
        def build(seed_value: int) -> GeneticSearch:
            return GeneticSearch(
                space,
                DatasetEvaluator(dataset),
                objective,
                ga_config(generations, seed_value),
                hints=hint_set,
                label=label,
            )

        return build

    variants = {
        "Baseline GA": run_many(factory(None, "baseline"), runs, seed),
        'Nautilus w/ 1 "Bias" Hint': run_many(factory(one_hint, "bias1"), runs, seed),
        'Nautilus w/ 2 "Bias" Hints': run_many(factory(two_hints, "bias2"), runs, seed),
    }
    figure = FigureSeries(
        "fig3",
        'Baseline GA vs. Nautilus with "bias" hints',
        "Generation #",
        "Design Solution Score (in %)",
    )
    score_bar = 100.0 - top_percent
    for label, result in variants.items():
        curve = result.mean_score_curve(
            lambda raw: dataset.score_percent(objective, raw)
        )
        figure.add(label, curve)
        crossing = next(
            (generation for generation, score in curve if score >= score_bar),
            None,
        )
        figure.note(f"gens_to_top{top_percent:g}pct[{label}]", crossing)
    return figure


# ---------------------------------------------------------------------------
# Figures 4-7: the four optimization queries
# ---------------------------------------------------------------------------


def _query_figure(
    name: str,
    title: str,
    ylabel: str,
    dataset: Dataset,
    objective: Objective,
    hints: HintSet,
    weak_confidence: float,
    strong_confidence: float,
    runs: int,
    generations: int,
    seed: int,
    within_percent: float,
    include_weak: bool = True,
) -> tuple[FigureSeries, dict[str, MultiRunResult]]:
    """Shared machinery for the Figure 4-7 quality-vs-cost plots.

    Returns the figure plus the raw multi-run results so callers can derive
    extra headline numbers without re-running the searches.
    """
    variants = search_variants(
        dataset,
        objective,
        hints,
        weak_confidence,
        strong_confidence,
        runs,
        generations,
        seed,
    )
    figure = FigureSeries(name, title, "# Designs Evaluated", ylabel)
    figure.add("Baseline", variants["baseline"].mean_curve())
    if include_weak:
        figure.add("Nautilus (weakly guided)", variants["weak"].mean_curve())
    figure.add("Nautilus (strongly guided)", variants["strong"].mean_curve())

    best = dataset.best_value(objective)
    if objective.maximizing:
        threshold = best * (1.0 - within_percent / 100.0)
    else:
        threshold = best * (1.0 + within_percent / 100.0)
    figure.note("space_best", best)
    figure.note("threshold", threshold)
    crossings = {
        key: result.curve_cross(threshold) for key, result in variants.items()
    }
    for key, result in variants.items():
        stats = result.reach(threshold)
        figure.note(f"evals_to_threshold[{key}]", crossings[key])
        figure.note(f"success_rate[{key}]", stats.success_rate)
        figure.note(f"total_evals[{key}]", round(result.mean_distinct_evaluations(), 1))
    figure.note(
        "speedup_strong", _ratio(crossings["baseline"], crossings["strong"])
    )
    if include_weak:
        figure.note(
            "speedup_weak", _ratio(crossings["baseline"], crossings["weak"])
        )
    from ..analysis.stats import compare_engines

    comparison = compare_engines(variants["strong"], variants["baseline"], threshold)
    figure.note("strong_vs_baseline_p", comparison.p_value)
    figure.note("strong_vs_baseline", comparison.verdict())
    return figure, variants


def _ratio(numerator: float | None, denominator: float | None) -> float | None:
    if not numerator or not denominator:
        return None
    return round(numerator / denominator, 2)


def figure4(
    dataset: Dataset | None = None,
    runs: int = 40,
    generations: int = 80,
    seed: int = 0,
) -> FigureSeries:
    """NoC: maximize frequency (paper Figure 4).

    Paper headline: baseline needs ~2.8x (vs strong) and ~1.8x (vs weak) the
    synthesis jobs to converge within 1% of the best solution.
    """
    dataset = dataset or router_dataset()
    figure, __ = _query_figure(
        "fig4",
        "NoC: Maximize Frequency",
        "Frequency (MHz)",
        dataset,
        maximize("fmax_mhz"),
        frequency_hints(),
        NOC_WEAK,
        NOC_STRONG,
        runs,
        generations,
        seed,
        within_percent=1.0,
    )
    return figure


def figure5(
    dataset: Dataset | None = None,
    runs: int = 40,
    generations: int = 20,
    seed: int = 0,
) -> FigureSeries:
    """NoC: minimize area-delay product (paper Figure 5).

    Shown for 20 generations as in the paper; Nautilus needs about half the
    synthesis runs of the baseline for the same quality of results. The
    reach threshold is within 5% of the space optimum — this query's
    optimum sits in a needle-thin basin in our substrate, and the paper's
    own converged value ("similar quality of results") is read the same way.
    """
    dataset = dataset or router_dataset()
    figure, __ = _query_figure(
        "fig5",
        "NoC: Minimize Area-Delay Product",
        "Area-Delay Product (clock period x LUTs)",
        dataset,
        minimize("area_delay"),
        area_delay_hints(),
        NOC_WEAK,
        NOC_STRONG,
        runs,
        generations,
        seed,
        within_percent=5.0,
        include_weak=False,
    )
    return figure


def figure6(
    dataset: Dataset | None = None,
    runs: int = 40,
    generations: int = 80,
    seed: int = 0,
) -> FigureSeries:
    """FFT: minimize LUTs (paper Figure 6).

    Paper headlines: all methods converge near the same minimum (~540 LUTs);
    strong Nautilus averages ~101 evals to the optimum vs ~463 baseline; to
    twice the minimum, 23.6 vs 78.9 evals; random sampling would need
    ~11,921 draws for the relaxed goal.
    """
    dataset = dataset or fft_dataset()
    objective = minimize("luts")
    figure, variants = _query_figure(
        "fig6",
        "FFT: Minimize # LUTs",
        "LUTs",
        dataset,
        objective,
        lut_hints(),
        FFT_WEAK,
        FFT_STRONG,
        runs,
        generations,
        seed,
        within_percent=1.0,
    )
    # Relaxed goal: twice the minimum (the paper's 1,071-LUT bar).
    best = dataset.best_value(objective)
    relaxed = 2.0 * best
    for key, result in variants.items():
        figure.note(f"evals_to_2x_min[{key}]", result.curve_cross(relaxed))
        figure.note(f"evals_to_min[{key}]", result.curve_cross(best * 1.001))
    values = dataset.metric_values(objective)
    total = dataset.feasible_count
    figure.note("relaxed_goal_luts", relaxed)
    # Expected uniform draws without replacement to hit one of k good
    # designs among N: (N + 1) / (k + 1). Reported for both quality bars —
    # our substrate's low-LUT region is denser than the paper's, so the
    # paper's "11,921 draws to reach 2x-min" rarity corresponds to the
    # optimum bar here (see EXPERIMENTS.md).
    meeting_relaxed = sum(1 for v in values if v <= relaxed)
    meeting_min = sum(1 for v in values if v <= best * 1.001)
    figure.note(
        "random_sampling_expected_2x", round((total + 1) / (meeting_relaxed + 1), 1)
    )
    figure.note(
        "random_sampling_expected_min", round((total + 1) / (meeting_min + 1), 1)
    )
    return figure


def figure7(
    dataset: Dataset | None = None,
    runs: int = 40,
    generations: int = 80,
    seed: int = 0,
) -> FigureSeries:
    """FFT: maximize throughput per LUT (paper Figure 7).

    Paper headlines: strong Nautilus reaches 1.45 MSPS/LUT in ~61.6 evals vs
    >8x (501.4) for the baseline, and only Nautilus ever reaches the
    >1.5 MSPS/LUT region.
    """
    dataset = dataset or fft_dataset()
    objective = maximize("msps_per_lut")
    figure, variants = _query_figure(
        "fig7",
        "FFT: Maximize Throughput per LUT",
        "Throughput per LUT (MSPS/LUTs)",
        dataset,
        objective,
        throughput_per_lut_hints(),
        FFT_WEAK,
        FFT_STRONG,
        runs,
        generations,
        seed,
        within_percent=7.0,
    )
    best = dataset.best_value(objective)
    # The "only Nautilus gets here" elite region (paper: >1.5 MSPS/LUT on a
    # ~1.55 max, i.e. ~97% of the space optimum).
    elite = 0.97 * best
    figure.note("elite_threshold", elite)
    for key, result in variants.items():
        stats = result.reach(elite)
        figure.note(f"elite_success_rate[{key}]", stats.success_rate)
    return figure
