"""The search-campaign daemon: store + scheduler + REST API, one object.

:class:`SearchService` wires the pieces together and owns their lifecycle::

    service = SearchService("campaigns/", port=8765, workers=4)
    service.start()          # recovers in-flight campaigns, serves HTTP
    ...
    service.stop()           # graceful: finish the generation, persist

``port=0`` binds an ephemeral port (``service.port`` reports the real one),
which is how the tests run a full daemon in-process. ``serve_forever``
blocks for CLI use (``nautilus serve``).
"""

from __future__ import annotations

import threading
from pathlib import Path

from ..core.evalstack import PersistentCache
from .http import ServiceHTTPServer, make_server
from .metrics import ServiceMetrics
from .scheduler import Scheduler
from .store import CampaignStore

__all__ = ["SearchService"]


class SearchService:
    """One daemon: campaign store, scheduler thread, and HTTP server."""

    def __init__(
        self,
        root: str | Path,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 1,
        dataset_provider=None,
        quiet: bool = True,
        eval_cache: bool | str | Path = False,
        trace_max_events: int | None = None,
        log_json: bool = False,
        fleet: bool = False,
        fleet_host: str = "127.0.0.1",
        fleet_port: int = 0,
        fleet_policy=None,
        archive: bool | str | Path = False,
    ):
        """``eval_cache`` enables the shared persistent evaluation cache:
        ``True`` stores it under ``<root>/evalcache``, a path stores it
        there. Off by default — with it on, campaigns over the same space
        share results, so their distinct-evaluation counts depend on what
        ran before (see ``docs/evaluation.md``).

        ``archive`` enables the cross-campaign design archive
        (:class:`~repro.archive.DesignArchive`): ``True`` stores it under
        ``<root>/archive``, a path stores it there. With it on, every
        evaluation any campaign pays for is recorded, ``GET
        /archive/stats`` / ``GET /archive/query`` serve the knowledge
        base, and campaigns may warm-start from it
        (``CampaignSpec.warm_start``). Off by default; seeded campaign
        curves are unaffected by the archive itself — only an explicit
        ``warm_start`` changes a search.

        ``trace_max_events`` caps every campaign's on-disk event log (a
        spec's own setting overrides it); ``None``, the default, keeps
        every event. ``log_json`` routes the ``nautilus`` logger through
        :func:`repro.obs.configure_json_logging` — one JSON object per
        line with campaign-id correlation.

        ``fleet=True`` starts a
        :class:`~repro.distributed.FleetCoordinator` listening on
        ``fleet_host:fleet_port`` (0 = ephemeral; ``fleet_address``
        reports the real endpoint) and routes every campaign's distinct
        evaluations through the worker fleet, degrading to local inline
        execution while no worker is connected. ``fleet_policy`` overrides
        the default :class:`~repro.distributed.RetryPolicy`."""
        if log_json:
            from ..obs import configure_json_logging

            configure_json_logging()
        self.store = CampaignStore(root)
        self.metrics = ServiceMetrics()
        self.eval_cache: PersistentCache | None = None
        if eval_cache:
            cache_root = (
                Path(root) / "evalcache"
                if eval_cache is True
                else Path(eval_cache)
            )
            self.eval_cache = PersistentCache(cache_root)
        self.archive = None
        if archive:
            from ..archive import DesignArchive

            archive_root = (
                Path(root) / "archive" if archive is True else Path(archive)
            )
            self.archive = DesignArchive(
                archive_root, registry=self.metrics.registry
            )
        self.fleet = None
        if fleet:
            from ..distributed import FleetCoordinator

            self.fleet = FleetCoordinator(
                host=fleet_host,
                port=fleet_port,
                policy=fleet_policy,
                registry=self.metrics.registry,
            )
        kwargs = {}
        if dataset_provider is not None:
            kwargs["dataset_provider"] = dataset_provider
        self.scheduler = Scheduler(
            self.store,
            self.metrics,
            workers=workers,
            persistent=self.eval_cache,
            trace_max_events=trace_max_events,
            fleet=self.fleet,
            archive=self.archive,
            **kwargs,
        )
        self.server: ServiceHTTPServer = make_server(
            self.scheduler, host=host, port=port, quiet=quiet
        )
        self._http_thread: threading.Thread | None = None

    @property
    def host(self) -> str:
        return self.server.server_address[0]

    @property
    def port(self) -> int:
        """The bound TCP port (resolved even when constructed with 0)."""
        return self.server.server_address[1]

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def fleet_address(self) -> str | None:
        """``host:port`` workers should dial, or None without a fleet."""
        return self.fleet.address if self.fleet is not None else None

    def start(self, run_scheduler: bool = True) -> "SearchService":
        """Recover stored campaigns and serve; returns self for chaining.

        ``run_scheduler=False`` leaves stepping to manual
        ``service.scheduler.tick()`` calls — the deterministic mode the
        restart tests use.
        """
        if self.fleet is not None:
            self.fleet.start()
        self.scheduler.recover()
        if run_scheduler:
            self.scheduler.start()
        self._http_thread = threading.Thread(
            target=self.server.serve_forever,
            name="nautilus-http",
            daemon=True,
        )
        self._http_thread.start()
        return self

    def serve_forever(self) -> None:
        """Blocking variant for the CLI: Ctrl-C shuts down gracefully."""
        if self.fleet is not None:
            self.fleet.start()
        self.scheduler.recover()
        self.scheduler.start()
        try:
            self.server.serve_forever()
        except KeyboardInterrupt:  # pragma: no cover - interactive path
            pass
        finally:
            self.stop()

    def stop(self) -> None:
        """Graceful shutdown: stop HTTP, drain the in-flight generation."""
        if self._http_thread is not None:
            # shutdown() blocks on the serve_forever loop, so only call it
            # when that loop is actually running in our background thread.
            self.server.shutdown()
            self._http_thread.join(5.0)
            self._http_thread = None
        self.server.server_close()
        self.scheduler.shutdown()
        if self.fleet is not None:
            # After the scheduler: a mid-generation fleet batch must drain
            # before the coordinator tears its worker connections down.
            self.fleet.stop()
