"""Crash-safe on-disk persistence for search campaigns.

Layout, one directory per campaign under the store root::

    <root>/
      c000001/
        spec.json        # the submitted CampaignSpec, verbatim
        status.json      # state machine + progress records (atomic rewrites)
        checkpoint.json  # SearchCheckpoint (GA engines; written by the engine)
        events.jsonl     # structured RunEvent trace, one JSON line per event
        spans.jsonl      # span tree (tracing campaigns), one span per line
        result.json      # final curve + best design, once terminal

Every write goes through a temp-file + ``rename`` so a killed daemon never
leaves a torn file; the checkpoint reuses the exact
:class:`~repro.core.checkpoint.SearchCheckpoint` format, which carries the
evaluation cache — the expensive part of a half-finished campaign.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import Any

from ..core import NautilusError
from .campaign import Campaign, CampaignSpec, CampaignState

__all__ = ["CampaignStore"]


def _write_atomic(path: Path, payload: Any) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(json.dumps(payload, indent=1))
    tmp.replace(path)


class CampaignStore:
    """A directory of campaigns, with sequential crash-stable IDs."""

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()

    # -- id allocation ----------------------------------------------------------

    def _next_id(self) -> str:
        numbers = [0]
        for entry in self.root.iterdir():
            if entry.is_dir() and entry.name.startswith("c"):
                try:
                    numbers.append(int(entry.name[1:]))
                except ValueError:
                    continue
        return f"c{max(numbers) + 1:06d}"

    def campaign_dir(self, campaign_id: str) -> Path:
        return self.root / campaign_id

    # -- create / persist -------------------------------------------------------

    def create(self, spec: CampaignSpec) -> Campaign:
        """Allocate an ID, persist the spec, and return a QUEUED campaign."""
        with self._lock:
            campaign_id = self._next_id()
            directory = self.campaign_dir(campaign_id)
            directory.mkdir(parents=True)
        _write_atomic(directory / "spec.json", spec.to_json())
        campaign = Campaign(id=campaign_id, spec=spec)
        self.save_status(campaign)
        return campaign

    def save_status(self, campaign: Campaign) -> None:
        """Persist the campaign's state machine + progress curve."""
        payload = {
            "state": campaign.state,
            "error": campaign.error,
            "generations_done": campaign.generations_done,
            "records": campaign.curve_payload(),
        }
        _write_atomic(self.campaign_dir(campaign.id) / "status.json", payload)

    def save_result(self, campaign: Campaign) -> None:
        """Persist the terminal outcome next to the status."""
        payload = campaign.status_payload()
        payload["curve"] = campaign.curve_payload()
        _write_atomic(self.campaign_dir(campaign.id) / "result.json", payload)

    # -- load -------------------------------------------------------------------

    def load(self, campaign_id: str) -> Campaign:
        directory = self.campaign_dir(campaign_id)
        spec_path = directory / "spec.json"
        if not spec_path.exists():
            raise NautilusError(f"no campaign {campaign_id!r} in {self.root}")
        spec = CampaignSpec.from_json(json.loads(spec_path.read_text()))
        campaign = Campaign(id=campaign_id, spec=spec)
        status_path = directory / "status.json"
        if status_path.exists():
            status = json.loads(status_path.read_text())
            campaign.state = status.get("state", CampaignState.QUEUED)
            campaign.error = status.get("error", "")
            campaign.generations_done = status.get("generations_done", 0)
        return campaign

    def load_result(self, campaign_id: str) -> dict[str, Any] | None:
        path = self.campaign_dir(campaign_id) / "result.json"
        if not path.exists():
            return None
        return json.loads(path.read_text())

    def load_all(self) -> list[Campaign]:
        """All campaigns on disk, sorted by ID (i.e. submission order)."""
        campaigns = []
        for entry in sorted(self.root.iterdir()):
            if entry.is_dir() and (entry / "spec.json").exists():
                campaigns.append(self.load(entry.name))
        return campaigns

    def checkpoint_path(self, campaign_id: str) -> Path:
        return self.campaign_dir(campaign_id) / "checkpoint.json"

    # -- structured trace ---------------------------------------------------------

    def events_path(self, campaign_id: str) -> Path:
        """The campaign's append-only structured event log (JSONL)."""
        return self.campaign_dir(campaign_id) / "events.jsonl"

    def load_events(
        self, campaign_id: str, limit: int | None = None
    ) -> list[dict[str, Any]]:
        """Read a campaign's RunEvent log; ``limit`` keeps the last N.

        Torn trailing lines (a daemon killed mid-write) are skipped — the
        sink flushes per event, so at most the final line can be partial.
        """
        path = self.events_path(campaign_id)
        if not path.exists():
            return []
        events = []
        for line in path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError:
                continue
        if limit is not None and limit >= 0:
            return events[len(events) - limit :] if limit else []
        return events

    # -- span trace ---------------------------------------------------------------

    def spans_path(self, campaign_id: str) -> Path:
        """The campaign's append-only span log (JSONL, tracing campaigns)."""
        return self.campaign_dir(campaign_id) / "spans.jsonl"

    def append_spans(
        self, campaign_id: str, spans: list[dict[str, Any]]
    ) -> None:
        """Append finished spans to the campaign's span log.

        Append-only like the event log: the scheduler drains each
        campaign's :class:`~repro.obs.SpanRecorder` after every step, so a
        killed daemon loses at most the spans of the generation being
        stepped. A resumed campaign starts a fresh trace id — the log then
        holds one span tree per daemon incarnation.
        """
        if not spans:
            return
        path = self.spans_path(campaign_id)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("a") as handle:
            for span in spans:
                handle.write(json.dumps(span) + "\n")
            handle.flush()

    def load_spans(self, campaign_id: str) -> list[dict[str, Any]]:
        """Read a campaign's persisted span log (torn tail lines skipped)."""
        path = self.spans_path(campaign_id)
        if not path.exists():
            return []
        spans = []
        for line in path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                spans.append(json.loads(line))
            except json.JSONDecodeError:
                continue
        return spans
