"""A small urllib client for the campaign REST API.

Used by the ``nautilus submit`` / ``nautilus status`` CLI subcommands and
directly usable from scripts::

    client = ServiceClient(port=8765)
    cid = client.submit(CampaignSpec(query="noc-frequency", seed=3))
    status = client.wait(cid, timeout=300)
    curve = client.curve(cid)
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any

from ..core import NautilusError
from .campaign import CampaignSpec

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(NautilusError):
    """An API call failed; carries the HTTP status when one was received.

    ``fields`` holds the server's field-level error list (bad inline
    hints), empty for every other failure.
    """

    def __init__(
        self,
        message: str,
        status: int | None = None,
        fields: list[dict[str, str]] | None = None,
    ):
        super().__init__(message)
        self.status = status
        self.fields = fields or []


class ServiceClient:
    """Talk to one search-campaign daemon."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8765, timeout: float = 10.0):
        self.base = f"http://{host}:{port}"
        self.timeout = timeout

    # -- transport --------------------------------------------------------------

    def _request(self, method: str, path: str, body: dict | None = None) -> Any:
        data = json.dumps(body).encode() if body is not None else None
        request = urllib.request.Request(
            f"{self.base}{path}",
            data=data,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read() or b"null")
        except urllib.error.HTTPError as exc:
            fields: list[dict[str, str]] = []
            try:
                payload = json.loads(exc.read())
                detail = payload.get("error", "")
                fields = payload.get("fields") or []
            except Exception:
                detail = ""
            raise ServiceError(
                detail or f"{method} {path} -> HTTP {exc.code}",
                status=exc.code,
                fields=fields,
            ) from None
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"cannot reach daemon at {self.base}: {exc.reason}"
            ) from None

    # -- API --------------------------------------------------------------------

    def submit(self, spec: CampaignSpec | dict[str, Any]) -> str:
        """Submit a campaign; returns its ID."""
        payload = spec.to_json() if isinstance(spec, CampaignSpec) else dict(spec)
        return self._request("POST", "/campaigns", payload)["id"]

    def status(self, campaign_id: str) -> dict[str, Any]:
        return self._request("GET", f"/campaigns/{campaign_id}")

    def curve(self, campaign_id: str) -> list[dict[str, Any]]:
        return self._request("GET", f"/campaigns/{campaign_id}/curve")

    def trace(
        self, campaign_id: str, limit: int | None = None
    ) -> list[dict[str, Any]]:
        """A campaign's structured RunEvent log; ``limit`` keeps the last N."""
        path = f"/campaigns/{campaign_id}/trace"
        if limit is not None:
            path += f"?limit={limit}"
        return self._request("GET", path)

    def spans(self, campaign_id: str) -> list[dict[str, Any]]:
        """A campaign's persisted span tree (empty unless ``tracing``)."""
        return self._request("GET", f"/campaigns/{campaign_id}/spans")

    def hints(self, campaign_id: str) -> dict[str, Any]:
        """Aggregated hint-attribution report for one campaign."""
        return self._request("GET", f"/campaigns/{campaign_id}/hints")

    def cancel(self, campaign_id: str) -> dict[str, Any]:
        return self._request("DELETE", f"/campaigns/{campaign_id}")

    def list_campaigns(self) -> list[dict[str, Any]]:
        return self._request("GET", "/campaigns")

    def metrics(self) -> dict[str, Any]:
        return self._request("GET", "/metrics")

    def fleet(self) -> dict[str, Any]:
        """Evaluation-fleet status (``{"enabled": False}`` without one)."""
        return self._request("GET", "/fleet")

    def archive_stats(self) -> dict[str, Any]:
        """Cross-campaign archive counts (``{"enabled": False}`` without one)."""
        return self._request("GET", "/archive/stats")

    def archive_query(self, query: str, k: int | None = None) -> dict[str, Any]:
        """Top archived designs for a named query, best first."""
        path = f"/archive/query?query={query}"
        if k is not None:
            path += f"&k={k}"
        return self._request("GET", path)

    def metrics_prometheus(self) -> str:
        """The Prometheus text exposition of the daemon's registry."""
        request = urllib.request.Request(
            f"{self.base}/metrics?format=prometheus", method="GET"
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return response.read().decode()
        except urllib.error.HTTPError as exc:
            raise ServiceError(
                f"GET /metrics?format=prometheus -> HTTP {exc.code}",
                status=exc.code,
            ) from None
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"cannot reach daemon at {self.base}: {exc.reason}"
            ) from None

    def healthy(self) -> bool:
        try:
            return self._request("GET", "/healthz").get("status") == "ok"
        except ServiceError:
            return False

    def wait(
        self, campaign_id: str, timeout: float = 60.0, poll: float = 0.05
    ) -> dict[str, Any]:
        """Poll until the campaign reaches a terminal state."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(campaign_id)
            if status["state"] in ("done", "failed", "cancelled"):
                return status
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"campaign {campaign_id} still {status['state']!r} "
                    f"after {timeout}s"
                )
            time.sleep(poll)
