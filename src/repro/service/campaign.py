"""Campaign specs and runtime state.

A :class:`CampaignSpec` is the unit of work a user submits: one named query
(see :mod:`repro.queries`), an engine choice, and the search
hyper-parameters. Specs are plain JSON-serializable dataclasses — they ride
over the REST API and into the on-disk store unchanged.

:func:`build_search` turns a spec into a concrete engine instance. GA
campaigns are built as :class:`~repro.core.checkpoint.CheckpointedSearch`
with per-generation snapshots into the campaign directory, which is what
makes daemon restarts lossless: the snapshot carries population, RNG
stream, history *and* the evaluation cache.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any

from ..core import (
    CheckpointedParetoSearch,
    CheckpointedSearch,
    EvaluationStack,
    GAConfig,
    NautilusError,
    RandomSearch,
    hintset_from_json,
)
from ..core.evalstack import PersistentCache
from ..core.evaluator import DatasetEvaluator
from ..queries import (
    MULTI_QUERIES,
    QUERIES,
    build_hints,
    resolve_multi_objectives,
    resolve_objective,
)

__all__ = [
    "CampaignState",
    "CampaignSpec",
    "Campaign",
    "build_search",
    "query_space",
]

_ENGINES = ("nautilus", "baseline", "random", "pareto")


def query_space(spec: "CampaignSpec") -> str:
    """The dataset space a spec's query runs against (any engine)."""
    registry = MULTI_QUERIES if spec.engine == "pareto" else QUERIES
    return registry[spec.query].space


class CampaignState:
    """Lifecycle states of a campaign (plain strings for JSON friendliness).

    ``QUEUED -> RUNNING -> DONE`` is the happy path; ``FAILED`` captures an
    engine exception, ``CANCELLED`` a user's DELETE. ``RUNNING`` campaigns
    found in the store at daemon startup are re-queued and resumed from
    their checkpoint.
    """

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    ALL = (QUEUED, RUNNING, DONE, FAILED, CANCELLED)
    #: States a restarted daemon picks back up.
    IN_FLIGHT = (QUEUED, RUNNING)
    #: States no scheduler tick will ever touch again.
    TERMINAL = (DONE, FAILED, CANCELLED)


@dataclass(frozen=True)
class CampaignSpec:
    """Everything needed to (re)build one search campaign.

    Attributes:
        query: A named query from :data:`repro.queries.QUERIES` — or, for
            the ``"pareto"`` engine, from
            :data:`repro.queries.MULTI_QUERIES`.
        engine: ``"nautilus"`` (guided), ``"baseline"`` (unguided GA),
            ``"random"``, or ``"pareto"`` (NSGA-II over a named
            multi-objective query).
        generations: GA horizon (ignored by the random engine).
        seed: RNG seed — campaigns are deterministic given their spec.
        priority: Higher is served first; campaigns of equal priority share
            the scheduler round-robin fairly.
        confidence: Optional hint-confidence override (nautilus engine);
            for the ``pareto`` engine, setting it opts the campaign into
            the multi-query's hint guidance.
        hints: Optional inline hint set in the schema-versioned JSON wire
            format (see :func:`repro.core.hintset_to_json`), replacing the
            query's bundled ``hint_kind``. Guided engines only (nautilus /
            pareto). Structure is validated here (a 400 at submission);
            the scheduler additionally validates against the query's
            design space before enqueueing.
        budget: Random-search draw budget (random engine only).
        max_evaluations: Optional distinct-evaluation cutoff for GA runs.
        workers: Optional per-campaign evaluation pool size, overriding the
            daemon-wide default (``nautilus submit --workers N``). Must be
            >= 1 — validated here so a bad value is a 400 at submission,
            not a failed campaign later.
        trace_max_events: Optional cap on this campaign's persisted event
            log (see :class:`~repro.core.CappedJsonlTraceSink`); overrides
            the service-wide default. ``None`` keeps every event.
        tracing: Record a span tree for the campaign (see
            :mod:`repro.obs.tracing`), persisted as ``spans.jsonl`` and
            served by ``GET /campaigns/<id>/spans`` / ``nautilus
            profile``. Off by default; spans consume zero RNG draws, so a
            traced campaign's results are bit-identical to an untraced
            one.
        warm_start: Seed the initial population with this many of the best
            designs the daemon's cross-campaign archive holds for the
            query (single-objective GA engines only). Requires the daemon
            to run with ``--archive`` — validated by the scheduler at
            submission. At most ``population_size - 1`` seeds are
            injected, keeping at least one random individual.
        label: Free-form tag carried into results.
    """

    query: str
    engine: str = "nautilus"
    generations: int = 80
    seed: int = 0
    priority: int = 0
    confidence: float | None = None
    hints: dict | None = None
    budget: int = 400
    max_evaluations: int | None = None
    workers: int | None = None
    trace_max_events: int | None = None
    tracing: bool = False
    warm_start: int | None = None
    label: str = ""

    def __post_init__(self) -> None:
        if self.engine not in _ENGINES:
            raise NautilusError(
                f"unknown engine {self.engine!r}; choose from {_ENGINES}"
            )
        registry = MULTI_QUERIES if self.engine == "pareto" else QUERIES
        if self.query not in registry:
            raise NautilusError(
                f"unknown query {self.query!r} for engine {self.engine!r}; "
                f"choose from {sorted(registry)}"
            )
        if self.generations < 1:
            raise NautilusError("generations must be >= 1")
        if self.budget < 1:
            raise NautilusError("budget must be >= 1")
        if self.workers is not None and self.workers < 1:
            raise NautilusError("workers must be >= 1")
        if self.trace_max_events is not None and self.trace_max_events < 4:
            raise NautilusError("trace_max_events must be >= 4")
        if self.warm_start is not None:
            if self.warm_start < 1:
                raise NautilusError("warm_start must be >= 1")
            if self.engine not in ("nautilus", "baseline"):
                raise NautilusError(
                    f"warm_start requires a single-objective GA engine "
                    f"(nautilus or baseline), not {self.engine!r}"
                )
        if self.hints is not None:
            if self.engine not in ("nautilus", "pareto"):
                raise NautilusError(
                    f"inline hints require a guided engine (nautilus or "
                    f"pareto), not {self.engine!r}"
                )
            # Structural validation only — raises HintSpecError with
            # field-level errors. Space-level validation needs the dataset
            # and happens in Scheduler.validate_spec.
            hintset_from_json(self.hints)

    def to_json(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_json(cls, payload: dict[str, Any]) -> "CampaignSpec":
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(payload) - known
        if unknown:
            raise NautilusError(f"unknown campaign spec fields: {sorted(unknown)}")
        return cls(**payload)


def _inline_hints(spec: CampaignSpec, dataset):
    """Deserialize a spec's inline hints, validated against the space.

    A spec-level ``confidence`` composes with inline hints the same way it
    re-weights a bundled hint kind.
    """
    hints = hintset_from_json(spec.hints, dataset.space)
    if spec.confidence is not None:
        hints = hints.with_confidence(spec.confidence)
    return hints


def build_search(
    spec: CampaignSpec,
    dataset,
    campaign_dir: str | Path | None = None,
    workers: int = 1,
    persistent: PersistentCache | None = None,
    registry=None,
    fleet=None,
    archive=None,
    campaign_id: str = "",
):
    """Instantiate the engine a spec describes, against a shared dataset.

    GA engines checkpoint every generation under ``campaign_dir`` so the
    scheduler can resume them after a daemon restart; the random baseline
    is cheap and deterministic, so on restart it simply replays from its
    seed. The evaluator is a full
    :class:`~repro.core.EvaluationStack` per campaign — its own memo cache
    and counters, a thread-pool backend when ``workers > 1``
    (population-sized parallelism), and optionally a shared ``persistent``
    on-disk cache so campaigns over the same space never re-pay a
    synthesis job, across processes and daemon restarts. ``registry`` is
    the daemon's shared metrics registry; each stack publishes its
    ``nautilus_eval_*`` families there. ``fleet`` is an optional
    :class:`~repro.distributed.FleetCoordinator`; when given, the stack's
    backend dispatches distinct evaluations to the worker fleet instead of
    a local pool (degrading to inline execution while the fleet is empty).
    A spec's own ``workers`` overrides the daemon-wide default.

    ``archive`` is the daemon's shared
    :class:`~repro.archive.DesignArchive`: when given, the stack records
    every evaluation into it under ``campaign_id``, and a spec with
    ``warm_start`` gets the archive's top designs injected into its
    initial population (single-objective GA engines only).
    """
    effective_workers = spec.workers or workers
    if fleet is not None:
        backend = "fleet"
    elif effective_workers > 1:
        backend = "thread"
    else:
        backend = "auto"
    evaluator = EvaluationStack(
        DatasetEvaluator(dataset),
        backend=backend,
        workers=effective_workers,
        persistent=persistent,
        registry=registry,
        fleet=fleet,
        archive=archive,
        campaign=campaign_id or spec.label,
    )
    if spec.engine == "pareto":
        multi = MULTI_QUERIES[spec.query]
        objectives, hint_kind = resolve_multi_objectives(multi)
        # Pareto campaigns are unguided by default; inline hints or an
        # explicit confidence (opting into the query's hint kind, mirroring
        # nautilus-vs-baseline) turn guidance on.
        hints = None
        if spec.hints is not None:
            hints = _inline_hints(spec, dataset)
        elif hint_kind and spec.confidence is not None:
            hints = build_hints(hint_kind, spec.confidence)
        config = GAConfig(
            population_size=24,
            generations=spec.generations,
            seed=spec.seed,
            max_evaluations=spec.max_evaluations,
            tracing=spec.tracing,
        )
        if campaign_dir is None:
            from ..core import ParetoSearch

            return ParetoSearch(
                dataset.space, evaluator, objectives, config,
                hints=hints, label=spec.label or "pareto",
            )
        return CheckpointedParetoSearch(
            dataset.space,
            evaluator,
            objectives,
            config,
            hints=hints,
            label=spec.label or "pareto",
            checkpoint_path=Path(campaign_dir) / "checkpoint.json",
            checkpoint_every=1,
        )
    query = QUERIES[spec.query]
    objective, hint_kind = resolve_objective(query)
    if spec.engine == "random":
        return RandomSearch(
            dataset.space,
            evaluator,
            objective,
            budget=spec.budget,
            seed=spec.seed,
            label=spec.label or "random",
            tracing=spec.tracing,
        )
    hints = None
    if spec.engine == "nautilus":
        if spec.hints is not None:
            hints = _inline_hints(spec, dataset)
        else:
            hints = build_hints(hint_kind, spec.confidence)
    warm_start: tuple = ()
    if spec.warm_start and archive is not None:
        # Keep at least one random individual: warm seeds replace a prefix
        # of the population, never all of it.
        population_size = GAConfig.__dataclass_fields__["population_size"].default
        count = min(spec.warm_start, population_size - 1)
        warm_start = tuple(
            archive.warm_start_configs(
                dataset.space, evaluator.fingerprint, objective, count
            )
        )
    config = GAConfig(
        generations=spec.generations,
        seed=spec.seed,
        max_evaluations=spec.max_evaluations,
        tracing=spec.tracing,
        warm_start=warm_start,
    )
    if campaign_dir is None:
        from ..core import GeneticSearch

        return GeneticSearch(
            dataset.space, evaluator, objective, config,
            hints=hints, label=spec.label,
        )
    return CheckpointedSearch(
        dataset.space,
        evaluator,
        objective,
        config,
        hints=hints,
        label=spec.label,
        checkpoint_path=Path(campaign_dir) / "checkpoint.json",
        checkpoint_every=1,
    )


@dataclass
class Campaign:
    """The scheduler's live view of one campaign."""

    id: str
    spec: CampaignSpec
    state: str = CampaignState.QUEUED
    error: str = ""
    generations_done: int = 0
    cancel_requested: bool = False
    search: Any = field(default=None, repr=False)
    result: Any = field(default=None, repr=False)
    #: Terminal outcome reloaded from the store after a daemon restart —
    #: served when no live engine object exists for this campaign.
    stored_result: dict[str, Any] | None = field(default=None, repr=False)

    @property
    def terminal(self) -> bool:
        return self.state in CampaignState.TERMINAL

    def status_payload(self) -> dict[str, Any]:
        """The JSON body served by ``GET /campaigns/<id>``."""
        payload: dict[str, Any] = {
            "id": self.id,
            "state": self.state,
            "spec": self.spec.to_json(),
            "generations_done": self.generations_done,
        }
        if self.error:
            payload["error"] = self.error
        source = self.result or self.search
        if source is None:
            if self.stored_result:
                for key in (
                    "best_raw", "best_score", "best_config",
                    "distinct_evaluations", "stop_reason", "front", "health",
                ):
                    if key in self.stored_result:
                        payload[key] = self.stored_result[key]
            return payload
        records = source.records
        if records:
            last = records[-1]
            payload["best_raw"] = last.best_raw
            payload["best_score"] = last.best_score
            payload["best_config"] = last.best_config
        payload["distinct_evaluations"] = source.distinct_evaluations
        health = getattr(self.search, "latest_health", None)
        if health is not None:
            payload["health"] = dict(health)
        stop = getattr(source, "stop_reason", None)
        if self.terminal and stop:
            payload["stop_reason"] = stop
        front_raws = getattr(source, "front_raws", None)
        if callable(front_raws):
            try:
                payload["front"] = [list(raws) for raws in front_raws()]
            except NautilusError:  # search built but not started yet
                pass
        return payload

    def curve_payload(self) -> list[dict[str, Any]]:
        """The JSON body served by ``GET /campaigns/<id>/curve``."""
        source = self.result or self.search
        if source is None:
            if self.stored_result:
                return list(self.stored_result.get("curve", []))
            return []
        return [
            {
                "generation": r.generation,
                "distinct_evaluations": r.distinct_evaluations,
                "best_raw": r.best_raw,
                "best_score": r.best_score,
            }
            for r in source.records
        ]
