"""REST API over the campaign scheduler (stdlib ``http.server`` only).

Routes::

    POST   /campaigns            submit a CampaignSpec (JSON body) -> 201 {id}
    GET    /campaigns            list campaign summaries
    GET    /campaigns/<id>       status: state, progress, best-so-far
    GET    /campaigns/<id>/curve per-generation search curve
    GET    /campaigns/<id>/trace structured RunEvent log (?limit=N for tail)
    GET    /campaigns/<id>/spans persisted span tree (tracing campaigns)
    GET    /campaigns/<id>/hints aggregated hint-attribution report
    DELETE /campaigns/<id>       request cancellation
    GET    /metrics              live service counters (JSON); add
                                 ?format=prometheus for text exposition
    GET    /fleet                evaluation-fleet status: workers, queue
                                 depth, dispatch/retry/requeue counters
    GET    /archive/stats        cross-campaign archive: row/feasibility/
                                 campaign counts ({"enabled": false} off)
    GET    /archive/query        top archived designs (?query=<name>&k=N)
    GET    /healthz              liveness probe

Malformed query parameters (a non-integer or negative ``limit``, an
unknown ``format``) are client errors and answer 400 with a JSON body;
404 is reserved for unknown routes and campaigns. A spec with invalid
inline ``hints`` answers 400 with a ``fields`` list attributing every
error to its offending field (``params.<name>.bias``, say).

The server is a ``ThreadingHTTPServer``: request handling is concurrent,
but every mutation funnels through the scheduler's lock, and engines are
only ever stepped by the scheduler thread — handlers read snapshots.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any
from urllib.parse import parse_qs

from ..core import HintSpecError, NautilusError
from .campaign import CampaignSpec
from .scheduler import Scheduler

__all__ = ["ServiceHTTPServer", "make_server"]


class _BadRequest(Exception):
    """Malformed client input in a query string — rendered as HTTP 400."""


class ServiceHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the scheduler for its handlers."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, scheduler: Scheduler, quiet: bool = True):
        self.scheduler = scheduler
        self.quiet = quiet
        super().__init__(address, _Handler)


class _Handler(BaseHTTPRequestHandler):
    server: ServiceHTTPServer
    protocol_version = "HTTP/1.1"

    # -- plumbing ---------------------------------------------------------------

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if not self.server.quiet:  # pragma: no cover - debug aid
            super().log_message(format, *args)

    def _send_json(self, payload: Any, status: int = 200) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, message: str) -> None:
        self._send_json({"error": message}, status=status)

    def _read_body(self) -> dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        payload = json.loads(raw)
        if not isinstance(payload, dict):
            raise NautilusError("request body must be a JSON object")
        return payload

    def _route(self) -> tuple[str, ...]:
        path = self.path.split("?", 1)[0]
        return tuple(part for part in path.split("/") if part)

    def _query_raw(self, name: str) -> str | None:
        parts = self.path.split("?", 1)
        if len(parts) < 2:
            return None
        values = parse_qs(parts[1]).get(name)
        return values[-1] if values else None

    def _query_int(self, name: str, minimum: int | None = None) -> int | None:
        raw = self._query_raw(name)
        if raw is None:
            return None
        try:
            value = int(raw)
        except ValueError:
            raise _BadRequest(
                f"query parameter {name!r} must be an integer, got {raw!r}"
            ) from None
        if minimum is not None and value < minimum:
            raise _BadRequest(f"query parameter {name!r} must be >= {minimum}")
        return value

    def _send_text(self, body: str, content_type: str) -> None:
        data = body.encode()
        self.send_response(200)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    # -- verbs ------------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        scheduler = self.server.scheduler
        parts = self._route()
        try:
            if parts == ("healthz",):
                self._send_json({"status": "ok"})
            elif parts == ("metrics",):
                fmt = self._query_raw("format")
                if fmt is None or fmt == "json":
                    self._send_json(scheduler.metrics.snapshot())
                elif fmt == "prometheus":
                    self._send_text(
                        scheduler.metrics.registry.render(),
                        "text/plain; version=0.0.4; charset=utf-8",
                    )
                else:
                    raise _BadRequest(
                        f"unknown metrics format {fmt!r}; "
                        "use 'json' or 'prometheus'"
                    )
            elif parts == ("fleet",):
                self._send_json(scheduler.fleet_status())
            elif parts == ("archive", "stats"):
                self._send_json(scheduler.archive_stats())
            elif parts == ("archive", "query"):
                name = self._query_raw("query")
                if not name:
                    raise _BadRequest("query parameter 'query' is required")
                k = self._query_int("k", minimum=1)
                self._send_json(
                    scheduler.archive_query(name, k=10 if k is None else k)
                )
            elif parts == ("campaigns",):
                self._send_json(
                    [c.status_payload() for c in scheduler.list_campaigns()]
                )
            elif len(parts) == 2 and parts[0] == "campaigns":
                self._send_json(scheduler.get(parts[1]).status_payload())
            elif len(parts) == 3 and parts[:1] == ("campaigns",) and parts[2] == "curve":
                self._send_json(scheduler.get(parts[1]).curve_payload())
            elif len(parts) == 3 and parts[:1] == ("campaigns",) and parts[2] == "trace":
                self._send_json(
                    scheduler.trace(
                        parts[1], limit=self._query_int("limit", minimum=0)
                    )
                )
            elif len(parts) == 3 and parts[:1] == ("campaigns",) and parts[2] == "spans":
                self._send_json(scheduler.spans(parts[1]))
            elif len(parts) == 3 and parts[:1] == ("campaigns",) and parts[2] == "hints":
                self._send_json(scheduler.hint_report(parts[1]))
            else:
                self._send_error_json(404, f"no route {self.path!r}")
        except _BadRequest as exc:
            self._send_error_json(400, str(exc))
        except NautilusError as exc:
            self._send_error_json(404, str(exc))

    def do_POST(self) -> None:  # noqa: N802
        scheduler = self.server.scheduler
        if self._route() != ("campaigns",):
            self._send_error_json(404, f"no route {self.path!r}")
            return
        try:
            spec = CampaignSpec.from_json(self._read_body())
            campaign = scheduler.submit(spec)
        except HintSpecError as exc:
            # Inline hints failed validation (structural or against the
            # query's space): surface every offending field so the client
            # can fix them all in one round trip.
            self._send_json(
                {"error": f"bad campaign spec: {exc}", "fields": exc.errors},
                status=400,
            )
            return
        except (NautilusError, TypeError, ValueError) as exc:
            self._send_error_json(400, f"bad campaign spec: {exc}")
            return
        self._send_json({"id": campaign.id, "state": campaign.state}, status=201)

    def do_DELETE(self) -> None:  # noqa: N802
        scheduler = self.server.scheduler
        parts = self._route()
        if len(parts) != 2 or parts[0] != "campaigns":
            self._send_error_json(404, f"no route {self.path!r}")
            return
        try:
            campaign = scheduler.cancel(parts[1])
        except NautilusError as exc:
            self._send_error_json(404, str(exc))
            return
        self._send_json({"id": campaign.id, "state": campaign.state})


def make_server(
    scheduler: Scheduler, host: str = "127.0.0.1", port: int = 0, quiet: bool = True
) -> ServiceHTTPServer:
    """Bind the REST API; ``port=0`` picks an ephemeral port."""
    return ServiceHTTPServer((host, port), scheduler, quiet=quiet)
