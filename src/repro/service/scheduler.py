"""Round-robin campaign scheduler.

One scheduler thread owns every engine object and steps them one generation
at a time: campaigns of the highest priority present share the CPU
round-robin, lower priorities run only when no higher-priority campaign is
runnable. Because the engines' incremental API is deterministic (stepping
never consumes RNG differently than ``run()``), interleaving campaigns
changes *when* each generation happens but never *what* it computes — a
campaign's outcome is identical to its same-seed sequential run.

The scheduler can run threaded (:meth:`Scheduler.start` /
:meth:`Scheduler.shutdown`) or be driven manually with :meth:`tick` — the
tests use manual ticking to stop a daemon deterministically mid-campaign.

Fault model: an engine exception fails only its campaign; a daemon kill
loses at most the generation being stepped (GA campaigns checkpoint every
generation through :class:`~repro.core.checkpoint.CheckpointedSearch`,
evaluation cache included). :meth:`recover` re-queues every in-flight
campaign found in the store.
"""

from __future__ import annotations

import logging
import threading
from collections import deque
from typing import Any

from ..core import (
    CappedJsonlTraceSink,
    CheckpointedParetoSearch,
    CheckpointedSearch,
    JsonlTraceSink,
    NautilusError,
    hintset_from_json,
)
from ..obs.attribution import hint_effect_report
from ..queries import load_dataset
from .campaign import (
    Campaign,
    CampaignSpec,
    CampaignState,
    build_search,
    query_space,
)
from .metrics import ServiceMetrics
from .store import CampaignStore

__all__ = ["Scheduler"]

_LOG = logging.getLogger("nautilus.scheduler")


class Scheduler:
    """Steps many campaigns fairly on one thread + a shared worker pool.

    Args:
        store: Campaign persistence (specs, statuses, checkpoints, results).
        metrics: Counter sink; a fresh one is created when omitted.
        workers: Evaluation worker-pool size per step (the thread backend of
            each campaign's :class:`~repro.core.EvaluationStack`); 1
            evaluates inline.
        dataset_provider: ``space_name -> Dataset`` hook, overridable in
            tests; defaults to the bundled dataset loaders.
        poll_interval: Idle-loop sleep of the scheduler thread, seconds.
        persistent: Optional shared
            :class:`~repro.core.PersistentCache` threaded into every
            campaign's evaluation stack, so campaigns over the same space
            never re-pay a synthesis job — across processes and daemon
            restarts.
        trace_max_events: Service-wide cap on per-campaign event logs
            (``None`` keeps everything). A spec's own ``trace_max_events``
            overrides it for that campaign. Capped logs keep the oldest
            and newest halves and splice a ``trace-truncated`` marker in
            between.
        fleet: Optional :class:`~repro.distributed.FleetCoordinator`; when
            given, every campaign's evaluation stack dispatches its
            distinct evaluations to the worker fleet (degrading to local
            inline execution while the fleet is empty). The scheduler does
            not own the coordinator's lifecycle — the daemon does.
        archive: Optional :class:`~repro.archive.DesignArchive` shared by
            every campaign: live evaluations are recorded through each
            stack's archive tap, completed campaigns are drained into it
            at finalize (catching checkpoint-resumed rows the tap never
            saw), and specs with ``warm_start`` seed their initial
            population from its best designs.
    """

    def __init__(
        self,
        store: CampaignStore,
        metrics: ServiceMetrics | None = None,
        workers: int = 1,
        dataset_provider=load_dataset,
        poll_interval: float = 0.05,
        persistent=None,
        trace_max_events: int | None = None,
        fleet=None,
        archive=None,
    ):
        if workers < 1:
            raise NautilusError("workers must be >= 1")
        if trace_max_events is not None and trace_max_events < 4:
            raise NautilusError("trace_max_events must be >= 4")
        self.store = store
        self.metrics = metrics or ServiceMetrics()
        self.workers = workers
        self.poll_interval = poll_interval
        self.persistent = persistent
        self.trace_max_events = trace_max_events
        self.fleet = fleet
        self.archive = archive
        self._prom_warm_seeds = None
        if archive is not None:
            self._prom_warm_seeds = self.metrics.registry.counter(
                "nautilus_warm_start_seeds_total",
                "Archived designs injected into initial GA populations.",
            )
        self._dataset_provider = dataset_provider
        self._datasets: dict[str, Any] = {}
        self._campaigns: dict[str, Campaign] = {}
        #: Live per-campaign JSONL trace sinks, closed on finalize.
        self._sinks: dict[str, JsonlTraceSink] = {}
        self._queues: dict[int, deque[str]] = {}
        self._lock = threading.RLock()
        self._wake = threading.Event()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- shared datasets --------------------------------------------------------

    def _dataset(self, space_name: str):
        """The shared (read-only) characterization dataset for a space."""
        if space_name not in self._datasets:
            self._datasets[space_name] = self._dataset_provider(space_name)
        return self._datasets[space_name]

    # -- submission / queries ---------------------------------------------------

    def validate_spec(self, spec: CampaignSpec) -> None:
        """Space-level validation a bare spec cannot do for itself.

        Inline hints are structurally validated by the spec's constructor;
        here they are additionally checked against the query's design space
        (unknown parameters, out-of-domain targets, bad orderings), so a
        bad submission is rejected with field-level errors *before* the
        campaign is persisted — not failed generations later when the
        scheduler first builds the engine.

        Raises:
            HintSpecError: The inline hints do not fit the query's space.
        """
        if spec.hints is not None:
            dataset = self._dataset(query_space(spec))
            hintset_from_json(spec.hints, dataset.space)
        if spec.warm_start is not None and self.archive is None:
            raise NautilusError(
                "warm_start requires the cross-campaign archive; start the "
                "daemon with --archive"
            )

    def submit(self, spec: CampaignSpec) -> Campaign:
        """Persist and enqueue a new campaign; wakes the scheduler thread."""
        self.validate_spec(spec)
        campaign = self.store.create(spec)
        with self._lock:
            self._campaigns[campaign.id] = campaign
            self._enqueue(campaign)
        self.metrics.record_state(campaign.id, campaign.state)
        _LOG.info(
            "campaign submitted",
            extra={"campaign": campaign.id, "query": spec.query,
                   "engine": spec.engine, "seed": spec.seed},
        )
        self._wake.set()
        return campaign

    def get(self, campaign_id: str) -> Campaign:
        with self._lock:
            try:
                return self._campaigns[campaign_id]
            except KeyError:
                raise NautilusError(f"unknown campaign {campaign_id!r}") from None

    def list_campaigns(self) -> list[Campaign]:
        with self._lock:
            return [self._campaigns[cid] for cid in sorted(self._campaigns)]

    def cancel(self, campaign_id: str) -> Campaign:
        """Request cancellation; queued campaigns cancel immediately."""
        with self._lock:
            campaign = self.get(campaign_id)
            if campaign.terminal:
                return campaign
            campaign.cancel_requested = True
            if campaign.search is None:
                self._finalize(campaign, CampaignState.CANCELLED)
        self._wake.set()
        return campaign

    # -- recovery ---------------------------------------------------------------

    def recover(self) -> list[Campaign]:
        """Reload the store; re-queue every in-flight campaign.

        GA campaigns resume from their last per-generation checkpoint
        (population, RNG stream, history and evaluation cache); random
        campaigns deterministically replay from their seed. Terminal
        campaigns are loaded for status/curve queries only. Returns the
        re-queued campaigns.
        """
        requeued = []
        with self._lock:
            for campaign in self.store.load_all():
                if campaign.id in self._campaigns:
                    continue
                self._campaigns[campaign.id] = campaign
                if campaign.state in CampaignState.IN_FLIGHT:
                    campaign.state = CampaignState.QUEUED
                    campaign.generations_done = 0
                    self._enqueue(campaign)
                    requeued.append(campaign)
                else:
                    campaign.stored_result = self.store.load_result(campaign.id)
                self.metrics.record_state(campaign.id, campaign.state)
        if requeued:
            self._wake.set()
        return requeued

    # -- the scheduling loop ----------------------------------------------------

    def _enqueue(self, campaign: Campaign) -> None:
        self._queues.setdefault(campaign.spec.priority, deque()).append(campaign.id)

    def _next(self) -> Campaign | None:
        """Pop the next runnable campaign: highest priority, round-robin."""
        with self._lock:
            for priority in sorted(self._queues, reverse=True):
                queue = self._queues[priority]
                while queue:
                    campaign = self._campaigns[queue.popleft()]
                    if not campaign.terminal:
                        return campaign
            return None

    def tick(self) -> bool:
        """Advance exactly one campaign by one generation.

        Returns False when nothing was runnable. Fairness is the deque
        rotation: a stepped campaign goes to the back of its priority's
        queue.
        """
        campaign = self._next()
        if campaign is None:
            return False
        try:
            self._step(campaign)
        except Exception as exc:  # engine bug or bad data: fail one campaign
            campaign.error = f"{type(exc).__name__}: {exc}"
            self._finalize(campaign, CampaignState.FAILED)
            return True
        if not campaign.terminal:
            with self._lock:
                self._enqueue(campaign)
        return True

    def _build(self, campaign: Campaign) -> None:
        dataset = self._dataset(query_space(campaign.spec))
        search = build_search(
            campaign.spec,
            dataset,
            campaign_dir=self.store.campaign_dir(campaign.id),
            workers=self.workers,
            persistent=self.persistent,
            registry=self.metrics.registry,
            fleet=self.fleet,
            archive=self.archive,
            campaign_id=campaign.id,
        )
        checkpoint = self.store.checkpoint_path(campaign.id)
        resumable = (CheckpointedSearch, CheckpointedParetoSearch)
        if isinstance(search, resumable) and checkpoint.exists():
            search.resume(checkpoint)
        # Every engine streams its structured trace into the campaign's
        # append-mode event log. On resume the engine replays its recorded
        # history without notifying sinks, so the log never duplicates
        # generations across daemon restarts.
        events_path = self.store.events_path(campaign.id)
        cap = campaign.spec.trace_max_events or self.trace_max_events
        if cap is not None:
            sink: JsonlTraceSink = CappedJsonlTraceSink(events_path, cap)
        else:
            sink = JsonlTraceSink(events_path)
        search.attach_sink(sink)
        self._sinks[campaign.id] = sink
        campaign.search = search

    def _step(self, campaign: Campaign) -> None:
        if campaign.cancel_requested:
            search = campaign.search
            if search is not None and search.started:
                if not search.finished:
                    # Pin the terminal reason and emit the trace's final
                    # "stop" event before packaging the partial result.
                    search.stop("cancelled")
                campaign.result = search.result()
            self._finalize(campaign, CampaignState.CANCELLED)
            return
        if campaign.search is None:
            self._build(campaign)
        search = campaign.search
        stack = search.stack
        before = stack.stats()
        if not search.started:
            search.start()
            # Counts only genuinely injected seeds: a checkpoint resume
            # restores its population instead of re-seeding and reports 0.
            seeds = getattr(search, "warm_start_seeds", 0)
            if seeds and self._prom_warm_seeds is not None:
                self._prom_warm_seeds.inc(seeds)
            if campaign.state != CampaignState.RUNNING:
                campaign.state = CampaignState.RUNNING
                self.metrics.record_state(campaign.id, campaign.state)
            record: Any = True  # starting is progress, never terminal
        else:
            record = search.step()
        campaign.generations_done = search.generation
        self._drain_spans(campaign)
        self.metrics.record_step(
            campaign.id,
            campaign.generations_done,
            stack.stats().minus(before),
            best_score=getattr(search, "best_score", None),
            health=getattr(search, "latest_health", None),
        )
        self.metrics.record_operators(campaign.id, search.operator_timings())
        if record is None:
            campaign.result = search.result()
            self._finalize(campaign, CampaignState.DONE)
        else:
            self.store.save_status(campaign)

    def _drain_spans(self, campaign: Campaign) -> None:
        """Persist the campaign's newly finished spans (tracing campaigns).

        Runs on the scheduler thread only, so the recorder's drain cursor
        never races a query: :meth:`spans` reads the persisted log and
        does not touch the live recorder.
        """
        search = campaign.search
        tracer = getattr(search, "tracer", None)
        if tracer is None:
            return
        finished = tracer.drain_finished()
        if finished:
            self.store.append_spans(campaign.id, finished)

    def _drain_archive(self, campaign: Campaign) -> None:
        """Flush a finished campaign's memoized outcomes into the archive.

        The live tap records everything flowing past the memo, but a
        checkpoint-resumed campaign preloads its memo directly — those rows
        never cross the tap. Draining at finalize catches them; the archive
        dedupes, so double-recording the tapped rows costs nothing.
        """
        if self.archive is None or campaign.search is None:
            return
        stack = getattr(campaign.search, "stack", None)
        if stack is None:
            return
        try:
            space = self._dataset(query_space(campaign.spec)).space
        except NautilusError:
            return
        pairs = []
        for key, outcome in stack.memo_items():
            __, values = key
            try:
                genome = space.genome(dict(zip(space.param_names, values)))
            except NautilusError:
                continue  # space drifted since the rows were paid for
            pairs.append((genome, outcome))
        if pairs:
            self.archive.record_many(
                pairs, stack.fingerprint, campaign=campaign.id
            )

    def _finalize(self, campaign: Campaign, state: str) -> None:
        self._drain_archive(campaign)
        self._drain_spans(campaign)
        campaign.state = state
        self.store.save_status(campaign)
        self.store.save_result(campaign)
        self.metrics.record_state(campaign.id, state)
        if state == CampaignState.FAILED:
            _LOG.error(
                "campaign failed",
                extra={"campaign": campaign.id, "error": campaign.error},
            )
        else:
            _LOG.info("campaign finished",
                      extra={"campaign": campaign.id, "state": state})
        sink = self._sinks.pop(campaign.id, None)
        if sink is not None:
            sink.close()

    # -- structured trace ---------------------------------------------------------

    def trace(
        self, campaign_id: str, limit: int | None = None
    ) -> list[dict[str, Any]]:
        """A campaign's persisted RunEvent log (most recent last)."""
        self.get(campaign_id)  # 404 on unknown campaigns
        return self.store.load_events(campaign_id, limit=limit)

    def spans(self, campaign_id: str) -> list[dict[str, Any]]:
        """A campaign's persisted span tree (tracing campaigns only).

        Spans are drained to ``spans.jsonl`` after every scheduler step
        and at finalize, so a finished campaign's tree is complete here;
        a live campaign shows everything up to its last stepped
        generation. Non-tracing campaigns return an empty list.
        """
        self.get(campaign_id)  # 404 on unknown campaigns
        return self.store.load_spans(campaign_id)

    def hint_report(self, campaign_id: str) -> dict[str, Any]:
        """Aggregate hint attribution over a campaign's persisted trace.

        Folds every ``hint-attribution`` event in the campaign's event log
        into one :class:`~repro.obs.HintEffectReport` dict — the body of
        ``GET /campaigns/<id>/hints``.
        """
        self.get(campaign_id)  # 404 on unknown campaigns
        events = self.store.load_events(campaign_id)
        return hint_effect_report(events)

    # -- fleet ------------------------------------------------------------------

    def fleet_status(self) -> dict[str, Any]:
        """The coordinator snapshot behind ``GET /fleet``."""
        if self.fleet is None:
            return {"enabled": False}
        return self.fleet.status()

    # -- archive ----------------------------------------------------------------

    def archive_stats(self) -> dict[str, Any]:
        """The archive snapshot behind ``GET /archive/stats``."""
        if self.archive is None:
            return {"enabled": False}
        payload = self.archive.stats()
        payload["enabled"] = True
        payload["root"] = str(self.archive.root)
        return payload

    def archive_query(self, query_name: str, k: int = 10) -> dict[str, Any]:
        """Top archived designs for a named query — ``GET /archive/query``."""
        if self.archive is None:
            raise NautilusError(
                "archive disabled; start the daemon with --archive"
            )
        from ..core import DatasetEvaluator, evaluator_fingerprint
        from ..queries import QUERIES, resolve_objective

        if query_name not in QUERIES:
            raise NautilusError(
                f"unknown query {query_name!r}; choose from {sorted(QUERIES)}"
            )
        query = QUERIES[query_name]
        dataset = self._dataset(query.space)
        objective, __ = resolve_objective(query)
        fingerprint = evaluator_fingerprint(DatasetEvaluator(dataset))
        rows = self.archive.top_k(dataset.space, fingerprint, objective, k)
        return {
            "query": query_name,
            "space": dataset.space.name,
            "metric": objective.name,
            "direction": objective.direction,
            "count": len(rows),
            "rows": rows,
        }

    # -- thread lifecycle -------------------------------------------------------

    def start(self) -> None:
        """Launch the scheduler thread (idempotent).

        The run queues are rebuilt from scratch — every known non-terminal
        campaign, in id order — so a scheduler stopped by :meth:`shutdown`
        (which drains the queues) resumes deterministically.
        """
        if self._thread is not None and self._thread.is_alive():
            return
        with self._lock:
            self._queues.clear()
            for cid in sorted(self._campaigns):
                campaign = self._campaigns[cid]
                if not campaign.terminal:
                    self._enqueue(campaign)
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="nautilus-scheduler", daemon=True
        )
        self._thread.start()

    def _loop(self) -> None:
        while not self._stop.is_set():
            if not self.tick():
                self._wake.wait(self.poll_interval)
                self._wake.clear()

    def shutdown(self, timeout: float = 10.0) -> None:
        """Graceful, *complete* stop: no queue entries or threads survive.

        Finishes the in-flight generation, joins the scheduler thread (a
        thread that refuses to die raises — leaking it silently would turn
        every later shutdown into a slow drift of zombie threads), drains
        the run queues, closes every live trace sink, and detaches engine
        objects of unfinished campaigns. Checkpoints/statuses are already
        written per generation, so the store stays consistent and
        :meth:`start` / :meth:`recover` resume everything losslessly.

        Raises:
            NautilusError: The scheduler thread did not terminate within
                ``timeout`` seconds.
        """
        self._stop.set()
        self._wake.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout)
            if thread.is_alive():
                raise NautilusError(
                    f"scheduler thread failed to stop within {timeout}s; "
                    "a campaign step is wedged"
                )
            self._thread = None
        with self._lock:
            # Drain the queues: nothing must reference a stopped scheduler.
            self._queues.clear()
            # Close live trace sinks (open fds) and detach the engines that
            # write to them; unfinished campaigns rebuild from their
            # checkpoint on the next start()/recover(), so dropping the
            # in-memory object loses nothing.
            for cid, sink in list(self._sinks.items()):
                sink.close()
                campaign = self._campaigns.get(cid)
                if campaign is not None and not campaign.terminal:
                    campaign.search = None
                    campaign.result = None
            self._sinks.clear()
        self._wake.clear()
