"""Search-as-a-service: run many guided-GA campaigns concurrently.

The paper's premise is that the IP generator searches its own design space
*on behalf of* the IP user. In production that is not one blocking
``run()`` call in a script — it is many users submitting search campaigns
against shared characterization data, a scheduler interleaving their
generations fairly, and an API to poll progress. This subpackage provides
exactly that, on the standard library alone:

* :mod:`~repro.service.campaign` — campaign specs, states, and runtime
  objects built on the engines' incremental ``start()``/``step()`` API;
* :mod:`~repro.service.store` — a crash-safe JSON campaign store reusing
  the :class:`~repro.core.checkpoint.SearchCheckpoint` format, so a killed
  daemon resumes every in-flight campaign without re-paying for
  already-evaluated designs;
* :mod:`~repro.service.scheduler` — a priority-aware round-robin scheduler
  stepping one generation per tick on a shared worker pool;
* :mod:`~repro.service.metrics` — live service counters (evaluation
  throughput, cache hit rate, queue depth), doubling as the daemon's
  :class:`~repro.obs.MetricsRegistry` behind
  ``GET /metrics?format=prometheus``;
* :mod:`~repro.service.http` / :mod:`~repro.service.daemon` — a
  ``ThreadingHTTPServer`` REST API around the scheduler;
* :mod:`~repro.service.client` — a small urllib client used by the
  ``nautilus submit`` / ``nautilus status`` CLI subcommands.
"""

from .campaign import Campaign, CampaignSpec, CampaignState, build_search
from .client import ServiceClient, ServiceError
from .daemon import SearchService
from .metrics import ServiceMetrics
from .scheduler import Scheduler
from .store import CampaignStore

__all__ = [
    "Campaign",
    "CampaignSpec",
    "CampaignState",
    "build_search",
    "CampaignStore",
    "Scheduler",
    "ServiceMetrics",
    "SearchService",
    "ServiceClient",
    "ServiceError",
]
