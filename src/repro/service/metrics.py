"""Live service counters, served by ``GET /metrics``.

The numbers the paper's economics care about, aggregated across every
campaign the daemon has stepped: how many synthesis jobs were paid for
(distinct evaluations), how often the memoization cache saved one (cache
hit rate — the mechanism behind "the GA revisits previously-synthesized
results ... without paying again"), and how fast the evaluation pipeline is
moving (evaluations/sec over a sliding window). Queue depth and per-campaign
generation counts expose scheduler health.

All updates take one lock and are O(1); the scheduler calls
:meth:`ServiceMetrics.record_step` once per generation step.

Besides the JSON snapshot, every instance owns (or shares) a
:class:`~repro.obs.registry.MetricsRegistry` and mirrors the scheduler-
and kernel-level families into it (``nautilus_scheduler_steps_total``,
``nautilus_campaign_states``, ``nautilus_search_generations``,
``nautilus_search_best_score``); the evaluation-stack families
(``nautilus_eval_*``) are published by each campaign's
:class:`~repro.core.EvaluationStack` against the same registry, and
``GET /metrics?format=prometheus`` renders the whole thing.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any

from ..core.evalstack import EvalStats
from ..obs.registry import MetricsRegistry

__all__ = ["ServiceMetrics"]

#: Sliding window for the throughput estimate, seconds.
_WINDOW_S = 60.0


class ServiceMetrics:
    """Thread-safe counters for one service daemon."""

    def __init__(self, clock=time.monotonic, registry: MetricsRegistry | None = None):
        self._clock = clock
        self._lock = threading.Lock()
        self._started_at = clock()
        self._evaluations = 0
        self._requests = 0
        self._cache_hits = 0
        self._persistent_hits = 0
        self._backend_time_s = 0.0
        self._eval_time_s = 0.0
        self._steps = 0
        self._generations: dict[str, int] = {}
        self._campaign_states: dict[str, str] = {}
        #: Per-campaign cumulative evaluation wall time, seconds.
        self._campaign_eval_time: dict[str, float] = {}
        #: Per-campaign cumulative distinct evaluations.
        self._campaign_evaluations: dict[str, int] = {}
        #: Per-campaign {operator: {calls, time_s}} from the engines' traces
        #: (cumulative over each run; replaced wholesale on every step).
        self._campaign_operators: dict[str, dict[str, dict[str, float]]] = {}
        #: Per-campaign latest best internal score / health payload.
        self._campaign_best: dict[str, float] = {}
        self._campaign_health: dict[str, dict[str, Any]] = {}
        # (timestamp, distinct-evaluation delta) samples for the window rate.
        self._samples: deque[tuple[float, int]] = deque()
        #: The Prometheus-style registry this daemon exposes; shared with
        #: every campaign's evaluation stack by the scheduler.
        self.registry = registry or MetricsRegistry()
        self._prom_steps = self.registry.counter(
            "nautilus_scheduler_steps_total",
            "Scheduler generation steps across all campaigns.",
        )
        self._prom_states = self.registry.gauge(
            "nautilus_campaign_states",
            "Number of campaigns currently in each lifecycle state.",
            labelnames=("state",),
        )
        self._prom_generations = self.registry.gauge(
            "nautilus_search_generations",
            "Completed generations per campaign.",
            labelnames=("campaign",),
        )
        self._prom_best = self.registry.gauge(
            "nautilus_search_best_score",
            "Best internal (higher-is-better) score per campaign.",
            labelnames=("campaign",),
        )

    # -- updates ----------------------------------------------------------------

    def record_step(
        self,
        campaign_id: str,
        generations_done: int,
        delta: EvalStats,
        best_score: float | None = None,
        health: dict[str, Any] | None = None,
    ) -> None:
        """Fold one scheduler step's evaluation-stack delta into the counters.

        ``delta`` is ``stack.stats().minus(before)`` for the stepped
        campaign — the scheduler computes it around each generation step.
        ``best_score`` and ``health`` are the kernel's current best and
        latest ``health`` event payload, surfaced by ``nautilus top``.
        """
        now = self._clock()
        with self._lock:
            self._steps += 1
            self._evaluations += delta.distinct
            self._requests += delta.requests
            self._cache_hits += delta.cache_hits
            self._persistent_hits += delta.persistent_hits
            self._backend_time_s += delta.backend_time_s
            self._eval_time_s += delta.wall_time_s
            self._generations[campaign_id] = generations_done
            self._campaign_eval_time[campaign_id] = (
                self._campaign_eval_time.get(campaign_id, 0.0) + delta.wall_time_s
            )
            self._campaign_evaluations[campaign_id] = (
                self._campaign_evaluations.get(campaign_id, 0) + delta.distinct
            )
            if best_score is not None and best_score == best_score:
                self._campaign_best[campaign_id] = best_score
            if health is not None:
                self._campaign_health[campaign_id] = dict(health)
            if delta.distinct:
                self._samples.append((now, delta.distinct))
            self._trim(now)
        self._prom_steps.inc()
        self._prom_generations.set(generations_done, campaign=campaign_id)
        if best_score is not None and best_score == best_score:
            self._prom_best.set(best_score, campaign=campaign_id)

    def record_state(self, campaign_id: str, state: str) -> None:
        with self._lock:
            self._campaign_states[campaign_id] = state
            counts: dict[str, int] = {}
            for value in self._campaign_states.values():
                counts[value] = counts.get(value, 0) + 1
        for name in ("queued", "running", "done", "failed", "cancelled"):
            self._prom_states.set(counts.get(name, 0), state=name)

    def record_operators(
        self, campaign_id: str, timings: dict[str, dict[str, float]]
    ) -> None:
        """Replace a campaign's cumulative per-operator timing snapshot.

        ``timings`` is :meth:`SearchKernel.operator_timings` — already
        cumulative over the run, so the latest snapshot wins.
        """
        with self._lock:
            self._campaign_operators[campaign_id] = {
                operator: dict(entry) for operator, entry in timings.items()
            }

    def _trim(self, now: float) -> None:
        horizon = now - _WINDOW_S
        while self._samples and self._samples[0][0] < horizon:
            self._samples.popleft()

    # -- readout ----------------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """One consistent JSON-ready view of every counter."""
        now = self._clock()
        with self._lock:
            self._trim(now)
            window_evals = sum(delta for __, delta in self._samples)
            if self._samples:
                span = max(now - self._samples[0][0], 1e-9)
                window_rate = window_evals / span
            else:
                window_rate = 0.0
            uptime = max(now - self._started_at, 1e-9)
            states: dict[str, int] = {}
            for state in self._campaign_states.values():
                states[state] = states.get(state, 0) + 1
            operator_time: dict[str, float] = {}
            operator_calls: dict[str, int] = {}
            for timings in self._campaign_operators.values():
                for operator, entry in timings.items():
                    operator_time[operator] = operator_time.get(
                        operator, 0.0
                    ) + float(entry.get("time_s", 0.0))
                    operator_calls[operator] = operator_calls.get(
                        operator, 0
                    ) + int(entry.get("calls", 0))
            return {
                "uptime_s": uptime,
                "scheduler_steps": self._steps,
                "evaluations_total": self._evaluations,
                "evaluation_requests_total": self._requests,
                "cache_hits_total": self._cache_hits,
                "cache_hit_rate": (
                    self._cache_hits / self._requests if self._requests else 0.0
                ),
                "persistent_hits_total": self._persistent_hits,
                "persistent_cache_hit_rate": (
                    self._persistent_hits / self._requests
                    if self._requests
                    else 0.0
                ),
                "eval_time_s": self._eval_time_s,
                "eval_backend_time_s": self._backend_time_s,
                "evaluations_per_sec": window_rate,
                "evaluations_per_sec_lifetime": self._evaluations / uptime,
                "queue_depth": states.get("queued", 0),
                "campaign_states": states,
                "campaign_generations": dict(self._generations),
                "campaign_eval_time_s": dict(self._campaign_eval_time),
                "campaign_evaluations": dict(self._campaign_evaluations),
                "campaign_best_score": dict(self._campaign_best),
                "campaign_health": {
                    cid: dict(payload)
                    for cid, payload in self._campaign_health.items()
                },
                "operator_time_s": operator_time,
                "operator_calls": operator_calls,
                "campaign_operator_time_s": {
                    cid: {
                        operator: float(entry.get("time_s", 0.0))
                        for operator, entry in timings.items()
                    }
                    for cid, timings in self._campaign_operators.items()
                },
            }
