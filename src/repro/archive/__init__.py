"""repro.archive — the cross-campaign design knowledge base.

Every design point any campaign ever evaluated, stored append-only and
queryable (:class:`DesignArchive`), plus the two feedback paths into new
searches: hint mining without a sweep (:class:`ArchiveGuidance`,
:func:`mine_hints`) and warm-started initial populations
(``GAConfig(warm_start=...)`` fed by
:meth:`DesignArchive.warm_start_configs`).
"""

from .guidance import ArchiveGuidance, mine_hints
from .store import ARCHIVE_SCHEMA_VERSION, DesignArchive

__all__ = [
    "ARCHIVE_SCHEMA_VERSION",
    "ArchiveGuidance",
    "DesignArchive",
    "mine_hints",
]
