"""Archive-mined guidance — estimated hints that never pay a sweep.

:class:`~repro.core.guidance.EstimatedHints` implements the paper's
non-expert methodology by *spending* evaluations: an 80-design sweep before
the search proper starts. But a daemon that has already served campaigns on
this (space, evaluator) sits on hundreds of paid-for design points — the
archive. :func:`mine_hints` derives the same three channels from those rows
for free:

* **importance** from the spread of per-parameter mean scores (a parameter
  whose settings separate good from bad designs matters), scaled into the
  paper's 1..100 range with the same formula the sweep estimator uses;
* **bias** from the Spearman rank correlation between a parameter's ordinal
  code and the score, for ordered parameters only (there is no "direction"
  along an unordered axis);
* **target** — the best-region centroid: when the top fraction of archived
  designs cluster tightly on one setting of an ordered parameter that shows
  no monotonic trend, the cluster's rounded mean code becomes a target.

Mining runs against :meth:`Objective.score` — the engine's internal
maximized orientation — so, unlike the sweep estimator (which observes raw
metrics and lets the provider re-orient), the mined hints are already
engine-ready and no ``for_minimization`` flip happens here. The CLI's
``nautilus archive export-hints`` applies the inverse flip before writing a
file, so exported hints read like author hints (bias w.r.t. the raw
metric) and survive the ``submit --hints`` round trip.

:class:`ArchiveGuidance` wraps the miner as a
:class:`~repro.core.guidance.GuidanceProvider` (kind ``"archive"``): lazy
mining on first use, mined hints carried in ``state_dict`` so a checkpoint
resume never re-mines — even if the archive directory has since moved.
"""

from __future__ import annotations

from typing import Any, Mapping, TYPE_CHECKING

from ..core.errors import NautilusError
from ..core.estimation import _pearson, _ranks
from ..core.evalstack import evaluator_fingerprint
from ..core.guidance import (
    HINTS_SCHEMA_VERSION,
    GuidanceProvider,
    GuidanceState,
    hintset_from_json,
    hintset_to_json,
)
from ..core.hints import IMPORTANCE_MAX, IMPORTANCE_MIN, HintSet, ParamHints
from .store import DesignArchive

if TYPE_CHECKING:  # pragma: no cover
    from ..core.fitness import Objective
    from ..core.space import DesignSpace

__all__ = ["ArchiveGuidance", "mine_hints"]


def mine_hints(
    archive: DesignArchive,
    space: "DesignSpace",
    objective: "Objective",
    fingerprint: str,
    *,
    confidence: float = 0.5,
    min_rows: int = 20,
    min_bias: float = 0.2,
    top_fraction: float = 0.25,
) -> tuple[HintSet, int]:
    """Derive a hint set from archived rows; returns ``(hints, rows used)``.

    Below ``min_rows`` feasible rows the result is an empty (neutral) hint
    set — too little history is worse than none, and an empty set keeps the
    engine on its unguided path. Biases are stated w.r.t. the objective's
    internal maximized score; see the module docstring for orientation.
    """
    if min_rows < 1:
        raise NautilusError(f"min_rows must be >= 1, got {min_rows}")
    if not 0.0 < top_fraction <= 1.0:
        raise NautilusError(
            f"top_fraction must be in (0, 1], got {top_fraction}"
        )
    rows = archive.scored_rows(space, fingerprint, objective)
    if len(rows) < min_rows:
        return HintSet({}, confidence=confidence), len(rows)

    codec = space.codec
    scores = [score for __, score, __ in rows]
    spreads: dict[str, float] = {}
    correlations: dict[str, float] = {}
    for pos, name in enumerate(codec.names):
        by_code: dict[int, list[float]] = {}
        for codes, score, __ in rows:
            by_code.setdefault(codes[pos], []).append(score)
        means = [sum(values) / len(values) for values in by_code.values()]
        spreads[name] = max(means) - min(means) if len(means) >= 2 else 0.0
        correlation = 0.0
        if codec.ordered[pos]:
            xs = [codes[pos] for codes, __, __ in rows]
            if len(set(xs)) > 1 and len(set(scores)) > 1:
                correlation = _pearson(_ranks(xs), _ranks(scores))
        correlations[name] = correlation
    max_spread = max(spreads.values(), default=0.0)

    # The best-region rows, deterministically ordered (score desc, then
    # code vector) — the centroid source for target mining.
    top_count = max(3, round(top_fraction * len(rows)))
    top = sorted(rows, key=lambda item: (-item[1], item[0]))[:top_count]

    hints: dict[str, ParamHints] = {}
    for pos, name in enumerate(codec.names):
        if max_spread <= 0.0 or spreads[name] <= 0.0:
            continue
        importance = IMPORTANCE_MIN + round(
            (IMPORTANCE_MAX - IMPORTANCE_MIN) * (spreads[name] / max_spread)
        )
        correlation = correlations[name]
        bias = correlation if abs(correlation) >= min_bias else 0.0
        target = None
        if bias == 0.0 and codec.ordered[pos]:
            # No monotonic trend — but if the best region agrees on a
            # setting (top codes within ~one ordinal step of their mean),
            # point the target channel at the centroid.
            top_codes = [codes[pos] for codes, __, __ in top]
            mean_code = sum(top_codes) / len(top_codes)
            variance = sum((c - mean_code) ** 2 for c in top_codes) / len(
                top_codes
            )
            if variance <= 1.0:
                code = min(
                    max(round(mean_code), 0), codec.cardinalities[pos] - 1
                )
                target = codec.domains[pos][code]
        if (
            importance == ParamHints().importance
            and bias == 0.0
            and target is None
        ):
            continue
        hints[name] = ParamHints(importance=importance, bias=bias, target=target)
    result = HintSet(hints, confidence=confidence)
    result.validate(space)
    return result, len(rows)


class ArchiveGuidance(GuidanceProvider):
    """Guidance mined from the cross-campaign archive (kind ``"archive"``).

    Behaves like :class:`~repro.core.guidance.EstimatedHints` with a zero
    evaluation budget: hints materialize lazily on the first state request,
    from rows other campaigns already paid for. The mined set travels in
    ``state_dict``, so a checkpointed campaign resumes without re-mining —
    and without needing the archive directory at all.
    """

    kind = "archive"

    def __init__(
        self,
        archive: DesignArchive | None = None,
        *,
        root: str | None = None,
        confidence: float = 0.5,
        min_rows: int = 20,
        min_bias: float = 0.2,
        top_fraction: float = 0.25,
    ):
        if archive is None and root is None:
            raise NautilusError(
                "ArchiveGuidance needs a DesignArchive or its root directory"
            )
        if min_rows < 1:
            raise NautilusError(f"min_rows must be >= 1, got {min_rows}")
        if not 0.0 < top_fraction <= 1.0:
            raise NautilusError(
                f"top_fraction must be in (0, 1], got {top_fraction}"
            )
        self._archive = archive
        self.root = str(archive.root) if archive is not None else str(root)
        self.confidence = confidence
        self.min_rows = min_rows
        self.min_bias = min_bias
        self.top_fraction = top_fraction
        self.hints: HintSet | None = None
        #: Archived rows the mining pass consumed (None until it runs).
        self.rows_used: int | None = None
        self._space: "DesignSpace | None" = None
        self._objective: "Objective | None" = None
        self._evaluator: Any = None

    def bind(self, space, objective=None, evaluator=None):
        self._space = space
        self._objective = objective
        self._evaluator = evaluator
        if self.hints is not None:  # restored from a checkpoint
            self.hints.validate(space)
        return self

    def _ensure_mined(self) -> None:
        if self.hints is not None:
            return
        if self._space is None or self._objective is None:
            raise NautilusError(
                "ArchiveGuidance must be bound to a space and objective "
                "before it can mine"
            )
        archive = self._archive
        if archive is None:
            archive = DesignArchive(self.root)
            self._archive = archive
        fingerprint = (
            evaluator_fingerprint(self._evaluator)
            if self._evaluator is not None
            else ""
        )
        self.hints, self.rows_used = mine_hints(
            archive,
            self._space,
            self._objective,
            fingerprint,
            confidence=self.confidence,
            min_rows=self.min_rows,
            min_bias=self.min_bias,
            top_fraction=self.top_fraction,
        )

    def peek(self, generation: int) -> GuidanceState:
        self._ensure_mined()
        return GuidanceState.from_hints(self.hints, generation)

    def state_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "hints": None if self.hints is None else hintset_to_json(self.hints),
            "rows_used": self.rows_used,
        }

    def load_state_dict(self, payload: Mapping[str, Any]) -> None:
        self._check_kind(payload)
        hints = payload.get("hints")
        self.hints = None if hints is None else hintset_from_json(hints)
        self.rows_used = payload.get("rows_used")

    def to_spec(self) -> dict[str, Any]:
        return {
            "schema": HINTS_SCHEMA_VERSION,
            "kind": self.kind,
            "root": self.root,
            "confidence": self.confidence,
            "min_rows": self.min_rows,
            "min_bias": self.min_bias,
            "top_fraction": self.top_fraction,
        }
