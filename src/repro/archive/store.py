"""The cross-campaign design archive — every evaluated point, queryable.

The paper's economics are per-campaign: hints make *one* search cheap. But a
daemon that has served many campaigns has already paid for thousands of
synthesis results, and today each new campaign starts cold. The archive
turns that history into a knowledge base: an append-only, content-addressed
store of every evaluated design point (code-addressable via the space's
:class:`~repro.core.codec.SpaceCodec`), plus an in-memory index answering
the retrieval questions new searches ask:

* top-k designs by an objective (warm-start seeding),
* nearest neighbors in ordinal code space,
* per-parameter marginal statistics (spread / rank correlation — the raw
  material :class:`~repro.archive.guidance.ArchiveGuidance` mines hints
  from),
* the cross-campaign Pareto front over any metric set.

Layout mirrors :class:`~repro.core.evalstack.PersistentCache`: one JSONL
file per (space, evaluator fingerprint) under ``root``, named
``<space>-<sha1(fingerprint)[:12]>.jsonl``. The first line is a
self-describing header; each following line is one design point::

    {"kind": "nautilus-archive", "schema": 1, "space": "router",
     "params": ["topology", ...], "fingerprint": "..."}
    {"values": [..], "metrics": {"fmax_mhz": 612.0, ..}, "campaign": "c3"}
    {"values": [..], "metrics": null, "campaign": "c3"}      # infeasible

Rows are deduplicated by the canonical values key (first writer wins — an
archive row is immutable once recorded, since two evaluators sharing a
fingerprint return identical metrics), and a torn trailing line from a
killed daemon is skipped on load. One lock guards the in-memory slots and
file appends, so every campaign stack of a daemon shares one instance.
"""

from __future__ import annotations

import hashlib
import json
import threading
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence, TYPE_CHECKING

from ..core.errors import EvaluationError, InfeasibleDesignError, NautilusError
from ..core.params import values_key

if TYPE_CHECKING:  # pragma: no cover
    from ..core.fitness import Objective
    from ..core.genome import Genome
    from ..core.space import DesignSpace

__all__ = ["DesignArchive", "ARCHIVE_SCHEMA_VERSION"]

#: Version stamp carried by every archive file header.
ARCHIVE_SCHEMA_VERSION = 1

_KIND = "nautilus-archive"


class _Slot:
    """In-memory index of one (space, fingerprint) archive file."""

    __slots__ = ("params", "rows")

    def __init__(self, params: tuple[str, ...] | None):
        self.params = params
        #: values_key -> {"values": [...], "metrics": {...}|None, "campaign": str}
        self.rows: dict[tuple, dict[str, Any]] = {}


class DesignArchive:
    """Append-only store + retrieval index over all evaluated designs.

    Args:
        root: Directory holding one JSONL file per (space, fingerprint).
        registry: Optional duck-typed metrics registry (a
            :class:`repro.obs.registry.MetricsRegistry` in the daemon);
            when given, appended rows increment the
            ``nautilus_archive_rows_total`` counter.
    """

    def __init__(self, root: str | Path, registry=None):
        self.root = Path(root)
        self._lock = threading.RLock()
        self._slots: dict[tuple[str, str], _Slot] = {}
        self._rows_counter = None
        if registry is not None:
            self._rows_counter = registry.counter(
                "nautilus_archive_rows_total",
                "Design points appended to the cross-campaign archive.",
            )

    # -- file mapping -----------------------------------------------------------

    def _path(self, space_name: str, fingerprint: str) -> Path:
        digest = hashlib.sha1(fingerprint.encode("utf-8")).hexdigest()[:12]
        return self.root / f"{space_name}-{digest}.jsonl"

    def _load(
        self,
        space_name: str,
        fingerprint: str,
        params: Sequence[str] | None = None,
    ) -> _Slot:
        """The in-memory slot for one file, parsing it on first access."""
        key = (space_name, fingerprint)
        slot = self._slots.get(key)
        if slot is not None:
            if params is not None and slot.params is not None and tuple(
                params
            ) != slot.params:
                raise NautilusError(
                    f"archive file for space {space_name!r} indexes parameters "
                    f"{slot.params!r}, not {tuple(params)!r}"
                )
            return slot
        slot = _Slot(tuple(params) if params is not None else None)
        path = self._path(space_name, fingerprint)
        if path.exists():
            with open(path, "r", encoding="utf-8") as fh:
                header: dict | None = None
                for line in fh:
                    try:
                        payload = json.loads(line)
                    except ValueError:
                        continue  # torn trailing line from a killed writer
                    if header is None:
                        header = payload
                        if (
                            header.get("kind") != _KIND
                            or header.get("space") != space_name
                            or header.get("fingerprint") != fingerprint
                        ):
                            raise NautilusError(
                                f"archive file {path} does not match space "
                                f"{space_name!r} / fingerprint {fingerprint!r}"
                            )
                        file_params = tuple(header.get("params", ()))
                        if slot.params is not None and file_params != slot.params:
                            raise NautilusError(
                                f"archive file {path} indexes parameters "
                                f"{file_params!r}, not {slot.params!r}"
                            )
                        slot.params = file_params
                        continue
                    try:
                        row_key = values_key(payload["values"])
                        payload["metrics"]
                    except (KeyError, TypeError):
                        continue  # corrupt row; never poison the index
                    if row_key not in slot.rows:  # first writer wins
                        slot.rows[row_key] = payload
        self._slots[key] = slot
        return slot

    def _append(
        self,
        space_name: str,
        params: Sequence[str],
        fingerprint: str,
        entries: Iterable[tuple[Sequence[Any], dict | None]],
        campaign: str,
    ) -> int:
        """Append ``(values, metrics)`` rows, deduplicated; returns written."""
        slot = self._load(space_name, fingerprint, params)
        if slot.params is None:
            slot.params = tuple(params)
        written = 0
        fh = None
        try:
            for values, metrics in entries:
                row_key = values_key(values)
                if row_key in slot.rows:
                    continue
                if fh is None:
                    path = self._path(space_name, fingerprint)
                    path.parent.mkdir(parents=True, exist_ok=True)
                    fresh = not path.exists()
                    fh = open(path, "a", encoding="utf-8")
                    if fresh:
                        fh.write(
                            json.dumps(
                                {
                                    "kind": _KIND,
                                    "schema": ARCHIVE_SCHEMA_VERSION,
                                    "space": space_name,
                                    "params": list(params),
                                    "fingerprint": fingerprint,
                                }
                            )
                            + "\n"
                        )
                row = {
                    "values": list(row_key),
                    "metrics": metrics,
                    "campaign": campaign,
                }
                slot.rows[row_key] = row
                fh.write(json.dumps(row) + "\n")
                written += 1
            if fh is not None:
                fh.flush()
        finally:
            if fh is not None:
                fh.close()
        if written and self._rows_counter is not None:
            self._rows_counter.inc(written)
        return written

    # -- recording --------------------------------------------------------------

    def record_many(
        self, outcomes, fingerprint: str, campaign: str = ""
    ) -> int:
        """Record ``(genome, outcome)`` pairs; returns rows actually written.

        Mirrors the persistent cache's policy: metrics dicts and
        :class:`~repro.core.errors.InfeasibleDesignError` outcomes are
        archived (the failed synthesis was knowledge too); other exceptions
        are transient and skipped. Already-archived designs are skipped —
        the first campaign to evaluate a point owns its row.
        """
        grouped: dict[str, list[tuple[tuple, dict | None]]] = {}
        params: dict[str, tuple[str, ...]] = {}
        for genome, outcome in outcomes:
            if isinstance(outcome, InfeasibleDesignError):
                metrics = None
            elif isinstance(outcome, Exception):
                continue
            else:
                metrics = dict(outcome)
            space = genome.space
            grouped.setdefault(space.name, []).append((genome.key[1], metrics))
            params[space.name] = space.param_names
        written = 0
        with self._lock:
            for space_name, entries in grouped.items():
                written += self._append(
                    space_name, params[space_name], fingerprint, entries, campaign
                )
        return written

    def record(
        self, genome: "Genome", outcome, fingerprint: str, campaign: str = ""
    ) -> bool:
        """Record one outcome; True when a new row was written."""
        return self.record_many([(genome, outcome)], fingerprint, campaign) == 1

    def import_cache(self, cache_root: str | Path, campaign: str = "import") -> dict:
        """One-shot import of :class:`~repro.core.evalstack.PersistentCache` files.

        Walks ``cache_root`` for cache JSONL files (header:
        ``{"space", "params", "fingerprint"}``), appending every row not
        already archived under ``campaign``. Archive files found there are
        skipped (their header carries a ``kind``), as are torn/corrupt
        lines. Returns ``{"files", "imported", "skipped"}``.
        """
        cache_root = Path(cache_root)
        report = {"files": 0, "imported": 0, "skipped": 0}
        paths = sorted(cache_root.glob("*.jsonl")) if cache_root.exists() else []
        with self._lock:
            for path in paths:
                header: dict | None = None
                entries: list[tuple[list, dict | None]] = []
                with open(path, "r", encoding="utf-8") as fh:
                    for line in fh:
                        try:
                            payload = json.loads(line)
                        except ValueError:
                            continue
                        if header is None:
                            header = payload
                            continue
                        try:
                            values = payload["values"]
                            metrics = payload["metrics"]
                        except (KeyError, TypeError):
                            continue
                        entries.append((values, metrics))
                if (
                    header is None
                    or "kind" in header  # an archive file, not a cache file
                    or not header.get("space")
                    or not header.get("params")
                    or "fingerprint" not in header
                ):
                    continue
                report["files"] += 1
                written = self._append(
                    header["space"],
                    list(header["params"]),
                    header["fingerprint"],
                    entries,
                    campaign,
                )
                report["imported"] += written
                report["skipped"] += len(entries) - written
        return report

    # -- indexed access ----------------------------------------------------------

    def entries(self, space: "DesignSpace", fingerprint: str) -> int:
        """Number of archived rows for one (space, fingerprint)."""
        with self._lock:
            return len(self._load(space.name, fingerprint, space.param_names).rows)

    def _indexed_rows(
        self, space: "DesignSpace", fingerprint: str
    ) -> list[tuple[tuple[int, ...], dict[str, Any]]]:
        """``(codes, row)`` pairs for rows that still decode against ``space``.

        Rows whose values fell out of the live space's domains (the IP
        generator evolved) are silently excluded from queries — they stay
        on disk, but no retrieval path can hand a stale design to a search.
        """
        slot = self._load(space.name, fingerprint, space.param_names)
        codec = space.codec
        index_maps = codec.index_maps
        num_params = codec.num_params
        out = []
        for row_key, row in slot.rows.items():
            if len(row_key) != num_params:
                continue
            codes = []
            for pos, value in enumerate(row_key):
                code = index_maps[pos].get(value)
                if code is None:
                    break
                codes.append(code)
            else:
                out.append((tuple(codes), row))
        return out

    def scored_rows(
        self, space: "DesignSpace", fingerprint: str, objective: "Objective"
    ) -> list[tuple[tuple[int, ...], float, dict[str, Any]]]:
        """Feasible rows as ``(codes, internal score, row)`` triples.

        Scores come from :meth:`Objective.score` — the engine's internal
        maximized orientation — so every consumer (top-k, hint mining)
        ranks consistently regardless of the metric's direction.
        """
        with self._lock:
            indexed = self._indexed_rows(space, fingerprint)
        out = []
        for codes, row in indexed:
            metrics = row["metrics"]
            if metrics is None:
                continue
            try:
                score = objective.score(metrics)
            except (EvaluationError, KeyError, TypeError, ZeroDivisionError):
                continue  # row predates this metric; not comparable
            out.append((codes, score, row))
        return out

    def top_k(
        self,
        space: "DesignSpace",
        fingerprint: str,
        objective: "Objective",
        k: int = 10,
    ) -> list[dict[str, Any]]:
        """The k best archived designs for an objective, best first.

        Ties break on the code vector, so the ranking is deterministic
        across processes and reload orders.
        """
        rows = self.scored_rows(space, fingerprint, objective)
        rows.sort(key=lambda item: (-item[1], item[0]))
        codec = space.codec
        return [
            {
                "config": dict(zip(codec.names, codec.decode(codes))),
                "metrics": dict(row["metrics"]),
                "score": score,
                "raw": objective.raw(row["metrics"]),
                "campaign": row.get("campaign", ""),
            }
            for codes, score, row in rows[: max(k, 0)]
        ]

    def warm_start_configs(
        self,
        space: "DesignSpace",
        fingerprint: str,
        objective: "Objective",
        k: int,
    ) -> list[dict[str, Any]]:
        """Top-k archived configs, best first — ``GAConfig.warm_start`` food."""
        return [entry["config"] for entry in self.top_k(space, fingerprint, objective, k)]

    def nearest(
        self,
        space: "DesignSpace",
        fingerprint: str,
        config: "Mapping[str, Any] | Genome",
        k: int = 5,
    ) -> list[dict[str, Any]]:
        """The k archived rows closest to a design in ordinal code space.

        Distance is L1 over the code vector — one unit per ordinal step,
        the same axis guided mutation moves along.
        """
        if hasattr(config, "codes"):
            target = tuple(config.codes)
        else:
            target = space.genome(dict(config)).codes
        with self._lock:
            indexed = self._indexed_rows(space, fingerprint)
        ranked = sorted(
            (
                (sum(abs(a - b) for a, b in zip(codes, target)), codes, row)
                for codes, row in indexed
            ),
            key=lambda item: (item[0], item[1]),
        )
        codec = space.codec
        return [
            {
                "distance": distance,
                "config": dict(zip(codec.names, codec.decode(codes))),
                "metrics": None if row["metrics"] is None else dict(row["metrics"]),
                "campaign": row.get("campaign", ""),
            }
            for distance, codes, row in ranked[: max(k, 0)]
        ]

    def marginals(
        self, space: "DesignSpace", fingerprint: str, objective: "Objective"
    ) -> dict[str, dict[str, Any]]:
        """Per-parameter marginal statistics over the archived feasible rows.

        For each parameter: how many distinct codes were observed, the
        spread of per-code mean scores (the importance signal), the
        Spearman rank correlation of code vs score for ordered parameters
        (the bias signal), and the best code's decoded value.
        """
        from ..core.estimation import _pearson, _ranks

        rows = self.scored_rows(space, fingerprint, objective)
        codec = space.codec
        scores = [score for __, score, __ in rows]
        result: dict[str, dict[str, Any]] = {}
        for pos, name in enumerate(codec.names):
            by_code: dict[int, list[float]] = {}
            for codes, score, __ in rows:
                by_code.setdefault(codes[pos], []).append(score)
            means = {
                code: sum(values) / len(values) for code, values in by_code.items()
            }
            spread = (
                max(means.values()) - min(means.values()) if len(means) >= 2 else 0.0
            )
            correlation = 0.0
            if codec.ordered[pos] and len(rows) >= 2:
                xs = [codes[pos] for codes, __, __ in rows]
                if len(set(xs)) > 1 and len(set(scores)) > 1:
                    correlation = _pearson(_ranks(xs), _ranks(scores))
            best_code = (
                max(means, key=lambda code: (means[code], -code)) if means else None
            )
            result[name] = {
                "rows": len(rows),
                "codes_observed": len(means),
                "spread": spread,
                "correlation": correlation,
                "best_value": (
                    codec.domains[pos][best_code] if best_code is not None else None
                ),
            }
        return result

    def pareto_front(
        self,
        space: "DesignSpace",
        fingerprint: str,
        metrics: Sequence[str],
        directions: Sequence[str],
    ) -> list[dict[str, Any]]:
        """The cross-campaign non-dominated front over a metric set.

        ``directions`` is ``"max"``/``"min"`` per metric. Rows missing any
        of the metrics are excluded; the front spans every campaign that
        ever touched this (space, fingerprint).
        """
        if len(metrics) != len(directions):
            raise NautilusError("metrics and directions must align")
        signs = [1.0 if direction == "max" else -1.0 for direction in directions]
        with self._lock:
            indexed = self._indexed_rows(space, fingerprint)
        points = []
        for codes, row in indexed:
            values = row["metrics"]
            if values is None:
                continue
            try:
                point = tuple(
                    sign * float(values[name]) for sign, name in zip(signs, metrics)
                )
            except (KeyError, TypeError, ValueError):
                continue
            points.append((point, codes, row))

        def dominates(a: tuple, b: tuple) -> bool:
            return all(x >= y for x, y in zip(a, b)) and any(
                x > y for x, y in zip(a, b)
            )

        front = [
            entry
            for entry in points
            if not any(
                dominates(other[0], entry[0])
                for other in points
                if other is not entry
            )
        ]
        front.sort(key=lambda entry: (tuple(-v for v in entry[0]), entry[1]))
        codec = space.codec
        return [
            {
                "config": dict(zip(codec.names, codec.decode(codes))),
                "metrics": dict(row["metrics"]),
                "campaign": row.get("campaign", ""),
            }
            for __, codes, row in front
        ]

    # -- global readout ----------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """Row/feasibility/campaign counts over every file under ``root``."""
        with self._lock:
            paths = sorted(self.root.glob("*.jsonl")) if self.root.exists() else []
            files = 0
            spaces: dict[str, int] = {}
            campaigns: dict[str, int] = {}
            rows = feasible = infeasible = 0
            for path in paths:
                try:
                    with open(path, "r", encoding="utf-8") as fh:
                        header = json.loads(fh.readline())
                except (OSError, ValueError):
                    continue
                if not isinstance(header, dict) or header.get("kind") != _KIND:
                    continue
                slot = self._load(header["space"], header["fingerprint"])
                files += 1
                for row in slot.rows.values():
                    rows += 1
                    spaces[header["space"]] = spaces.get(header["space"], 0) + 1
                    campaign = row.get("campaign", "")
                    campaigns[campaign] = campaigns.get(campaign, 0) + 1
                    if row["metrics"] is None:
                        infeasible += 1
                    else:
                        feasible += 1
            return {
                "rows": rows,
                "feasible": feasible,
                "infeasible": infeasible,
                "files": files,
                "spaces": spaces,
                "campaigns": campaigns,
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DesignArchive({str(self.root)!r})"
