"""The named optimization queries shared by the CLI and the search service.

A *query* bundles everything needed to run one of the paper's searches
against a bundled dataset: which IP space, which metric and direction, and
which IP-author hint set guides the Nautilus engine. The CLI's ``optimize``
/ ``estimate`` subcommands and the campaign service both resolve specs
through this module, so a campaign submitted over HTTP runs exactly the
search the CLI would.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from .core import NautilusError, Objective, maximize, minimize
from .core.hints import HintSet

if TYPE_CHECKING:  # pragma: no cover
    from .dataset import Dataset

__all__ = [
    "Query",
    "QUERIES",
    "MultiQuery",
    "MULTI_QUERIES",
    "load_dataset",
    "build_hints",
    "resolve_objective",
    "resolve_multi_objectives",
]


@dataclass(frozen=True)
class Query:
    """One named search problem on a bundled dataset."""

    space: str  # dataset key: "noc", "fft" or "fir"
    metric: str
    direction: str  # "max" | "min"
    hint_kind: str  # key into the hint factories


QUERIES: dict[str, Query] = {
    "noc-frequency": Query("noc", "fmax_mhz", "max", "frequency"),
    "noc-area-delay": Query("noc", "area_delay", "min", "area_delay"),
    "fft-luts": Query("fft", "luts", "min", "lut"),
    "fft-throughput-per-lut": Query("fft", "msps_per_lut", "max", "tput"),
    "fir-area": Query("fir", "luts", "min", "fir_area"),
}


@dataclass(frozen=True)
class MultiQuery:
    """One named multi-objective (Pareto) trade-off on a bundled dataset.

    The hint kind guides mutation toward the region of interest (hints are
    authored per metric; the first objective's hints are used, matching the
    record/curve projection of :class:`~repro.core.pareto.ParetoSearch`).
    """

    space: str
    metrics: tuple[str, ...]
    directions: tuple[str, ...]  # "max" | "min", per metric
    hint_kind: str | None


MULTI_QUERIES: dict[str, MultiQuery] = {
    "noc-frequency-vs-area-delay": MultiQuery(
        "noc", ("fmax_mhz", "area_delay"), ("max", "min"), "frequency"
    ),
    "fft-luts-vs-throughput": MultiQuery(
        "fft", ("luts", "msps_per_lut"), ("min", "max"), "lut"
    ),
}


def load_dataset(space_name: str) -> "Dataset":
    """Load (or characterize) the dataset backing a query space."""
    from .dataset import fft_dataset, fir_dataset, router_dataset

    loaders = {"noc": router_dataset, "fir": fir_dataset, "fft": fft_dataset}
    try:
        return loaders[space_name]()
    except KeyError:
        raise NautilusError(f"unknown dataset space {space_name!r}") from None


def build_hints(kind: str, confidence: float | None = None) -> HintSet:
    """Instantiate a query's IP-author hint set, optionally re-weighted.

    Every bundled hint set resolves through the JSON wire format (a
    serialize/deserialize round trip), so a named ``hint_kind`` and an
    inline ``hints`` payload travel the exact same code path — the factories
    cannot produce anything the schema cannot express.
    """
    from .core import hintset_from_json, hintset_to_json
    from .dsp import fir_area_hints
    from .fft import lut_hints, throughput_per_lut_hints
    from .noc import area_delay_hints, frequency_hints

    factories = {
        "frequency": frequency_hints,
        "area_delay": area_delay_hints,
        "lut": lut_hints,
        "tput": throughput_per_lut_hints,
        "fir_area": fir_area_hints,
    }
    try:
        factory = factories[kind]
    except KeyError:
        raise NautilusError(f"unknown hint kind {kind!r}") from None
    authored = factory(confidence) if confidence is not None else factory()
    return hintset_from_json(hintset_to_json(authored))


def resolve_objective(
    query: Query, metric: str | None = None, direction: str | None = None
) -> tuple[Objective, str | None]:
    """The objective for a query, honoring a composite-metric override.

    Returns ``(objective, hint_kind)``; the hint kind is ``None`` when a
    custom metric expression overrides the query default (the bundled hints
    describe the default metric, not arbitrary expressions).
    """
    if metric:
        from .core import objective_from_expression

        return objective_from_expression(metric, direction or query.direction), None
    objective = (
        maximize(query.metric)
        if query.direction == "max"
        else minimize(query.metric)
    )
    return objective, query.hint_kind


def resolve_multi_objectives(
    query: MultiQuery,
) -> tuple[list[Objective], str | None]:
    """The objective list for a multi-objective query: ``(objectives, hint_kind)``."""
    objectives = [
        maximize(metric) if direction == "max" else minimize(metric)
        for metric, direction in zip(query.metrics, query.directions)
    ]
    return objectives, query.hint_kind
