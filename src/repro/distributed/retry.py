"""Fault-tolerance policy: per-task timeouts, bounded retry, backoff.

A fleet task can fail three ways, and the policy treats them differently:

* **The evaluation itself fails** (dataset miss, fingerprint mismatch) —
  the worker reports a structured error outcome. That is a *completed*
  evaluation: deterministic, delivered to the caller as the exception it
  is, never retried (retrying a deterministic failure just pays twice).
* **The worker dies mid-batch** (SIGKILL, network partition, heartbeat
  expiry) — its in-flight tasks are requeued immediately and count one
  attempt. Re-dispatch is delayed by :meth:`RetryPolicy.backoff_s`.
* **A task times out on a live worker** — requeued the same way, counted
  as a retry against that worker.

Backoff is exponential with **deterministic jitter**: the jitter fraction
is derived from a hash of the task id and attempt number, not from any
``random`` state, so fleet scheduling never consumes RNG draws and a
seeded campaign stays bit-identical whether or not its evaluations were
retried (the invariant the whole observability layer is built on).

After :attr:`RetryPolicy.max_attempts` the task surfaces as a structured
campaign error rather than looping forever — exhaustion is an operator
signal (fleet too small, workers flapping), not something to hide.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Timeout/retry/backoff knobs of one coordinator.

    Attributes:
        max_attempts: Dispatch attempts per task before surfacing a
            retry-exhaustion error (first dispatch counts as attempt 1).
        task_timeout_s: How long one dispatched task may stay in flight
            before it is requeued. Sized for the backend: analytical
            evaluators finish in microseconds, real synthesis jobs take
            minutes — tune per deployment.
        backoff_base_s: First re-dispatch delay; doubles per attempt.
        backoff_max_s: Ceiling on the re-dispatch delay.
        jitter: Fraction of the delay randomized (deterministically, per
            task id) to de-synchronize thundering retries.
        heartbeat_interval_s: How often workers announce liveness.
        heartbeat_timeout_s: Heartbeat age after which a worker is
            declared dead and its in-flight tasks are requeued.
    """

    max_attempts: int = 3
    task_timeout_s: float = 60.0
    backoff_base_s: float = 0.05
    backoff_max_s: float = 2.0
    jitter: float = 0.25
    heartbeat_interval_s: float = 1.0
    heartbeat_timeout_s: float = 5.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.task_timeout_s <= 0:
            raise ValueError("task_timeout_s must be > 0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be within [0, 1]")
        if self.heartbeat_timeout_s <= self.heartbeat_interval_s:
            raise ValueError(
                "heartbeat_timeout_s must exceed heartbeat_interval_s"
            )

    def backoff_s(self, attempt: int, key: str = "") -> float:
        """Delay before re-dispatching ``key`` for the given attempt (1-based).

        Exponential in the attempt number, capped, with ±``jitter``/2
        spread derived from ``sha1(key, attempt)`` — stable across runs,
        different across tasks, zero RNG draws.
        """
        base = min(
            self.backoff_base_s * (2 ** max(0, attempt - 1)),
            self.backoff_max_s,
        )
        if not self.jitter:
            return base
        digest = hashlib.sha1(f"{key}:{attempt}".encode()).digest()
        unit = int.from_bytes(digest[:4], "big") / 0xFFFFFFFF  # [0, 1]
        return base * (1.0 + self.jitter * (unit - 0.5))

    def exhausted(self, attempts: int) -> bool:
        return attempts >= self.max_attempts
