"""The coordinator's view of its worker fleet.

A :class:`WorkerRegistry` tracks every connected worker daemon: its
capability tags (which design spaces it can serve), its heartbeat
freshness, its per-worker counters (dispatched / completed / failed /
retried / requeued), and an exponentially-weighted throughput estimate the
dispatcher uses to shard batches proportionally — a worker that completes
tasks twice as fast receives roughly twice the tasks.

The registry is bookkeeping only: it never touches sockets. The
coordinator owns the connections and calls in here under its own lock
discipline (all registry methods take the registry lock, so it is also
safe to snapshot from HTTP handler threads).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

__all__ = ["WorkerInfo", "WorkerRegistry", "plan_shards"]

#: Capability tag meaning "serves every space".
ANY_SPACE = "*"

#: Smoothing factor of the throughput EWMA (per completed batch).
_EWMA_ALPHA = 0.3


@dataclass
class WorkerInfo:
    """Live state of one registered worker daemon."""

    name: str
    spaces: tuple[str, ...] = (ANY_SPACE,)
    slots: int = 1
    connected_at: float = 0.0
    last_heartbeat: float = 0.0
    dispatched: int = 0
    completed: int = 0
    failed: int = 0
    infeasible: int = 0
    retried: int = 0
    requeued: int = 0
    in_flight: int = 0
    #: Tasks/second over recent completed batches (EWMA); 0 = no history.
    throughput: float = 0.0
    #: Why the worker left the registry, once it has ("" while live).
    departed: str = field(default="", repr=False)

    def serves(self, space: str) -> bool:
        return ANY_SPACE in self.spaces or space in self.spaces

    def heartbeat_age(self, now: float) -> float:
        return max(0.0, now - self.last_heartbeat)

    def snapshot(self, now: float) -> dict[str, Any]:
        """JSON-ready view for ``GET /fleet`` and ``nautilus fleet``."""
        return {
            "name": self.name,
            "spaces": list(self.spaces),
            "slots": self.slots,
            "uptime_s": max(0.0, now - self.connected_at),
            "heartbeat_age_s": self.heartbeat_age(now),
            "dispatched": self.dispatched,
            "completed": self.completed,
            "failed": self.failed,
            "infeasible": self.infeasible,
            "retried": self.retried,
            "requeued": self.requeued,
            "in_flight": self.in_flight,
            "throughput_per_s": self.throughput,
        }


class WorkerRegistry:
    """Thread-safe directory of live (and recently departed) workers."""

    def __init__(self, clock=time.monotonic):
        self._clock = clock
        self._lock = threading.Lock()
        self._workers: dict[str, WorkerInfo] = {}
        #: Terminal stats of departed workers, kept for status reporting.
        self._departed: dict[str, WorkerInfo] = {}

    # -- membership -------------------------------------------------------------

    def add(
        self, name: str, spaces: Sequence[str] = (ANY_SPACE,), slots: int = 1
    ) -> WorkerInfo:
        now = self._clock()
        info = WorkerInfo(
            name=name,
            spaces=tuple(spaces) or (ANY_SPACE,),
            slots=max(1, int(slots)),
            connected_at=now,
            last_heartbeat=now,
        )
        with self._lock:
            self._workers[name] = info
            self._departed.pop(name, None)
        return info

    def remove(self, name: str, reason: str = "disconnected") -> WorkerInfo | None:
        """Drop a worker; its counters stay visible in :meth:`snapshot`."""
        with self._lock:
            info = self._workers.pop(name, None)
            if info is not None:
                info.departed = reason
                self._departed[name] = info
            return info

    def get(self, name: str) -> WorkerInfo | None:
        with self._lock:
            return self._workers.get(name)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._workers

    def __len__(self) -> int:
        with self._lock:
            return len(self._workers)

    # -- heartbeats -------------------------------------------------------------

    def touch(self, name: str) -> None:
        with self._lock:
            info = self._workers.get(name)
            if info is not None:
                info.last_heartbeat = self._clock()

    def expired(self, timeout_s: float) -> list[WorkerInfo]:
        """Workers whose heartbeat is older than ``timeout_s`` (not removed)."""
        now = self._clock()
        with self._lock:
            return [
                info
                for info in self._workers.values()
                if info.heartbeat_age(now) > timeout_s
            ]

    # -- capability queries -------------------------------------------------------

    def serving(self, space: str) -> list[WorkerInfo]:
        """Live workers able to serve a space (insertion order)."""
        with self._lock:
            return [w for w in self._workers.values() if w.serves(space)]

    def has_worker_for(self, space: str) -> bool:
        with self._lock:
            return any(w.serves(space) for w in self._workers.values())

    # -- accounting -------------------------------------------------------------

    def record_dispatch(self, name: str, count: int) -> None:
        with self._lock:
            info = self._workers.get(name)
            if info is not None:
                info.dispatched += count
                info.in_flight += count

    def record_completed(
        self, name: str, count: int, elapsed_s: float,
        failed: int = 0, infeasible: int = 0,
    ) -> None:
        """Fold one finished batch into the counters and throughput EWMA."""
        with self._lock:
            info = self._workers.get(name) or self._departed.get(name)
            if info is None:
                return
            info.completed += count
            info.failed += failed
            info.infeasible += infeasible
            info.in_flight = max(0, info.in_flight - count)
            if count and elapsed_s > 0:
                rate = count / elapsed_s
                info.throughput = (
                    rate
                    if info.throughput == 0.0
                    else (1 - _EWMA_ALPHA) * info.throughput + _EWMA_ALPHA * rate
                )

    def record_requeued(self, name: str, count: int, retried: bool = False) -> None:
        """Tasks taken back from a worker (death or per-task timeout)."""
        with self._lock:
            info = self._workers.get(name) or self._departed.get(name)
            if info is None:
                return
            if retried:
                info.retried += count
            else:
                info.requeued += count
            info.in_flight = max(0, info.in_flight - count)

    # -- readout ----------------------------------------------------------------

    def workers(self) -> list[WorkerInfo]:
        with self._lock:
            return list(self._workers.values())

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready registry view: live workers first, then departed."""
        now = self._clock()
        with self._lock:
            live = [w.snapshot(now) for w in self._workers.values()]
            gone = [
                dict(w.snapshot(now), departed=w.departed)
                for w in self._departed.values()
            ]
        return {"workers": live, "departed": gone, "live_workers": len(live)}


def plan_shards(count: int, workers: Iterable[WorkerInfo]) -> dict[str, int]:
    """Split ``count`` tasks across workers proportional to throughput.

    Workers without history (throughput 0) weigh as the mean observed rate
    (or equally when nobody has history), so a fresh worker is neither
    starved nor flooded. Slots scale the weight: a 4-slot worker is assumed
    to move 4× one slot's rate until its own EWMA says otherwise. Every
    live worker receives at least one task while tasks remain — observed
    throughput can only be updated by work.
    """
    pool = list(workers)
    if not pool or count <= 0:
        return {}
    observed = [w.throughput for w in pool if w.throughput > 0]
    default = (sum(observed) / len(observed)) if observed else 1.0
    weights = [
        (w.throughput if w.throughput > 0 else default) * max(1, w.slots)
        for w in pool
    ]
    total = sum(weights)
    shares = [count * weight / total for weight in weights]
    plan = {w.name: int(share) for w, share in zip(pool, shares)}
    # Distribute the rounding remainder by largest fractional part.
    remainder = count - sum(plan.values())
    order = sorted(
        range(len(pool)),
        key=lambda i: shares[i] - int(shares[i]),
        reverse=True,
    )
    for i in order:
        if remainder <= 0:
            break
        plan[pool[i].name] += 1
        remainder -= 1
    # Floor of one task per worker while any remain unassigned elsewhere.
    for i, worker in enumerate(pool):
        if plan[worker.name] == 0:
            donor = max(plan, key=plan.get)
            if plan[donor] > 1:
                plan[donor] -= 1
                plan[worker.name] = 1
    return {name: n for name, n in plan.items() if n > 0}
