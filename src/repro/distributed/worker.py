"""The ``nautilus worker`` daemon: one evaluation node of the fleet.

A worker dials the coordinator (``nautilus worker --connect host:port``),
announces which design spaces it can serve and how many evaluation slots
it has, then loops: receive a batch frame, evaluate every task, send one
result frame back. Liveness is a heartbeat thread; if the worker dies
mid-batch the coordinator requeues the whole batch, and if this process
outlives a presumed death its late results are still honored (or dropped
as duplicates) coordinator-side — the worker never needs to know.

Worker-side failures are *outcomes*, not protocol errors: an unservable
space, a fingerprint mismatch, or an evaluator exception all travel back
as structured error fragments so the coordinator can deliver them to the
campaign (deterministic failures are completed evaluations — retrying
them would just pay twice).
"""

from __future__ import annotations

import logging
import os
import socket
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Sequence

from ..core.evalstack import evaluator_fingerprint
from ..core.genome import Genome
from ..obs.clock import DEFAULT_CLOCK
from .protocol import (
    PROTOCOL_VERSION,
    SUPPORTED_VERSIONS,
    ProtocolError,
    encode_outcome,
    connect_stream,
    read_message,
    send_message,
    values_from_wire,
)

__all__ = ["FleetWorker", "dataset_provider"]

_LOG = logging.getLogger("nautilus.fleet.worker")

#: Dataset aliases served when ``spaces`` is not given.
DEFAULT_SPACES = ("noc", "fft", "fir")


def dataset_provider(alias: str):
    """Default evaluator provider: bundled dataset alias -> (space, evaluator).

    Accepts the query-level aliases (``noc``/``fft``/``fir``) used across
    the CLI; the returned space carries the real space name the worker
    registers as its capability tag.
    """
    from ..core.evaluator import DatasetEvaluator
    from ..queries import load_dataset

    dataset = load_dataset(alias)
    return dataset.space, DatasetEvaluator(dataset)


class _Served:
    """One space this worker can evaluate."""

    __slots__ = ("space", "evaluator", "fingerprint")

    def __init__(self, space, evaluator):
        self.space = space
        self.evaluator = evaluator
        self.fingerprint = evaluator_fingerprint(evaluator)


class FleetWorker:
    """One worker process serving evaluation batches for a coordinator.

    Args:
        host/port: Coordinator address.
        spaces: Aliases understood by ``evaluator_provider`` (defaults to
            every bundled dataset). Capability tags registered with the
            coordinator are the *resolved* space names.
        name: Worker name; defaults to ``<hostname>-<pid>``. The
            coordinator may uniquify it — the welcome frame is
            authoritative.
        slots: Concurrent evaluations per batch (thread pool size).
        evaluator_provider: ``alias -> (DesignSpace, Evaluator)`` hook;
            defaults to the bundled datasets.
        connect_timeout: Dial timeout, seconds.
    """

    def __init__(
        self,
        host: str,
        port: int,
        spaces: Sequence[str] | None = None,
        name: str | None = None,
        slots: int = 1,
        evaluator_provider: Callable[[str], tuple] | None = None,
        connect_timeout: float = 10.0,
    ):
        self._host = host
        self._port = port
        self._connect_timeout = connect_timeout
        self.name = name or f"{socket.gethostname()}-{os.getpid()}"
        self.slots = max(1, int(slots))
        provider = evaluator_provider or dataset_provider
        self._serving: dict[str, _Served] = {}
        for alias in spaces if spaces is not None else DEFAULT_SPACES:
            space, evaluator = provider(alias)
            self._serving[space.name] = _Served(space, evaluator)
        if not self._serving:
            raise ValueError("worker must serve at least one space")
        self._sock: socket.socket | None = None
        self._send_lock = threading.Lock()
        self._stop = threading.Event()
        self.batches_served = 0
        self.tasks_served = 0

    # -- lifecycle --------------------------------------------------------------

    def stop(self) -> None:
        """Tear the connection down; :meth:`run` returns shortly after."""
        self._stop.set()
        sock = self._sock
        if sock is not None:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass

    def run(self) -> None:
        """Connect, register, and serve batches until shutdown/disconnect."""
        sock, rfile = connect_stream(
            self._host, self._port, timeout=self._connect_timeout
        )
        sock.settimeout(None)
        self._sock = sock
        executor = (
            ThreadPoolExecutor(
                max_workers=self.slots, thread_name_prefix="nautilus-worker"
            )
            if self.slots > 1
            else None
        )
        heartbeat: threading.Thread | None = None
        try:
            self._send(
                {
                    "type": "register",
                    "version": PROTOCOL_VERSION,
                    "worker": self.name,
                    "spaces": sorted(self._serving),
                    "slots": self.slots,
                }
            )
            welcome = read_message(rfile)
            if welcome is None or welcome.get("type") != "welcome":
                raise ProtocolError("coordinator did not send a welcome frame")
            if welcome.get("version") not in SUPPORTED_VERSIONS:
                raise ProtocolError(
                    f"protocol version mismatch: coordinator speaks "
                    f"{welcome.get('version')}, worker supports "
                    f"{SUPPORTED_VERSIONS}"
                )
            self.name = welcome.get("worker") or self.name
            interval = float(welcome.get("heartbeat_interval_s") or 1.0)
            heartbeat = threading.Thread(
                target=self._heartbeat_loop,
                args=(interval,),
                name="nautilus-worker-heartbeat",
                daemon=True,
            )
            heartbeat.start()
            _LOG.info(
                "worker registered",
                extra={"worker": self.name, "spaces": sorted(self._serving)},
            )
            while not self._stop.is_set():
                try:
                    message = read_message(rfile)
                except OSError:
                    break
                if message is None:
                    break
                kind = message.get("type")
                if kind == "batch":
                    self._serve_batch(message, executor)
                elif kind == "shutdown":
                    break
        finally:
            self._stop.set()
            rfile.close()
            try:
                sock.close()
            finally:
                self._sock = None
            if heartbeat is not None:
                heartbeat.join(2.0)
            if executor is not None:
                executor.shutdown(wait=True)

    # -- internals --------------------------------------------------------------

    def _send(self, payload: dict[str, Any]) -> None:
        sock = self._sock
        if sock is None:
            raise OSError("worker not connected")
        with self._send_lock:
            send_message(sock, payload)

    def _heartbeat_loop(self, interval: float) -> None:
        while not self._stop.wait(interval):
            try:
                self._send({"type": "heartbeat", "worker": self.name})
            except OSError:
                return

    def _serve_batch(self, message: dict[str, Any], executor) -> None:
        tasks = message.get("tasks") or []
        # Batch receipt time anchors each task's queue wait (time between
        # the batch landing and that task's execution starting) — protocol
        # v2 timing that v1 coordinators simply ignore.
        received_at = DEFAULT_CLOCK()
        if executor is not None:
            results = list(
                executor.map(lambda t: self._run_task(t, received_at), tasks)
            )
        else:
            results = [self._run_task(task, received_at) for task in tasks]
        self.batches_served += 1
        self.tasks_served += len(results)
        frame = {
            "type": "result",
            "batch": message.get("batch"),
            "worker": self.name,
            "results": results,
        }
        # Echo the coordinator's span context so its task spans stitch.
        if message.get("trace") is not None:
            frame["trace"] = message["trace"]
        try:
            self._send(frame)
        except OSError:
            # Connection died with results in hand; the coordinator will
            # requeue the batch — never report half a batch.
            self._stop.set()

    def _run_task(
        self, task: dict[str, Any], received_at: float | None = None
    ) -> dict[str, Any]:
        started = DEFAULT_CLOCK()
        timing = {
            "queue_s": max(started - received_at, 0.0)
            if received_at is not None
            else 0.0,
        }
        served = self._serving.get(task.get("space"))
        if served is None:
            return {
                "id": task.get("id"),
                "error": (
                    f"worker {self.name!r} does not serve space "
                    f"{task.get('space')!r} (serves {sorted(self._serving)})"
                ),
                "error_type": "CapabilityError",
                "exec_s": DEFAULT_CLOCK() - started,
                **timing,
            }
        if served.fingerprint != task.get("fingerprint"):
            return {
                "id": task.get("id"),
                "error": (
                    f"evaluator fingerprint mismatch for space "
                    f"{task.get('space')!r}: coordinator expects "
                    f"{task.get('fingerprint')!r}, worker has "
                    f"{served.fingerprint!r} — dataset versions disagree"
                ),
                "error_type": "FingerprintMismatch",
                "exec_s": DEFAULT_CLOCK() - started,
                **timing,
            }
        try:
            values = values_from_wire(task.get("values") or [])
            genome = Genome(
                served.space, dict(zip(served.space.param_names, values))
            )
            outcome = served.evaluator.evaluate(genome)
        except Exception as exc:  # noqa: BLE001 — every failure is an outcome
            return dict(
                encode_outcome(exc),
                id=task.get("id"),
                exec_s=DEFAULT_CLOCK() - started,
                **timing,
            )
        return dict(
            encode_outcome(outcome),
            id=task.get("id"),
            exec_s=DEFAULT_CLOCK() - started,
            **timing,
        )
