"""FleetBackend — the evaluation stack's bridge onto the worker fleet.

Slots in as the *backend* (tail) layer of an
:class:`~repro.core.evalstack.EvaluationStack`, beneath memoization, the
persistent cache, batching and instrumentation — so every caching layer
and the :class:`~repro.core.evalstack.EvalStats` accounting invariant
behave exactly as they do inline; only the place where a distinct
evaluation is *paid for* moves onto the network.

Graceful degradation is this layer's job: when no live worker can serve
the batch's space (fleet still warming up, or every worker just died) the
batch runs on a local inline backend instead — a campaign never blocks on
an empty fleet, and no evaluation is ever lost. The coordinator hands
back per-task ``FleetUnavailable`` markers for the race where the fleet
empties *after* dispatch, and those tasks are re-run locally too.

Worker attribution for run traces is exposed via :meth:`pop_dispatch_log`
(``{worker_name_or_"local": evaluation_count}`` since the last call),
which the stack surfaces to the kernel's ``eval-batch`` events.

Span tracing rides the same duck-typed seam: a tracing kernel pushes its
eval-batch span context down via :meth:`push_trace_context`; the backend
forwards it to :meth:`FleetCoordinator.submit_batch`, collects the
per-task event timelines the coordinator returns (offsets relative to
submission), and hands them back up via :meth:`pop_task_traces` for the
kernel to anchor as ``task`` spans inside the eval-batch span.
"""

from __future__ import annotations

import threading
from typing import Sequence

from ..core.evalstack import _InlineBackend
from ..core.genome import Genome
from .coordinator import FleetCoordinator
from .protocol import decode_outcome, task_payload

__all__ = ["FleetBackend"]

#: Dispatch-log key for evaluations served by the local fallback.
LOCAL = "local"


class FleetBackend:
    """Dispatch stack batches to a :class:`FleetCoordinator`'s workers."""

    def __init__(self, inner, coordinator: FleetCoordinator, fingerprint: str):
        self.inner = inner
        self._coordinator = coordinator
        self._fingerprint = fingerprint
        self._local = _InlineBackend(inner)
        self._lock = threading.Lock()
        self._dispatch_log: dict[str, int] = {}
        self._trace_ctx: dict | None = None
        self._task_traces: list[dict] = []

    def push_trace_context(self, ctx: dict) -> None:
        """Adopt a span context for the next batch (tracing kernels only)."""
        with self._lock:
            self._trace_ctx = dict(ctx)

    def pop_task_traces(self) -> list[dict]:
        """Per-task event timelines since the last call (then reset)."""
        with self._lock:
            traces, self._task_traces = self._task_traces, []
        return traces

    def evaluate_many(self, genomes: Sequence[Genome]) -> list:
        if not genomes:
            return []
        with self._lock:
            trace_ctx, self._trace_ctx = self._trace_ctx, None
        space = genomes[0].space.name
        if not self._coordinator.has_worker_for(space):
            # Nothing can serve this space right now: degrade to local
            # execution rather than stalling the campaign.
            self._coordinator.note_local_fallback(len(genomes))
            self._log(LOCAL, len(genomes))
            return self._local.evaluate_many(genomes)
        payloads = [task_payload(g, self._fingerprint) for g in genomes]
        outcomes = self._coordinator.submit_batch(payloads, trace=trace_ctx)
        results: list = [None] * len(genomes)
        local_indices: list[int] = []
        for i, payload in enumerate(payloads):
            fragment = outcomes.get(payload["id"], {})
            if fragment.get("error_type") == "FleetUnavailable":
                local_indices.append(i)
                continue
            worker = fragment.get("worker")
            if worker:
                self._log(worker, 1)
            trace = fragment.get("trace")
            if trace is not None:
                with self._lock:
                    self._task_traces.append(trace)
            results[i] = decode_outcome(fragment)
        if local_indices:
            # The fleet emptied between dispatch and service; finish the
            # stragglers locally so the batch still completes in order.
            self._coordinator.note_local_fallback(len(local_indices))
            self._log(LOCAL, len(local_indices))
            local = self._local.evaluate_many([genomes[i] for i in local_indices])
            for i, outcome in zip(local_indices, local):
                results[i] = outcome
        return results

    def pop_dispatch_log(self) -> dict[str, int]:
        """Worker -> evaluation count since the last call (then reset)."""
        with self._lock:
            log, self._dispatch_log = self._dispatch_log, {}
        return log

    def _log(self, worker: str, count: int) -> None:
        with self._lock:
            self._dispatch_log[worker] = (
                self._dispatch_log.get(worker, 0) + count
            )
