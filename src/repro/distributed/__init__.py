"""repro.distributed — the networked, fault-tolerant evaluation fleet.

The paper characterized its design spaces on a synthesis cluster; this
package is that cluster's runtime half. A :class:`FleetCoordinator`
accepts TCP connections from ``nautilus worker`` daemons, shards
evaluation batches across them proportional to observed throughput, and
survives worker death via heartbeats, per-task timeouts and bounded
deterministic-backoff retry. A :class:`FleetBackend` slots the fleet in
as the backend layer of an :class:`~repro.core.EvaluationStack`, keeping
every cache layer and the EvalStats accounting invariant intact.

See ``docs/distributed.md`` for the wire protocol and failure matrix.
"""

from .coordinator import FleetCoordinator
from .fleetbackend import FleetBackend
from .protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    RemoteEvaluationError,
    task_id,
    task_payload,
)
from .registry import WorkerInfo, WorkerRegistry, plan_shards
from .retry import RetryPolicy
from .worker import FleetWorker

__all__ = [
    "PROTOCOL_VERSION",
    "ProtocolError",
    "RemoteEvaluationError",
    "FleetCoordinator",
    "FleetBackend",
    "FleetWorker",
    "RetryPolicy",
    "WorkerInfo",
    "WorkerRegistry",
    "plan_shards",
    "task_id",
    "task_payload",
]
