"""The fleet coordinator: registry + dispatch + fault recovery.

One :class:`FleetCoordinator` owns a TCP listener that worker daemons
(``nautilus worker --connect host:port``) dial into, and exposes exactly
one blocking primitive to the evaluation side: :meth:`submit_batch`, which
the :class:`~repro.distributed.fleetbackend.FleetBackend` calls beneath a
campaign's :class:`~repro.core.EvaluationStack`.

Guarantees (the reason this module exists):

* **No evaluation is lost.** Every submitted task terminates: served by a
  worker, requeued around worker deaths and timeouts up to the retry
  budget, surfaced as a structured error on exhaustion, or handed back as
  *fleet-unavailable* for the caller's local fallback when no live worker
  can serve its space.
* **No evaluation is double-paid.** Tasks are content-addressed
  (:func:`~repro.distributed.protocol.task_id`); concurrent requests for
  the same design coalesce onto one in-flight task, and a late result from
  a worker that was presumed dead completes the task instead of being
  re-paid (the duplicate from the re-dispatch is then dropped and
  counted, never delivered twice).
* **Scheduling consumes zero RNG draws.** Backoff jitter is hash-derived
  (:class:`~repro.distributed.retry.RetryPolicy`), so a seeded campaign's
  results are bit-identical whether its evaluations ran inline, on one
  worker, or were retried across a dying fleet.

Threads: one acceptor, one reader per worker connection, one dispatcher.
All shared state is guarded by a single condition variable; socket sends
happen outside it so a slow worker never stalls bookkeeping.
"""

from __future__ import annotations

import logging
import socket
import threading
from typing import Any, Sequence

from ..obs.clock import DEFAULT_CLOCK
from .protocol import (
    PROTOCOL_VERSION,
    SUPPORTED_VERSIONS,
    ProtocolError,
    read_message,
    send_message,
)
from .registry import WorkerRegistry
from .retry import RetryPolicy

__all__ = ["FleetCoordinator"]

_LOG = logging.getLogger("nautilus.fleet")

#: Dispatcher sweep cadence, seconds (also bounds timeout detection lag).
_POLL_S = 0.02


class _Task:
    """One content-addressed evaluation task inside the coordinator."""

    __slots__ = (
        "id", "space", "fingerprint", "values", "refs", "attempts",
        "state", "worker", "eligible_at", "deadline", "outcome",
        "events", "trace_ctx",
    )

    PENDING = "pending"
    INFLIGHT = "inflight"
    DONE = "done"

    def __init__(self, payload: dict[str, Any]):
        self.id: str = payload["id"]
        self.space: str = payload["space"]
        self.fingerprint: str = payload["fingerprint"]
        self.values = payload["values"]
        self.refs = 0
        self.attempts = 0
        self.state = self.PENDING
        self.worker: str | None = None
        self.eligible_at = 0.0
        self.deadline = 0.0
        self.outcome: dict[str, Any] | None = None
        #: Span-tracing event log (dispatch / retry / done / duplicate),
        #: with absolute coordinator-clock stamps; ``None`` unless a
        #: tracing submitter asked for it (zero overhead otherwise).
        self.events: list[dict[str, Any]] | None = None
        #: Span context of the tracing submitter, forwarded in the batch
        #: frame so v2 workers can echo it back.
        self.trace_ctx: dict[str, Any] | None = None

    def note(self, event: str, worker: str | None, at: float, **extra) -> None:
        if self.events is not None:
            self.events.append(
                {"event": event, "worker": worker or "", "at": at, **extra}
            )

    def wire_payload(self) -> dict[str, Any]:
        return {
            "id": self.id,
            "space": self.space,
            "fingerprint": self.fingerprint,
            "values": self.values,
        }


class _Connection:
    """One worker's socket plus its send serialization lock."""

    def __init__(self, name: str, sock: socket.socket):
        self.name = name
        self.sock = sock
        self.send_lock = threading.Lock()

    def send(self, payload: dict[str, Any]) -> None:
        with self.send_lock:
            send_message(self.sock, payload)

    def close(self) -> None:
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass


class _Batch:
    """Bookkeeping for one dispatched batch (throughput attribution)."""

    __slots__ = ("worker", "task_ids", "sent_at")

    def __init__(self, worker: str, task_ids: set[str], sent_at: float):
        self.worker = worker
        self.task_ids = task_ids
        self.sent_at = sent_at


class _FleetMetrics:
    """Optional per-worker families in a shared MetricsRegistry."""

    def __init__(self, registry):
        self.dispatched = registry.counter(
            "nautilus_fleet_dispatched_total",
            "Tasks dispatched to each worker (re-dispatches included).",
            labelnames=("worker",),
        )
        self.completed = registry.counter(
            "nautilus_fleet_completed_total",
            "Task results delivered by each worker.",
            labelnames=("worker",),
        )
        self.failed = registry.counter(
            "nautilus_fleet_failed_total",
            "Structured evaluation errors reported by each worker.",
            labelnames=("worker",),
        )
        self.retried = registry.counter(
            "nautilus_fleet_retried_total",
            "Tasks requeued after timing out on a live worker.",
            labelnames=("worker",),
        )
        self.requeued = registry.counter(
            "nautilus_fleet_requeued_total",
            "In-flight tasks requeued because their worker died.",
            labelnames=("worker",),
        )
        self.task_seconds = registry.histogram(
            "nautilus_fleet_batch_seconds",
            "Round-trip time of one dispatched batch per worker.",
            labelnames=("worker",),
        )
        self.heartbeat_age = registry.gauge(
            "nautilus_fleet_heartbeat_age_seconds",
            "Seconds since each live worker's last heartbeat.",
            labelnames=("worker",),
        )
        self.workers = registry.gauge(
            "nautilus_fleet_workers", "Live workers in the fleet registry."
        )
        self.queue_depth = registry.gauge(
            "nautilus_fleet_queue_depth",
            "Tasks waiting for dispatch (pending, incl. backoff delays).",
        )
        self.exhausted = registry.counter(
            "nautilus_fleet_retry_exhausted_total",
            "Tasks that failed every attempt of the retry budget.",
        )
        self.duplicates = registry.counter(
            "nautilus_fleet_duplicate_results_total",
            "Late results dropped because the task was already served.",
        )
        self.fallback = registry.counter(
            "nautilus_fleet_local_fallback_total",
            "Evaluations served by the local backend (fleet unavailable).",
        )

    def remove_worker(self, name: str) -> None:
        """Drop every per-worker label set when a worker leaves the fleet.

        Without this, a long-lived daemon's ``/metrics`` page accretes one
        series per worker that ever registered — the heartbeat-age gauge
        most visibly, since it is only ever *set* for live workers.
        """
        for family in (
            self.dispatched, self.completed, self.failed, self.retried,
            self.requeued, self.task_seconds, self.heartbeat_age,
        ):
            family.remove(worker=name)


class FleetCoordinator:
    """TCP coordinator for a fleet of ``nautilus worker`` daemons.

    Args:
        host/port: Listener address; ``port=0`` binds ephemeral
            (``coordinator.port`` reports the real one).
        policy: Timeout/retry/backoff knobs (:class:`RetryPolicy`).
        registry: Optional :class:`repro.obs.MetricsRegistry`; per-worker
            fleet families (``nautilus_fleet_*``) are published there and
            served by the daemon's ``/metrics`` endpoint.
        clock: Injectable monotonic clock (tests).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        policy: RetryPolicy | None = None,
        registry=None,
        clock=None,
    ):
        self.policy = policy or RetryPolicy()
        clock = clock if clock is not None else DEFAULT_CLOCK
        self.workers = WorkerRegistry(clock=clock)
        self._clock = clock
        self._metrics = _FleetMetrics(registry) if registry is not None else None
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._tasks: dict[str, _Task] = {}
        self._conns: dict[str, _Connection] = {}
        self._batches: dict[int, _Batch] = {}
        self._next_batch = 0
        self._name_seq = 0
        self._stopped = False
        #: Aggregate counters surfaced by :meth:`status`.
        self._totals = {
            "dispatched": 0, "completed": 0, "failed": 0, "requeued": 0,
            "retried": 0, "exhausted": 0, "duplicate_results": 0,
            "unavailable": 0, "local_fallback": 0,
        }
        self._server = socket.create_server((host, port), reuse_port=False)
        self._server.settimeout(0.2)
        self._threads: list[threading.Thread] = []
        self._reader_threads: dict[str, threading.Thread] = {}

    # -- lifecycle --------------------------------------------------------------

    @property
    def host(self) -> str:
        return self._server.getsockname()[0]

    @property
    def port(self) -> int:
        return self._server.getsockname()[1]

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def start(self) -> "FleetCoordinator":
        acceptor = threading.Thread(
            target=self._accept_loop, name="nautilus-fleet-accept", daemon=True
        )
        dispatcher = threading.Thread(
            target=self._dispatch_loop, name="nautilus-fleet-dispatch", daemon=True
        )
        self._threads = [acceptor, dispatcher]
        acceptor.start()
        dispatcher.start()
        return self

    def stop(self) -> None:
        """Stop serving: fail live tasks, close every socket, join threads."""
        with self._cond:
            if self._stopped:
                return
            self._stopped = True
            for task in self._tasks.values():
                if task.state != _Task.DONE:
                    task.state = _Task.DONE
                    task.outcome = {
                        "error": "fleet coordinator stopped",
                        "error_type": "CoordinatorStopped",
                    }
            conns = list(self._conns.values())
            self._conns.clear()
            self._batches.clear()
            self._cond.notify_all()
        for conn in conns:
            try:
                conn.send({"type": "shutdown"})
            except OSError:
                pass
            conn.close()
        self._server.close()
        for thread in self._threads:
            thread.join(5.0)
        for thread in list(self._reader_threads.values()):
            thread.join(5.0)
        self._threads = []
        self._reader_threads = {}

    # -- the evaluation-side primitive -------------------------------------------

    def has_worker_for(self, space: str) -> bool:
        """Whether any live worker can serve a space (fast, lock-light)."""
        return self.workers.has_worker_for(space)

    def submit_batch(
        self,
        tasks: Sequence[dict[str, Any]],
        trace: dict[str, Any] | None = None,
    ) -> dict[str, dict[str, Any]]:
        """Dispatch tasks to the fleet; block until each has an outcome.

        ``tasks`` are :func:`~repro.distributed.protocol.task_payload`
        dicts. Returns ``{task_id: outcome-payload}`` where each payload is
        an :func:`~repro.distributed.protocol.encode_outcome` fragment plus
        ``"worker"`` attribution — or ``{"error_type": "FleetUnavailable"}``
        for tasks no live worker could serve (the caller evaluates those
        locally). Termination is bounded by the retry policy: every task
        either completes, exhausts its attempts, or goes unavailable.

        ``trace`` is an optional span context (``{"trace": ..., "parent":
        ...}``) from a tracing caller. It turns on the per-task event log
        (dispatches, retries, completion, dropped duplicates) and rides
        the batch frames to v2 workers; each returned outcome then carries
        a ``"trace"`` payload whose event times are *offsets in seconds
        relative to this submission* — the caller anchors them inside its
        own eval-batch span, so coordinator and campaign clocks never need
        a shared epoch.
        """
        if not tasks:
            return {}
        ids: list[str] = []
        submitted_at = self._clock()
        with self._cond:
            if self._stopped:
                return {
                    payload["id"]: {
                        "error": "fleet coordinator stopped",
                        "error_type": "CoordinatorStopped",
                    }
                    for payload in tasks
                }
            for payload in tasks:
                task = self._tasks.get(payload["id"])
                if task is None:
                    task = _Task(payload)
                    self._tasks[task.id] = task
                if trace is not None:
                    if task.events is None:
                        task.events = []
                    task.trace_ctx = dict(trace)
                task.refs += 1
                ids.append(task.id)
            self._cond.notify_all()
            self._cond.wait_for(
                lambda: all(self._tasks[i].state == _Task.DONE for i in ids)
            )
            outcomes: dict[str, dict[str, Any]] = {}
            for task_id in ids:
                task = self._tasks[task_id]
                outcomes[task_id] = dict(task.outcome or {})
                if trace is not None and task.events is not None:
                    outcomes[task_id]["trace"] = self._trace_payload(
                        task, submitted_at
                    )
                task.refs -= 1
                if task.refs <= 0:
                    del self._tasks[task_id]
            return outcomes

    @staticmethod
    def _trace_payload(task: _Task, submitted_at: float) -> dict[str, Any]:
        """One task's event log as submission-relative offsets (lock held)."""
        events = []
        for event in sorted(task.events or (), key=lambda e: e["at"]):
            entry = {k: v for k, v in event.items() if k != "at"}
            entry["offset_s"] = max(event["at"] - submitted_at, 0.0)
            events.append(entry)
        outcome = task.outcome or {}
        return {
            "task": task.id,
            "worker": outcome.get("worker", ""),
            "attempts": task.attempts,
            "duplicates": sum(
                1 for e in events if e["event"] == "duplicate-result"
            ),
            "events": events,
        }

    def note_local_fallback(self, count: int) -> None:
        """Record evaluations a backend served locally (fleet empty)."""
        with self._lock:
            self._totals["local_fallback"] += count
        if self._metrics is not None:
            self._metrics.fallback.inc(count)

    # -- status -----------------------------------------------------------------

    def status(self) -> dict[str, Any]:
        """JSON-ready fleet snapshot for ``GET /fleet`` / ``nautilus fleet``."""
        with self._lock:
            pending = sum(
                1 for t in self._tasks.values() if t.state == _Task.PENDING
            )
            in_flight = sum(
                1 for t in self._tasks.values() if t.state == _Task.INFLIGHT
            )
            totals = dict(self._totals)
        snapshot = self.workers.snapshot()
        if self._metrics is not None:
            self._metrics.workers.set(snapshot["live_workers"])
            self._metrics.queue_depth.set(pending)
            now = self._clock()
            for info in self.workers.workers():
                self._metrics.heartbeat_age.set(
                    info.heartbeat_age(now), worker=info.name
                )
        return {
            "enabled": True,
            "address": self.address,
            "queue_depth": pending,
            "in_flight": in_flight,
            "totals": totals,
            "policy": {
                "max_attempts": self.policy.max_attempts,
                "task_timeout_s": self.policy.task_timeout_s,
                "heartbeat_timeout_s": self.policy.heartbeat_timeout_s,
            },
            **snapshot,
        }

    # -- acceptor + per-worker readers -------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stopped:
            try:
                sock, _addr = self._server.accept()
            except socket.timeout:
                continue
            except OSError:
                return  # listener closed by stop()
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            thread = threading.Thread(
                target=self._serve_connection,
                args=(sock,),
                name="nautilus-fleet-conn",
                daemon=True,
            )
            thread.start()

    def _serve_connection(self, sock: socket.socket) -> None:
        rfile = sock.makefile("rb")
        name = None
        try:
            hello = read_message(rfile)
            if (
                hello is None
                or hello.get("type") != "register"
                or hello.get("version") not in SUPPORTED_VERSIONS
            ):
                sock.close()
                return
            name = self._register(hello, sock)
            if name is None:
                sock.close()
                return
            self._reader_threads[name] = threading.current_thread()
            while True:
                message = read_message(rfile)
                if message is None:
                    break
                kind = message.get("type")
                if kind == "heartbeat":
                    self.workers.touch(name)
                elif kind == "result":
                    self._apply_results(name, message)
        except (OSError, ProtocolError):
            pass
        finally:
            rfile.close()
            if name is not None:
                self._drop_worker(name, "disconnected")
                self._reader_threads.pop(name, None)
            else:
                sock.close()

    def _register(self, hello: dict[str, Any], sock: socket.socket) -> str | None:
        base = str(hello.get("worker") or "worker")
        with self._cond:
            if self._stopped:
                return None
            name = base
            while name in self._conns:
                self._name_seq += 1
                name = f"{base}-{self._name_seq}"
            conn = _Connection(name, sock)
            self._conns[name] = conn
        self.workers.add(
            name,
            spaces=tuple(hello.get("spaces") or ("*",)),
            slots=int(hello.get("slots") or 1),
        )
        try:
            conn.send(
                {
                    "type": "welcome",
                    "version": PROTOCOL_VERSION,
                    "worker": name,
                    "heartbeat_interval_s": self.policy.heartbeat_interval_s,
                }
            )
        except OSError:
            self._drop_worker(name, "handshake-failed")
            return None
        _LOG.info(
            "fleet worker joined",
            extra={"worker": name, "spaces": hello.get("spaces")},
        )
        with self._cond:
            self._cond.notify_all()  # wake the dispatcher: capacity changed
        return name

    # -- result handling ---------------------------------------------------------

    def _apply_results(self, worker: str, message: dict[str, Any]) -> None:
        batch_id = message.get("batch")
        results = message.get("results") or []
        completed = failed = infeasible = duplicates = 0
        with self._cond:
            now = self._clock()
            batch = self._batches.pop(batch_id, None)
            elapsed = (
                max(now - batch.sent_at, 1e-9) if batch is not None else 0.0
            )
            for payload in results:
                task = self._tasks.get(payload.get("id"))
                if task is None or task.state == _Task.DONE:
                    duplicates += 1
                    if task is not None:
                        # Attributed to the one owning task span — a late
                        # answer from a presumed-dead worker, not a new task.
                        task.note("duplicate-result", worker, now)
                    continue
                # First result wins, even if the task was requeued in the
                # meantime (a presumed-dead worker answering late): the
                # evaluation was paid for once — deliver it, and let the
                # re-dispatch land here as a dropped duplicate instead.
                task.state = _Task.DONE
                task.outcome = dict(payload, worker=worker)
                task.worker = None
                task.note(
                    "done",
                    worker,
                    now,
                    exec_s=float(payload.get("exec_s") or 0.0),
                    queue_s=float(payload.get("queue_s") or 0.0),
                )
                completed += 1
                if payload.get("error") is not None:
                    failed += 1
                elif payload.get("metrics") is None:
                    infeasible += 1
            self._totals["completed"] += completed
            self._totals["failed"] += failed
            self._totals["duplicate_results"] += duplicates
            self._cond.notify_all()
        self.workers.record_completed(
            worker, completed, elapsed, failed=failed, infeasible=infeasible
        )
        if self._metrics is not None:
            if completed:
                self._metrics.completed.inc(completed, worker=worker)
            if failed:
                self._metrics.failed.inc(failed, worker=worker)
            if duplicates:
                self._metrics.duplicates.inc(duplicates)
            if batch is not None:
                self._metrics.task_seconds.observe(elapsed, worker=worker)

    # -- worker failure ----------------------------------------------------------

    def _drop_worker(self, name: str, reason: str) -> None:
        with self._cond:
            conn = self._conns.pop(name, None)
            if conn is None:
                return  # lost the race against another dropper: already gone
            # Remove from the registry before closing the socket: closing
            # wakes the connection's reader thread, whose own drop attempt
            # must find nothing left to do (else it would overwrite the
            # real departure reason with "disconnected").
            self.workers.remove(name, reason=reason)
            requeued = self._requeue_worker_tasks(name, retried=False)
            self._cond.notify_all()
        conn.close()
        _LOG.warning(
            "fleet worker left",
            extra={"worker": name, "reason": reason, "requeued": requeued},
        )
        if self._metrics is not None:
            if requeued:
                self._metrics.requeued.inc(requeued, worker=name)
            # Departed workers must not leak label sets into /metrics.
            self._metrics.remove_worker(name)
        self.workers.record_requeued(name, requeued, retried=False)

    def _requeue_worker_tasks(self, name: str, retried: bool) -> int:
        """Requeue (or exhaust) a worker's in-flight tasks. Lock held."""
        now = self._clock()
        count = 0
        for task in self._tasks.values():
            if task.state != _Task.INFLIGHT or task.worker != name:
                continue
            count += 1
            task.worker = None
            task.note("retry", name, now, reason="worker-died")
            if self.policy.exhausted(task.attempts):
                task.state = _Task.DONE
                task.outcome = {
                    "error": (
                        f"task {task.id[:12]} (space {task.space!r}) failed "
                        f"after {task.attempts} attempts: retry budget "
                        "exhausted (workers died or timed out)"
                    ),
                    "error_type": "RetryExhausted",
                }
                self._totals["exhausted"] += 1
                if self._metrics is not None:
                    self._metrics.exhausted.inc()
            else:
                task.state = _Task.PENDING
                task.eligible_at = now + self.policy.backoff_s(
                    task.attempts, key=task.id
                )
        key = "retried" if retried else "requeued"
        self._totals[key] += count
        # Forget batch records that pointed at this worker; late results
        # are still accepted per task via the first-result-wins rule.
        if not retried:
            stale = [
                bid for bid, b in self._batches.items() if b.worker == name
            ]
            for bid in stale:
                del self._batches[bid]
        return count

    # -- the dispatcher -----------------------------------------------------------

    def _dispatch_loop(self) -> None:
        while True:
            with self._cond:
                if self._stopped:
                    return
                self._cond.wait(_POLL_S)
                if self._stopped:
                    return
            self._sweep_heartbeats()
            self._sweep_timeouts()
            self._dispatch_pending()

    def _sweep_heartbeats(self) -> None:
        for info in self.workers.expired(self.policy.heartbeat_timeout_s):
            self._drop_worker(info.name, "heartbeat-expired")

    def _sweep_timeouts(self) -> None:
        now = self._clock()
        timed_out: dict[str, int] = {}
        with self._cond:
            by_worker: dict[str, list[_Task]] = {}
            for task in self._tasks.values():
                if task.state == _Task.INFLIGHT and now > task.deadline:
                    by_worker.setdefault(task.worker, []).append(task)
            # The worker stays registered — it may simply be slow; only its
            # overdue tasks move on (and a late answer still wins the race).
            for name, tasks in by_worker.items():
                timed_out[name] = self._requeue_tasks(tasks, name)
            if timed_out:
                self._cond.notify_all()
        for name, count in timed_out.items():
            self.workers.record_requeued(name, count, retried=True)
            if self._metrics is not None and count:
                self._metrics.retried.inc(count, worker=name)

    def _requeue_tasks(self, tasks: list[_Task], name: str) -> int:
        """Timeout-requeue of specific tasks (lock held)."""
        now = self._clock()
        count = 0
        for task in tasks:
            if task.state != _Task.INFLIGHT or task.worker != name:
                continue
            count += 1
            task.worker = None
            task.note("retry", name, now, reason="timeout")
            if self.policy.exhausted(task.attempts):
                task.state = _Task.DONE
                task.outcome = {
                    "error": (
                        f"task {task.id[:12]} (space {task.space!r}) timed "
                        f"out after {task.attempts} attempts "
                        f"({self.policy.task_timeout_s}s per attempt)"
                    ),
                    "error_type": "RetryExhausted",
                }
                self._totals["exhausted"] += 1
                if self._metrics is not None:
                    self._metrics.exhausted.inc()
            else:
                task.state = _Task.PENDING
                task.eligible_at = now + self.policy.backoff_s(
                    task.attempts, key=task.id
                )
        self._totals["retried"] += count
        return count

    def _dispatch_pending(self) -> None:
        """Assign eligible pending tasks to live workers, shard-by-rate."""
        from .registry import plan_shards

        now = self._clock()
        sends: list[tuple[_Connection, dict[str, Any]]] = []
        marked_unavailable = False
        with self._cond:
            by_space: dict[str, list[_Task]] = {}
            for task in self._tasks.values():
                if task.state == _Task.PENDING and now >= task.eligible_at:
                    by_space.setdefault(task.space, []).append(task)
            if not by_space:
                return
            for space, tasks in by_space.items():
                serving = [
                    info
                    for info in self.workers.serving(space)
                    if info.name in self._conns
                ]
                if not serving:
                    # Graceful degradation: nobody can run these — hand
                    # them back for the caller's local backend.
                    for task in tasks:
                        task.state = _Task.DONE
                        task.outcome = {"error_type": "FleetUnavailable"}
                    self._totals["unavailable"] += len(tasks)
                    marked_unavailable = True
                    continue
                plan = plan_shards(len(tasks), serving)
                cursor = 0
                for info in serving:
                    share = plan.get(info.name, 0)
                    if share <= 0:
                        continue
                    shard = tasks[cursor : cursor + share]
                    cursor += share
                    if not shard:
                        continue
                    self._next_batch += 1
                    batch_id = self._next_batch
                    trace_ctx = None
                    for task in shard:
                        task.state = _Task.INFLIGHT
                        task.worker = info.name
                        task.attempts += 1
                        task.deadline = now + self.policy.task_timeout_s
                        task.note("dispatch", info.name, now)
                        if trace_ctx is None and task.trace_ctx is not None:
                            trace_ctx = task.trace_ctx
                    self._batches[batch_id] = _Batch(
                        info.name, {t.id for t in shard}, now
                    )
                    self._totals["dispatched"] += len(shard)
                    frame = {
                        "type": "batch",
                        "batch": batch_id,
                        "tasks": [t.wire_payload() for t in shard],
                    }
                    # Span context rides to v2 workers (v1 workers ignore
                    # unknown keys; the batch still serves).
                    if trace_ctx is not None:
                        frame["trace"] = trace_ctx
                    sends.append((self._conns[info.name], frame))
            if sends or marked_unavailable:
                self._cond.notify_all()
        for conn, frame in sends:
            self.workers.record_dispatch(conn.name, len(frame["tasks"]))
            if self._metrics is not None:
                self._metrics.dispatched.inc(
                    len(frame["tasks"]), worker=conn.name
                )
            try:
                conn.send(frame)
            except OSError:
                self._drop_worker(conn.name, "send-failed")
