"""Wire protocol of the evaluation fleet (stdlib TCP + JSON lines).

The paper's evaluation burned weeks of cluster time on synthesis jobs; the
fleet exists to spread that cost over many machines without pulling in any
networking dependency. Everything on the wire is a single JSON object per
line ("JSON lines") over a plain TCP socket, so a worker can be driven by
``telnet`` for debugging and every frame is greppable in a packet capture.

Frames (``type`` discriminates; unknown keys are ignored for forward
compatibility)::

    worker -> coordinator
      {"type": "register", "version": 2, "worker": "w1",
       "spaces": ["noc"], "slots": 2}
      {"type": "heartbeat", "worker": "w1"}
      {"type": "result", "batch": 7,
       "results": [{"id": "...", "metrics": {...}},
                   {"id": "...", "metrics": null, "detail": "infeasible"},
                   {"id": "...", "error": "...", "error_type": "DatasetError"}]}

    coordinator -> worker
      {"type": "welcome", "version": 2, "heartbeat_interval_s": 1.0}
      {"type": "batch", "batch": 7,
       "tasks": [{"id": "...", "space": "noc_router",
                  "fingerprint": "dataset:...", "values": [2, 4, ...]}]}
      {"type": "shutdown"}

Version 2 (tracing) extends version 1 without breaking it. A ``batch``
frame may carry a span context (``"trace": {"trace": "...", "parent":
"..."}``) which version-2 workers echo back in the ``result`` frame, and
each result fragment may add worker-side timing (``"queue_s"``: seconds
the task sat between batch receipt and execution start; ``"exec_s"``:
execution wall seconds). Because unknown keys are ignored, v1 workers
serve v2 coordinators (no timing, spans degrade gracefully) and vice
versa; both sides accept any version in :data:`SUPPORTED_VERSIONS`.

Task identity is **content-addressed**: :func:`task_id` hashes the space
name, the evaluator fingerprint, and the genome's canonical value vector —
the same identity scheme as :class:`repro.core.PersistentCache` rows. Two
campaigns asking for the same design under the same evaluator produce the
same task id, which is what lets the coordinator deduplicate concurrent
requests and guarantee a re-dispatched task is never paid for twice.

Outcome encoding mirrors the persistent cache: ``"metrics": null`` is an
infeasible design (a *completed* evaluation — replaying it must fail the
same way, and it is never retried), while ``"error"`` carries a
non-infeasibility evaluation failure verbatim.
"""

from __future__ import annotations

import hashlib
import json
import socket
from typing import Any, IO, Sequence

from ..core.errors import InfeasibleDesignError
from ..core.genome import Genome

__all__ = [
    "PROTOCOL_VERSION",
    "SUPPORTED_VERSIONS",
    "ProtocolError",
    "RemoteEvaluationError",
    "task_id",
    "task_payload",
    "values_from_wire",
    "encode_outcome",
    "decode_outcome",
    "send_message",
    "read_message",
    "connect_stream",
]

PROTOCOL_VERSION = 2

#: Peer versions both sides still serve. Version 1 predates span tracing:
#: a v1 peer neither sends nor expects trace context or task timing, and
#: the extra v2 keys ride through its unknown-key tolerance.
SUPPORTED_VERSIONS = (1, 2)

#: Cap on one frame, bytes. A batch of a few hundred tasks is ~100 KB; a
#: frame beyond this is a protocol violation, not a big batch.
MAX_FRAME_BYTES = 16 * 1024 * 1024


class ProtocolError(Exception):
    """A malformed or oversized frame, or a version mismatch."""


class RemoteEvaluationError(Exception):
    """An evaluation failed on a remote worker (non-infeasibility).

    Deliberately *not* a :class:`~repro.core.NautilusError` subclass of the
    infeasible kind: engines score infeasible designs as ``-inf`` but
    propagate other evaluation errors, failing the campaign with a
    structured error message — exactly what a deterministic worker-side
    failure (bad dataset, fingerprint mismatch) should do.
    """


# ---------------------------------------------------------------------------
# task identity
# ---------------------------------------------------------------------------


def _canonical_values(values: Sequence[Any]) -> list:
    """Genome values as they travel in JSON (tuples become lists)."""
    return [list(v) if isinstance(v, tuple) else v for v in values]


def task_id(space_name: str, fingerprint: str, values: Sequence[Any]) -> str:
    """Content-addressed identity of one evaluation task.

    Same design + same evaluator content => same id, across processes and
    coordinators. The hash input is canonical JSON so tuple/list framing
    differences never split an identity.
    """
    body = json.dumps(
        [space_name, fingerprint, _canonical_values(values)],
        separators=(",", ":"),
    )
    return hashlib.sha1(body.encode("utf-8")).hexdigest()


def task_payload(genome: Genome, fingerprint: str) -> dict[str, Any]:
    """The wire representation of one evaluation task."""
    values = genome.key[1]
    return {
        "id": task_id(genome.space.name, fingerprint, values),
        "space": genome.space.name,
        "fingerprint": fingerprint,
        "values": _canonical_values(values),
    }


def values_from_wire(values: Sequence[Any]) -> list:
    """Undo the JSON round-trip: nested lists back to tuples."""
    return [tuple(v) if isinstance(v, list) else v for v in values]


# ---------------------------------------------------------------------------
# outcome encoding
# ---------------------------------------------------------------------------


def encode_outcome(outcome: Any) -> dict[str, Any]:
    """One evaluation outcome as a JSON fragment (see module docstring)."""
    if isinstance(outcome, InfeasibleDesignError):
        return {"metrics": None, "detail": str(outcome)}
    if isinstance(outcome, Exception):
        return {"error": str(outcome), "error_type": type(outcome).__name__}
    return {"metrics": dict(outcome)}


def decode_outcome(payload: dict[str, Any]) -> Any:
    """The local outcome for a wire fragment: metrics dict or exception."""
    if payload.get("error") is not None:
        return RemoteEvaluationError(
            f"{payload.get('error_type', 'Error')}: {payload['error']}"
            + (
                f" (worker {payload['worker']})"
                if payload.get("worker")
                else ""
            )
        )
    metrics = payload.get("metrics")
    if metrics is None:
        return InfeasibleDesignError(
            payload.get("detail") or "design reported infeasible by the fleet"
        )
    return dict(metrics)


# ---------------------------------------------------------------------------
# framing
# ---------------------------------------------------------------------------


def send_message(sock: socket.socket, payload: dict[str, Any]) -> None:
    """Write one JSON-lines frame; callers serialize sends per socket."""
    sock.sendall(json.dumps(payload, separators=(",", ":")).encode() + b"\n")


def read_message(rfile: IO[bytes]) -> dict[str, Any] | None:
    """Read one frame from a socket's buffered reader; ``None`` at EOF.

    Raises :class:`ProtocolError` on oversized or non-object frames — a
    peer speaking the wrong protocol, not a transient condition.
    """
    line = rfile.readline(MAX_FRAME_BYTES + 1)
    if not line:
        return None
    if len(line) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame exceeds {MAX_FRAME_BYTES} bytes")
    try:
        payload = json.loads(line)
    except ValueError as exc:
        raise ProtocolError(f"malformed frame: {exc}") from None
    if not isinstance(payload, dict) or "type" not in payload:
        raise ProtocolError("frames must be JSON objects with a 'type' key")
    return payload


def connect_stream(
    host: str, port: int, timeout: float | None = None
) -> tuple[socket.socket, IO[bytes]]:
    """Dial a coordinator/worker endpoint; returns ``(socket, reader)``.

    ``TCP_NODELAY`` is set because frames are small and latency-sensitive
    (a heartbeat or a ten-task batch, not a bulk transfer).
    """
    sock = socket.create_connection((host, port), timeout=timeout)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    return sock, sock.makefile("rb")
