"""Miniature FPGA synthesis flow — the fitness-evaluation substrate.

Replaces the paper's Xilinx XST 14.7 / Virtex-6 LX760T characterization
tooling with a fast, deterministic flow: RTL primitives
(:mod:`repro.synth.primitives`) are assembled into structural modules
(:mod:`repro.synth.netlist`), technology-mapped and statically timed
(:mod:`repro.synth.timing`), and summarized into LUT/FF/BRAM/DSP/Fmax
reports (:mod:`repro.synth.flow`). Verilog emission
(:mod:`repro.synth.verilog`) produces the RTL artifact of each design point.
"""

from .area import Resources
from .library import ASIC65, VIRTEX6, AsicLibrary, TechLibrary
from .netlist import Instance, Module, Port
from .primitives import (
    Adder,
    BlockRam,
    Comparator,
    ComplexMultiplier,
    Counter,
    Crossbar,
    Decoder,
    LogicCloud,
    LutRam,
    MatrixArbiter,
    Multiplier,
    Mux,
    PriorityEncoder,
    Primitive,
    Register,
    Rom,
    RoundRobinArbiter,
    StreamingPermuter,
    SeparableAllocator,
    ShiftRegister,
    WavefrontAllocator,
)
from .timing import TimingReport, analyze_timing
from .flow import SynthesisFlow, SynthesisReport
from .verilog import emit_gate_verilog, emit_verilog
from .report_text import render_report
from .gates import Gate, GateNetwork, SequentialSimulator
from .rtl import Rtl, Signal
from .place import Placement, anneal_placement, placed_delay_report, wirelength
from .lutmap import Cut, MappedLut, MappingResult, map_to_luts, synthesize_gates

__all__ = [
    "Resources",
    "TechLibrary",
    "AsicLibrary",
    "VIRTEX6",
    "ASIC65",
    "Module",
    "Instance",
    "Port",
    "Primitive",
    "Register",
    "Adder",
    "Comparator",
    "Mux",
    "Decoder",
    "PriorityEncoder",
    "RoundRobinArbiter",
    "MatrixArbiter",
    "WavefrontAllocator",
    "SeparableAllocator",
    "Crossbar",
    "LutRam",
    "BlockRam",
    "ShiftRegister",
    "Rom",
    "StreamingPermuter",
    "Multiplier",
    "ComplexMultiplier",
    "Counter",
    "LogicCloud",
    "TimingReport",
    "analyze_timing",
    "SynthesisFlow",
    "SynthesisReport",
    "emit_verilog",
    "emit_gate_verilog",
    "render_report",
    "Gate",
    "GateNetwork",
    "Cut",
    "MappedLut",
    "MappingResult",
    "map_to_luts",
    "synthesize_gates",
    "SequentialSimulator",
    "Rtl",
    "Signal",
    "Placement",
    "anneal_placement",
    "wirelength",
    "placed_delay_report",
]
