"""Bit-level gate networks — the synthesis flow's gate-level path.

The primitive-level flow (:mod:`repro.synth.flow`) prices RTL blocks with
closed-form mapping rules, which is what makes 30k-design characterization
runs take seconds. This module provides the ground-truth path those rules
abstract: real gate networks that can be **built** (word-level helper
builders), **optimized** (constant folding, double-negation removal,
structural hashing, dead-code elimination), **simulated** (cycle-free
bit-parallel evaluation over test vectors) and **technology mapped** to
LUT-k (:mod:`repro.synth.lutmap`). Tests use it to validate the closed-form
formulas on small instances; examples use it to show real netlists.

Representation: a DAG of single-output nodes (PIs, constants, AND/OR/XOR/
NOT/MUX gates). Structural hashing is applied at construction, so building
the "same" gate twice returns the same node — the classic strash.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..core.errors import SynthesisError

__all__ = ["Gate", "GateNetwork", "SequentialSimulator"]

#: Supported gate operations and their arities.
_ARITY = {
    "AND": 2,
    "OR": 2,
    "XOR": 2,
    "NOT": 1,
    "MUX": 3,
    "PI": 0,
    "CONST": 0,
    "DFF": 1,
}


class Gate:
    """One node of a gate network (immutable once created)."""

    __slots__ = ("op", "fanins", "uid", "name", "value")

    def __init__(
        self,
        op: str,
        fanins: tuple["Gate", ...],
        uid: int,
        name: str = "",
        value: bool | None = None,
    ):
        self.op = op
        self.fanins = fanins
        self.uid = uid
        self.name = name
        #: Constant value for CONST nodes.
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.op == "PI":
            return f"PI({self.name})"
        if self.op == "CONST":
            return f"CONST({int(bool(self.value))})"
        return f"{self.op}#{self.uid}"


class GateNetwork:
    """A structurally-hashed combinational gate network.

    Build with :meth:`pi`, :meth:`const` and the gate constructors; declare
    outputs with :meth:`po`. Word-level helpers (:meth:`word`,
    :meth:`add_words`, :meth:`mux_words`, ...) build the arithmetic used by
    the tests that validate the closed-form primitive models.
    """

    def __init__(self, name: str = "gates"):
        self.name = name
        self._nodes: list[Gate] = []
        self._strash: dict[tuple, Gate] = {}
        self._pos: list[tuple[str, Gate]] = []
        self._zero = self._raw("CONST", (), value=False)
        self._one = self._raw("CONST", (), value=True)

    # -- construction -------------------------------------------------------------

    def _raw(self, op: str, fanins: tuple[Gate, ...], name: str = "",
             value: bool | None = None) -> Gate:
        gate = Gate(op, fanins, uid=len(self._nodes), name=name, value=value)
        self._nodes.append(gate)
        return gate

    def pi(self, name: str) -> Gate:
        """Declare a primary input bit."""
        return self._raw("PI", (), name=name)

    def const(self, value: bool) -> Gate:
        """The constant 0 or 1 node (shared)."""
        return self._one if value else self._zero

    def po(self, name: str, gate: Gate) -> None:
        """Declare a primary output bit."""
        self._pos.append((name, gate))

    # -- sequential elements ---------------------------------------------------

    def dff(self, name: str = "", init: bool = False) -> Gate:
        """Declare a D flip-flop; wire its input later with :meth:`drive`.

        Created undriven so feedback loops (counters, FSMs) can be built:
        create the DFF, use its output, then drive its input.
        """
        gate = self._raw("DFF", (), name=name, value=init)
        return gate

    def drive(self, dff: Gate, d: Gate) -> None:
        """Connect a DFF's data input."""
        if dff.op != "DFF":
            raise SynthesisError("drive() expects a DFF gate")
        if dff.fanins:
            raise SynthesisError(f"DFF {dff.name or dff.uid} is already driven")
        dff.fanins = (d,)

    def dffs(self) -> tuple[Gate, ...]:
        """All flip-flops, whether or not reachable from an output."""
        return tuple(g for g in self._nodes if g.op == "DFF")

    def _gate(self, op: str, *fanins: Gate) -> Gate:
        if len(fanins) != _ARITY[op]:
            raise SynthesisError(f"{op} takes {_ARITY[op]} fanins, got {len(fanins)}")
        simplified = self._simplify(op, fanins)
        if simplified is not None:
            return simplified
        # Structural hashing: commutative ops canonicalize fanin order.
        key_fanins = tuple(sorted(g.uid for g in fanins)) if op in (
            "AND", "OR", "XOR"
        ) else tuple(g.uid for g in fanins)
        key = (op, key_fanins)
        cached = self._strash.get(key)
        if cached is not None:
            return cached
        gate = self._raw(op, fanins)
        self._strash[key] = gate
        return gate

    # -- local simplification at construction time -----------------------------------

    def _simplify(self, op: str, fanins: tuple[Gate, ...]) -> Gate | None:
        a = fanins[0]
        b = fanins[1] if len(fanins) > 1 else None
        if op == "NOT":
            if a.op == "CONST":
                return self.const(not a.value)
            if a.op == "NOT":
                return a.fanins[0]  # double negation
            return None
        if op == "AND":
            if a.op == "CONST":
                return b if a.value else self._zero
            if b.op == "CONST":
                return a if b.value else self._zero
            if a is b:
                return a
            return None
        if op == "OR":
            if a.op == "CONST":
                return self._one if a.value else b
            if b.op == "CONST":
                return self._one if b.value else a
            if a is b:
                return a
            return None
        if op == "XOR":
            if a.op == "CONST":
                return self.NOT(b) if a.value else b
            if b.op == "CONST":
                return self.NOT(a) if b.value else a
            if a is b:
                return self._zero
            return None
        if op == "MUX":
            select, then, otherwise = fanins
            if select.op == "CONST":
                return then if select.value else otherwise
            if then is otherwise:
                return then
            return None
        return None

    # -- gate constructors ---------------------------------------------------------

    def AND(self, a: Gate, b: Gate) -> Gate:
        return self._gate("AND", a, b)

    def OR(self, a: Gate, b: Gate) -> Gate:
        return self._gate("OR", a, b)

    def XOR(self, a: Gate, b: Gate) -> Gate:
        return self._gate("XOR", a, b)

    def NOT(self, a: Gate) -> Gate:
        return self._gate("NOT", a)

    def MUX(self, select: Gate, then: Gate, otherwise: Gate) -> Gate:
        """2:1 mux: ``then`` when select is 1, else ``otherwise``."""
        return self._gate("MUX", select, then, otherwise)

    # -- word-level helpers ----------------------------------------------------------

    def word(self, name: str, width: int) -> list[Gate]:
        """Declare a little-endian input word (bit 0 = LSB)."""
        return [self.pi(f"{name}[{i}]") for i in range(width)]

    def po_word(self, name: str, bits: Sequence[Gate]) -> None:
        """Declare a word of outputs."""
        for i, bit in enumerate(bits):
            self.po(f"{name}[{i}]", bit)

    def add_words(
        self, a: Sequence[Gate], b: Sequence[Gate], carry_in: Gate | None = None
    ) -> list[Gate]:
        """Ripple-carry addition; returns width+1 bits (carry out last)."""
        if len(a) != len(b):
            raise SynthesisError("add_words needs equal widths")
        carry = carry_in if carry_in is not None else self.const(False)
        out: list[Gate] = []
        for bit_a, bit_b in zip(a, b):
            partial = self.XOR(bit_a, bit_b)
            out.append(self.XOR(partial, carry))
            carry = self.OR(self.AND(bit_a, bit_b), self.AND(partial, carry))
        out.append(carry)
        return out

    def mux_words(
        self, select: Gate, then: Sequence[Gate], otherwise: Sequence[Gate]
    ) -> list[Gate]:
        """Word-level 2:1 mux."""
        if len(then) != len(otherwise):
            raise SynthesisError("mux_words needs equal widths")
        return [self.MUX(select, t, o) for t, o in zip(then, otherwise)]

    def mux_tree(
        self, selects: Sequence[Gate], words: Sequence[Sequence[Gate]]
    ) -> list[Gate]:
        """N:1 word mux from log2(N) select bits (binary select)."""
        if len(words) == 1:
            return list(words[0])
        if 2 ** len(selects) < len(words):
            raise SynthesisError("not enough select bits for mux_tree")
        half = (len(words) + 1) // 2
        low = self.mux_tree(selects[:-1], words[:half]) if half > 1 else list(words[0])
        if len(words) > half:
            rest = words[half:]
            high = (
                self.mux_tree(selects[:-1], rest) if len(rest) > 1 else list(rest[0])
            )
        else:
            high = low
        return self.mux_words(selects[-1], high, low)

    def equals_const(self, bits: Sequence[Gate], value: int) -> Gate:
        """Comparator against a constant (AND-tree of bit matches)."""
        terms = []
        for i, bit in enumerate(bits):
            expected = (value >> i) & 1
            terms.append(bit if expected else self.NOT(bit))
        result = terms[0]
        for term in terms[1:]:
            result = self.AND(result, term)
        return result

    # -- access ---------------------------------------------------------------------

    @property
    def outputs(self) -> tuple[tuple[str, Gate], ...]:
        return tuple(self._pos)

    @property
    def inputs(self) -> tuple[Gate, ...]:
        return tuple(g for g in self._nodes if g.op == "PI")

    def live_nodes(self) -> list[Gate]:
        """Nodes reachable from an output, in combinational topo order.

        DFF outputs act as sources (like PIs) and their data inputs as
        extra roots, so feedback through registers is legal; a DFF appears
        in the order *before* its input cone, mirroring launch semantics.
        """
        seen: set[int] = set()
        order: list[Gate] = []
        roots: list[Gate] = [gate for __, gate in self._pos]
        root_index = 0

        def visit(gate: Gate) -> None:
            stack = [(gate, False)]
            while stack:
                node, expanded = stack.pop()
                if node.uid in seen and not expanded:
                    continue
                if expanded:
                    order.append(node)
                    continue
                seen.add(node.uid)
                if node.op == "DFF":
                    # Source for combinational purposes; its input cone is
                    # scheduled as a separate root.
                    order.append(node)
                    for fanin in node.fanins:
                        roots.append(fanin)
                    continue
                stack.append((node, True))
                for fanin in node.fanins:
                    if fanin.uid not in seen:
                        stack.append((fanin, False))

        while root_index < len(roots):
            visit(roots[root_index])
            root_index += 1
        return order

    def gate_count(self) -> int:
        """Live two-input-equivalent gate count (PIs/consts/DFFs excluded)."""
        return sum(
            1 for g in self.live_nodes() if g.op not in ("PI", "CONST", "DFF")
        )

    def depth(self) -> int:
        """Longest PI-to-PO path in gates."""
        level: dict[int, int] = {}
        for gate in self.live_nodes():
            if gate.op in ("PI", "CONST", "DFF"):
                level[gate.uid] = 0
            else:
                level[gate.uid] = 1 + max(
                    (level[f.uid] for f in gate.fanins), default=0
                )
        endpoints = [level[g.uid] for __, g in self._pos]
        endpoints += [
            level[f.uid] for g in self.live_nodes() if g.op == "DFF"
            for f in g.fanins
        ]
        return max(endpoints, default=0)

    # -- simulation -------------------------------------------------------------------

    def simulate(self, assignment: dict[str, int]) -> dict[str, int]:
        """Evaluate outputs for one input assignment (PI name -> 0/1).

        Uses Python ints as bit-parallel words, so callers may pack up to 63
        test vectors per call by passing multi-bit integers.
        """
        values: dict[int, int] = {}
        mask = ~0
        for gate in self.live_nodes():
            if gate.op == "DFF":
                raise SynthesisError(
                    "network has flip-flops; use SequentialSimulator"
                )
            if gate.op == "PI":
                try:
                    values[gate.uid] = assignment[gate.name]
                except KeyError:
                    raise SynthesisError(f"no value for input {gate.name!r}") from None
            elif gate.op == "CONST":
                values[gate.uid] = mask if gate.value else 0
            elif gate.op == "AND":
                values[gate.uid] = values[gate.fanins[0].uid] & values[gate.fanins[1].uid]
            elif gate.op == "OR":
                values[gate.uid] = values[gate.fanins[0].uid] | values[gate.fanins[1].uid]
            elif gate.op == "XOR":
                values[gate.uid] = values[gate.fanins[0].uid] ^ values[gate.fanins[1].uid]
            elif gate.op == "NOT":
                values[gate.uid] = ~values[gate.fanins[0].uid]
            elif gate.op == "MUX":
                select, then, otherwise = (values[f.uid] for f in gate.fanins)
                values[gate.uid] = (select & then) | (~select & otherwise)
        return {name: values[gate.uid] for name, gate in self._pos}

    def simulate_word(self, words: dict[str, int], widths: dict[str, int]) -> dict[str, int]:
        """Evaluate with word-level inputs (name -> integer value)."""
        assignment: dict[str, int] = {}
        for name, width in widths.items():
            value = words[name]
            for i in range(width):
                assignment[f"{name}[{i}]"] = (value >> i) & 1
        bit_results = self.simulate(assignment)
        outputs: dict[str, int] = {}
        for bit_name, bit_value in bit_results.items():
            if "[" in bit_name:
                word, index = bit_name[:-1].split("[")
                outputs[word] = outputs.get(word, 0) | ((bit_value & 1) << int(index))
            else:
                outputs[bit_name] = bit_value & 1
        return outputs

    def __len__(self) -> int:
        return len(self._nodes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GateNetwork({self.name!r}, {self.gate_count()} live gates, "
            f"depth {self.depth()})"
        )


class SequentialSimulator:
    """Cycle-by-cycle evaluation of a gate network with flip-flops.

    State is held per DFF (initialized from each DFF's ``init`` value);
    :meth:`step` evaluates the combinational logic with the current state,
    returns the outputs, and commits the next state — standard two-phase
    synchronous semantics, so feedback loops behave like real registers.
    """

    def __init__(self, network: GateNetwork):
        self.network = network
        self._order = network.live_nodes()
        self._dffs = [g for g in self._order if g.op == "DFF"]
        for dff in self._dffs:
            if not dff.fanins:
                raise SynthesisError(
                    f"DFF {dff.name or dff.uid} was never driven"
                )
        self.state: dict[int, int] = {
            dff.uid: (1 if dff.value else 0) for dff in self._dffs
        }
        self.cycle = 0

    def reset(self) -> None:
        """Restore all registers to their init values."""
        for dff in self._dffs:
            self.state[dff.uid] = 1 if dff.value else 0
        self.cycle = 0

    def step(self, assignment: dict[str, int]) -> dict[str, int]:
        """Advance one clock cycle; returns the PO values *before* the edge."""
        values: dict[int, int] = {}
        for gate in self._order:
            if gate.op == "DFF":
                values[gate.uid] = self.state[gate.uid]
            elif gate.op == "PI":
                try:
                    values[gate.uid] = assignment[gate.name] & 1
                except KeyError:
                    raise SynthesisError(
                        f"no value for input {gate.name!r}"
                    ) from None
            elif gate.op == "CONST":
                values[gate.uid] = 1 if gate.value else 0
            elif gate.op == "AND":
                values[gate.uid] = (
                    values[gate.fanins[0].uid] & values[gate.fanins[1].uid]
                )
            elif gate.op == "OR":
                values[gate.uid] = (
                    values[gate.fanins[0].uid] | values[gate.fanins[1].uid]
                )
            elif gate.op == "XOR":
                values[gate.uid] = (
                    values[gate.fanins[0].uid] ^ values[gate.fanins[1].uid]
                )
            elif gate.op == "NOT":
                values[gate.uid] = 1 - values[gate.fanins[0].uid]
            elif gate.op == "MUX":
                select, then, otherwise = (
                    values[f.uid] for f in gate.fanins
                )
                values[gate.uid] = then if select else otherwise
        outputs = {
            name: values[gate.uid] for name, gate in self.network.outputs
        }
        for dff in self._dffs:
            self.state[dff.uid] = values[dff.fanins[0].uid]
        self.cycle += 1
        return outputs

    def run(self, traces: dict[str, list[int]], cycles: int) -> dict[str, list[int]]:
        """Drive per-cycle input traces and collect per-cycle outputs."""
        collected: dict[str, list[int]] = {
            name: [] for name, __ in self.network.outputs
        }
        for cycle in range(cycles):
            assignment = {
                name: trace[cycle % len(trace)] for name, trace in traces.items()
            }
            outputs = self.step(assignment)
            for name, value in outputs.items():
                collected[name].append(value)
        return collected
