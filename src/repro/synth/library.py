"""Technology library for the miniature synthesis flow.

Models a Xilinx Virtex-6 speed-grade-2 style FPGA fabric — the paper's
characterization target (XST 14.7, xc6vlx760) — plus a commercial-65nm-like
ASIC view used by the CONNECT network experiments (Figure 2).

The constants are calibrated so that the generated router and FFT netlists
land in the metric ranges the paper reports (router Fmax 60-200 MHz band and
up to ~20k LUTs in Figure 1; FFT minimum ~540 LUTs in Figure 6). The *shape*
of the fitness landscape comes from the microarchitectural formulas in
``repro.synth.primitives``, not from these scalars.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TechLibrary", "AsicLibrary", "VIRTEX6", "ASIC65"]


@dataclass(frozen=True)
class TechLibrary:
    """Delay/capacity constants of an FPGA fabric.

    Attributes:
        name: Library identifier (appears in synthesis reports).
        lut_delay_ns: Logic delay through one LUT6.
        routing_delay_ns: Average net routing delay per logic level.
        ff_setup_ns: Flip-flop setup time.
        ff_clk_to_q_ns: Flip-flop clock-to-output delay.
        carry_per_bit_ns: Incremental carry-chain delay per bit.
        lutram_read_ns: Asynchronous distributed-RAM read delay.
        bram_clk_to_out_ns: Block-RAM synchronous read latency.
        dsp_delay_ns: Unpipelined DSP-slice multiply delay.
        clock_floor_ns: Minimum achievable period (clock distribution limit).
        lutram_bits_per_lut: Distributed-RAM bits stored per LUT used.
        srl_bits_per_lut: Shift-register bits per LUT (SRL32).
        bram_bits: Capacity of one block RAM (36 Kb on Virtex-6).
        dsp_max_width: Widest multiplier operand a single DSP accepts.
        packing_overhead: Area factor for imperfect LUT packing/control sets.
    """

    name: str = "virtex6"
    lut_delay_ns: float = 0.22
    routing_delay_ns: float = 0.35
    ff_setup_ns: float = 0.25
    ff_clk_to_q_ns: float = 0.35
    carry_per_bit_ns: float = 0.02
    lutram_read_ns: float = 0.40
    bram_clk_to_out_ns: float = 1.80
    dsp_delay_ns: float = 2.20
    clock_floor_ns: float = 1.20
    lutram_bits_per_lut: int = 64
    srl_bits_per_lut: int = 32
    bram_bits: int = 36 * 1024
    dsp_max_width: int = 18
    packing_overhead: float = 1.06

    def level_delay_ns(self) -> float:
        """Delay of one LUT logic level including average routing."""
        return self.lut_delay_ns + self.routing_delay_ns


@dataclass(frozen=True)
class AsicLibrary:
    """Area/power constants of a commercial-65nm-like ASIC node.

    Used to re-express synthesis results in mm^2 and mW for the Figure 2
    CONNECT experiments. The conversion treats one LUT6 as a bundle of
    NAND2-equivalent gates — the standard back-of-envelope FPGA-to-ASIC
    mapping (Kuon & Rose report ~20-35x area gap; gate bundle and gate area
    below land in that regime).

    Attributes:
        gate_area_um2: NAND2-equivalent gate area.
        gates_per_lut: NAND2-equivalents represented by one LUT6 of logic.
        gates_per_ff: NAND2-equivalents per flip-flop.
        bram_area_um2: Area of one 36Kb SRAM macro.
        dynamic_nw_per_gate_mhz: Dynamic power per gate per MHz (nW).
        leakage_nw_per_gate: Static leakage per gate (nW).
        wire_area_um2_per_bit_mm: Wire area per signal bit per mm of link.
        wire_power_nw_per_bit_mhz_mm: Wire dynamic power per bit-MHz-mm.
        asic_speedup: Fmax multiplier for ASIC vs FPGA implementation.
    """

    name: str = "asic65"
    gate_area_um2: float = 1.44
    gates_per_lut: float = 10.0
    gates_per_ff: float = 6.0
    bram_area_um2: float = 28_000.0
    dynamic_nw_per_gate_mhz: float = 2.4
    leakage_nw_per_gate: float = 1.1
    wire_area_um2_per_bit_mm: float = 6.0
    wire_power_nw_per_bit_mhz_mm: float = 8.0
    asic_speedup: float = 3.5


#: Default FPGA target, matching the paper's Virtex-6 LX760T runs.
VIRTEX6 = TechLibrary()

#: Default ASIC view for the CONNECT Figure 2 experiments.
ASIC65 = AsicLibrary()
