"""Cut-based LUT technology mapping (FlowMap-style) for gate networks.

The depth-optimal LUT mapping problem is solved exactly by FlowMap for
k-bounded networks; production mappers use priority-cut enumeration with
depth-then-area cost. This module implements the practical variant:

1. enumerate k-feasible cuts per node (bounded cross-products of fanin cut
   sets, pruned to the best ``cut_limit`` by (depth, size));
2. label nodes with their optimal mapping depth (min over cuts of
   1 + max leaf label);
3. cover the network from the outputs backward, instantiating one LUT per
   selected cut.

The result exposes LUT count and mapped depth — the gate-level ground truth
for the closed-form per-primitive formulas in :mod:`repro.synth.primitives`
(see ``tests/synth/test_lutmap.py`` for the cross-validation).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import SynthesisError
from .gates import Gate, GateNetwork

__all__ = ["Cut", "MappedLut", "MappingResult", "map_to_luts", "synthesize_gates"]


@dataclass(frozen=True)
class Cut:
    """A k-feasible cut: the node is computable from these leaves."""

    leaves: frozenset[int]
    depth: int

    @property
    def size(self) -> int:
        return len(self.leaves)


@dataclass(frozen=True)
class MappedLut:
    """One LUT of the mapped network."""

    root: int
    leaves: tuple[int, ...]


@dataclass(frozen=True)
class MappingResult:
    """LUT cover of a gate network."""

    luts: tuple[MappedLut, ...]
    depth: int
    k: int

    @property
    def lut_count(self) -> int:
        return len(self.luts)


def _merge_cuts(
    fanin_cuts: list[list[Cut]], k: int, cut_limit: int
) -> list[frozenset[int]]:
    """Cross-product fanin cut leaf-sets, keeping k-feasible unions."""
    merged: list[frozenset[int]] = [frozenset()]
    for cuts in fanin_cuts:
        next_merged: list[frozenset[int]] = []
        seen: set[frozenset[int]] = set()
        for base in merged:
            for cut in cuts:
                union = base | cut.leaves
                if len(union) <= k and union not in seen:
                    seen.add(union)
                    next_merged.append(union)
        # Prune aggressively to keep enumeration polynomial.
        next_merged.sort(key=len)
        merged = next_merged[: cut_limit * 4]
        if not merged:
            return []
    return merged


def map_to_luts(
    network: GateNetwork, k: int = 6, cut_limit: int = 8
) -> MappingResult:
    """Map a combinational gate network onto k-input LUTs.

    Args:
        network: The gate network (only live logic is mapped).
        k: LUT input count (6 for the Virtex-6-style target).
        cut_limit: Priority cuts kept per node; larger explores more area
            trade-offs at more runtime. Depth optimality is preserved
            because the trivial cut and the best-depth cut are always kept.

    Raises:
        SynthesisError: If the network has no outputs.
    """
    if not network.outputs:
        raise SynthesisError("cannot map a network with no outputs")
    if k < 2:
        raise SynthesisError("k must be >= 2")

    order = network.live_nodes()
    cuts: dict[int, list[Cut]] = {}
    label: dict[int, int] = {}
    node_by_uid: dict[int, Gate] = {g.uid: g for g in order}

    for gate in order:
        if gate.op in ("PI", "CONST", "DFF"):
            # DFF outputs launch paths like primary inputs.
            cuts[gate.uid] = [Cut(frozenset((gate.uid,)), 0)]
            label[gate.uid] = 0
            continue
        fanin_cut_sets = [cuts[f.uid] for f in gate.fanins]
        candidate_leafsets = _merge_cuts(fanin_cut_sets, k, cut_limit)
        candidates: list[Cut] = []
        for leaves in candidate_leafsets:
            depth = 1 + max(
                (label[leaf] for leaf in leaves), default=0
            )
            candidates.append(Cut(leaves, depth))
        # The trivial cut (the node's own fanins) is always feasible for
        # arity <= k and guarantees progress.
        trivial_leaves = frozenset(f.uid for f in gate.fanins)
        if len(trivial_leaves) <= k:
            depth = 1 + max(label[f.uid] for f in gate.fanins)
            candidates.append(Cut(trivial_leaves, depth))
        if not candidates:
            raise SynthesisError(
                f"no k-feasible cut for node {gate!r}; increase k"
            )
        candidates.sort(key=lambda c: (c.depth, c.size))
        # Deduplicate, keep the priority list.
        kept: list[Cut] = []
        seen_leaves: set[frozenset[int]] = set()
        for cut in candidates:
            if cut.leaves not in seen_leaves:
                seen_leaves.add(cut.leaves)
                kept.append(cut)
            if len(kept) >= cut_limit:
                break
        cuts[gate.uid] = kept
        label[gate.uid] = kept[0].depth

    # Cover from the outputs (and register inputs) backward.
    required: list[int] = []
    visible: set[int] = set()
    roots = [gate for __, gate in network.outputs]
    roots += [
        fanin
        for gate in order
        if gate.op == "DFF"
        for fanin in gate.fanins
    ]
    for gate in roots:
        if gate.op not in ("PI", "CONST", "DFF") and gate.uid not in visible:
            visible.add(gate.uid)
            required.append(gate.uid)
    luts: list[MappedLut] = []
    index = 0
    while index < len(required):
        uid = required[index]
        index += 1
        best = cuts[uid][0]
        luts.append(MappedLut(uid, tuple(sorted(best.leaves))))
        for leaf in best.leaves:
            leaf_gate = node_by_uid[leaf]
            if leaf_gate.op in ("PI", "CONST", "DFF"):
                continue
            if leaf not in visible:
                visible.add(leaf)
                required.append(leaf)

    endpoints = [
        label[gate.uid]
        for gate in roots
        if gate.op not in ("PI", "CONST", "DFF")
    ]
    mapped_depth = max(endpoints, default=0)
    return MappingResult(tuple(luts), mapped_depth, k)


def synthesize_gates(network: GateNetwork, lib=None, k: int = 6):
    """Synthesize a gate network into a standard synthesis report.

    The gate-level analog of :meth:`SynthesisFlow.run`: map to LUT-k, count
    registers, and derive the clock from the mapped register-to-register
    depth — so gate-level IP generators plug into the exact same search
    machinery as the primitive-level ones.
    """
    from .flow import SynthesisReport
    from .library import VIRTEX6

    lib = lib or VIRTEX6
    result = map_to_luts(network, k=k)
    ffs = sum(1 for g in network.live_nodes() if g.op == "DFF")
    logic_ns = (
        lib.lut_delay_ns + max(result.depth - 1, 0) * lib.level_delay_ns()
        if result.depth
        else 0.0
    )
    period = max(
        lib.ff_clk_to_q_ns + logic_ns + lib.routing_delay_ns + lib.ff_setup_ns,
        lib.clock_floor_ns,
    )
    return SynthesisReport(
        module=network.name,
        luts=result.lut_count,
        ffs=ffs,
        brams=0,
        dsps=0,
        critical_path_ns=period,
        fmax_mhz=1000.0 / period,
        levels=result.depth,
    )
