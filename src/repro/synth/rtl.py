"""A small word-level RTL DSL over :class:`~repro.synth.gates.GateNetwork`.

Gate networks are the honest representation, but nobody wants to write a
datapath one bit at a time. :class:`Rtl` provides signals with operator
overloading — ``a + b``, ``a ^ b``, ``~a``, ``a.eq(b)``, ``mux(sel, t, e)``,
slicing, concatenation, registers with next-state assignment — that
elaborate directly into the structurally-hashed gate network underneath.
Everything stays synthesizable: the result simulates with
:class:`~repro.synth.gates.SequentialSimulator`, maps with
:func:`~repro.synth.lutmap.map_to_luts`, and reports through
:func:`~repro.synth.lutmap.synthesize_gates`.

Width semantics are deliberately explicit (no silent truncation): addition
grows by one bit, operands of bitwise operators must match widths, and
:meth:`Signal.resize` is the only way to change a width.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..core.errors import SynthesisError
from .gates import Gate, GateNetwork

__all__ = ["Signal", "Rtl"]


class Signal:
    """A little-endian word of gate-network bits (bit 0 = LSB)."""

    __slots__ = ("rtl", "bits")

    def __init__(self, rtl: "Rtl", bits: Sequence[Gate]):
        if not bits:
            raise SynthesisError("signals must have at least one bit")
        self.rtl = rtl
        self.bits = tuple(bits)

    # -- structure ---------------------------------------------------------------

    @property
    def width(self) -> int:
        return len(self.bits)

    def __len__(self) -> int:
        return len(self.bits)

    def __getitem__(self, index) -> "Signal":
        """Bit-select or slice (always returns a Signal)."""
        if isinstance(index, slice):
            bits = self.bits[index]
            if not bits:
                raise SynthesisError("empty slice of a signal")
            return Signal(self.rtl, bits)
        return Signal(self.rtl, (self.bits[index],))

    def concat(self, upper: "Signal") -> "Signal":
        """Concatenate: self provides the low bits, ``upper`` the high."""
        return Signal(self.rtl, self.bits + upper.bits)

    def resize(self, width: int) -> "Signal":
        """Zero-extend or truncate to ``width`` bits (explicitly)."""
        if width < 1:
            raise SynthesisError("width must be >= 1")
        g = self.rtl.network
        if width <= self.width:
            return Signal(self.rtl, self.bits[:width])
        pad = (g.const(False),) * (width - self.width)
        return Signal(self.rtl, self.bits + pad)

    # -- helpers -----------------------------------------------------------------

    def _check_partner(self, other: "Signal") -> "Signal":
        if not isinstance(other, Signal):
            raise SynthesisError(
                f"expected a Signal, got {type(other).__name__}; wrap "
                "constants with Rtl.const()"
            )
        if other.width != self.width:
            raise SynthesisError(
                f"width mismatch: {self.width} vs {other.width}; use resize()"
            )
        return other

    # -- bitwise ------------------------------------------------------------------

    def __and__(self, other: "Signal") -> "Signal":
        other = self._check_partner(other)
        g = self.rtl.network
        return Signal(self.rtl, [g.AND(a, b) for a, b in zip(self.bits, other.bits)])

    def __or__(self, other: "Signal") -> "Signal":
        other = self._check_partner(other)
        g = self.rtl.network
        return Signal(self.rtl, [g.OR(a, b) for a, b in zip(self.bits, other.bits)])

    def __xor__(self, other: "Signal") -> "Signal":
        other = self._check_partner(other)
        g = self.rtl.network
        return Signal(self.rtl, [g.XOR(a, b) for a, b in zip(self.bits, other.bits)])

    def __invert__(self) -> "Signal":
        g = self.rtl.network
        return Signal(self.rtl, [g.NOT(a) for a in self.bits])

    # -- arithmetic ----------------------------------------------------------------

    def __add__(self, other: "Signal") -> "Signal":
        """Unsigned addition; result is one bit wider (no overflow loss)."""
        other = self._check_partner(other)
        g = self.rtl.network
        return Signal(self.rtl, g.add_words(self.bits, other.bits))

    def __sub__(self, other: "Signal") -> "Signal":
        """Unsigned subtraction (two's complement); result width + 1.

        The extra top bit is the *borrow-free* flag: 1 when self >= other.
        """
        other = self._check_partner(other)
        g = self.rtl.network
        negated = [g.NOT(b) for b in other.bits]
        return Signal(
            self.rtl, g.add_words(self.bits, negated, carry_in=g.const(True))
        )

    def __lshift__(self, amount: int) -> "Signal":
        """Constant left shift (grows the width)."""
        g = self.rtl.network
        return Signal(self.rtl, (g.const(False),) * amount + self.bits)

    def __rshift__(self, amount: int) -> "Signal":
        """Constant right shift (drops low bits, keeps width >= 1)."""
        bits = self.bits[amount:] or (self.rtl.network.const(False),)
        return Signal(self.rtl, bits)

    # -- comparisons ----------------------------------------------------------------

    def eq(self, other: "Signal") -> "Signal":
        """1-bit equality."""
        other = self._check_partner(other)
        g = self.rtl.network
        matches = [g.NOT(g.XOR(a, b)) for a, b in zip(self.bits, other.bits)]
        result = matches[0]
        for match in matches[1:]:
            result = g.AND(result, match)
        return Signal(self.rtl, (result,))

    def ge(self, other: "Signal") -> "Signal":
        """1-bit unsigned greater-or-equal (borrow-free bit of subtraction)."""
        difference = self - other
        return Signal(self.rtl, (difference.bits[-1],))

    def lt(self, other: "Signal") -> "Signal":
        """1-bit unsigned less-than."""
        g = self.rtl.network
        return Signal(self.rtl, (g.NOT(self.ge(other).bits[0]),))

    # -- reductions ------------------------------------------------------------------

    def any(self) -> "Signal":
        """1-bit OR-reduction."""
        g = self.rtl.network
        result = self.bits[0]
        for bit in self.bits[1:]:
            result = g.OR(result, bit)
        return Signal(self.rtl, (result,))

    def all(self) -> "Signal":
        """1-bit AND-reduction."""
        g = self.rtl.network
        result = self.bits[0]
        for bit in self.bits[1:]:
            result = g.AND(result, bit)
        return Signal(self.rtl, (result,))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Signal({self.width} bits)"


class Rtl:
    """A word-level design under construction.

    Typical flow::

        m = Rtl("mac")
        a, b = m.input("a", 8), m.input("b", 8)
        acc = m.reg("acc", 20)
        m.next(acc, (acc + (a + b).resize(20)).resize(20))
        m.output("total", acc)
        report = m.synthesize()
    """

    def __init__(self, name: str = "rtl"):
        self.network = GateNetwork(name)
        self._regs: dict[int, Signal] = {}
        self._next_assigned: set[int] = set()

    # -- declarations --------------------------------------------------------------

    def input(self, name: str, width: int) -> Signal:
        """Declare an input word."""
        return Signal(self, self.network.word(name, width))

    def const(self, value: int, width: int) -> Signal:
        """An unsigned constant of the given width."""
        if value < 0 or value >= (1 << width):
            raise SynthesisError(
                f"constant {value} does not fit in {width} bits"
            )
        g = self.network
        return Signal(
            self, [g.const(bool((value >> i) & 1)) for i in range(width)]
        )

    def reg(self, name: str, width: int, init: int = 0) -> Signal:
        """Declare a register word (drive it with :meth:`next`)."""
        if init < 0 or init >= (1 << width):
            raise SynthesisError(f"init {init} does not fit in {width} bits")
        g = self.network
        bits = [
            g.dff(f"{name}[{i}]", init=bool((init >> i) & 1))
            for i in range(width)
        ]
        signal = Signal(self, bits)
        self._regs[id(signal)] = signal
        return signal

    def next(self, register: Signal, value: Signal) -> None:
        """Assign a register's next-cycle value (exactly once)."""
        if id(register) not in self._regs:
            raise SynthesisError("next() target must come from reg()")
        if id(register) in self._next_assigned:
            raise SynthesisError("register already has a next-state assignment")
        if value.width != register.width:
            raise SynthesisError(
                f"next-state width {value.width} != register width "
                f"{register.width}; use resize()"
            )
        for dff, bit in zip(register.bits, value.bits):
            self.network.drive(dff, bit)
        self._next_assigned.add(id(register))

    def output(self, name: str, signal: Signal) -> None:
        """Declare an output word."""
        self.network.po_word(name, signal.bits)

    # -- combinators -----------------------------------------------------------------

    def mux(self, select: Signal, then: Signal, otherwise: Signal) -> Signal:
        """Word-level 2:1 mux on a 1-bit select."""
        if select.width != 1:
            raise SynthesisError("mux select must be 1 bit")
        if then.width != otherwise.width:
            raise SynthesisError("mux arm widths must match")
        g = self.network
        return Signal(
            self,
            [
                g.MUX(select.bits[0], t, o)
                for t, o in zip(then.bits, otherwise.bits)
            ],
        )

    # -- products --------------------------------------------------------------------

    def synthesize(self, k: int = 6):
        """Map and report (see :func:`~repro.synth.lutmap.synthesize_gates`)."""
        from .lutmap import synthesize_gates

        return synthesize_gates(self.network, k=k)

    def simulator(self):
        """A cycle simulator over the elaborated network."""
        from .gates import SequentialSimulator

        return SequentialSimulator(self.network)

    def verilog(self) -> str:
        """Flat gate-level Verilog of the elaborated network."""
        from .verilog import emit_gate_verilog

        return emit_gate_verilog(self.network)
