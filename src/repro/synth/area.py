"""Resource vectors reported by the miniature synthesis flow."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Resources"]


@dataclass(frozen=True)
class Resources:
    """FPGA resource usage: LUTs, flip-flops, block RAMs, DSP slices.

    Fractional LUT counts are allowed internally (packing estimates);
    reports round at the flow boundary.
    """

    luts: float = 0.0
    ffs: float = 0.0
    brams: float = 0.0
    dsps: float = 0.0

    def __add__(self, other: "Resources") -> "Resources":
        if not isinstance(other, Resources):
            return NotImplemented
        return Resources(
            self.luts + other.luts,
            self.ffs + other.ffs,
            self.brams + other.brams,
            self.dsps + other.dsps,
        )

    def scaled(self, factor: float) -> "Resources":
        """Return resources multiplied by a scalar (replication)."""
        return Resources(
            self.luts * factor,
            self.ffs * factor,
            self.brams * factor,
            self.dsps * factor,
        )

    @staticmethod
    def total(items) -> "Resources":
        """Sum an iterable of resource vectors."""
        acc = Resources()
        for item in items:
            acc = acc + item
        return acc
