"""Vendor-style text rendering of synthesis reports.

Real CAD flows end with a human-readable utilization/timing summary; IP
users live in these files. :func:`render_report` produces the equivalent
artifact for the miniature flow — useful in examples, CLI output and logs.
"""

from __future__ import annotations

from .flow import SynthesisReport
from .library import TechLibrary, VIRTEX6

__all__ = ["render_report"]

#: Device capacity used for utilization percentages (Virtex-6 LX760T-ish).
_DEVICE_CAPACITY = {
    "luts": 474_240,
    "ffs": 948_480,
    "brams": 720,
    "dsps": 864,
}

_RULE = "-" * 64


def _row(name: str, used: float, available: int) -> str:
    percent = 100.0 * used / available if available else 0.0
    return f"| {name:<28s} | {used:>10,.0f} | {available:>9,} | {percent:6.2f}% |"


def render_report(report: SynthesisReport, lib: TechLibrary = VIRTEX6) -> str:
    """Render a synthesis report as an XST-style text summary."""
    lines = [
        _RULE,
        f"Design Summary: {report.module}",
        f"Target       : {lib.name} (speed-calibrated model)",
        _RULE,
        "Resource utilization:",
        "+------------------------------+------------+-----------+---------+",
        "| Resource                     |       Used | Available |   Util  |",
        "+------------------------------+------------+-----------+---------+",
        _row("Slice LUTs", report.luts, _DEVICE_CAPACITY["luts"]),
        _row("Slice Registers", report.ffs, _DEVICE_CAPACITY["ffs"]),
        _row("Block RAM (36Kb)", report.brams, _DEVICE_CAPACITY["brams"]),
        _row("DSP48E1 slices", report.dsps, _DEVICE_CAPACITY["dsps"]),
        "+------------------------------+------------+-----------+---------+",
        "",
        "Timing summary:",
        f"  Minimum period      : {report.critical_path_ns:8.3f} ns",
        f"  Maximum frequency   : {report.fmax_mhz:8.2f} MHz",
        f"  Logic levels        : {report.levels:8d}",
    ]
    if report.critical_path:
        lines.append("  Critical path       :")
        for hop in report.critical_path:
            lines.append(f"      -> {hop}")
    lines.append(_RULE)
    return "\n".join(lines)
