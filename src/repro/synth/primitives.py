"""RTL primitives — the building blocks IP generators instantiate.

Each primitive knows how a technology-mapping pass would implement it on the
target fabric: its resource vector (:class:`~repro.synth.area.Resources`),
its combinational delay (for the static timing pass) and whether its outputs
are registered (sequential primitives start/stop timing paths).

The formulas follow standard FPGA mapping folklore:

* w-bit ripple/carry adder -> w LUTs on a carry chain, delay grows ~linearly
  in w;
* an n:1 mux maps to a tree of 4:1-per-LUT6 stages -> ~w*(n-1)/3 LUTs and
  ceil(log4(n)) levels;
* distributed RAM packs 32 bits per LUT (64 single-ported), SRLs 32 bits;
* a round-robin arbiter is a priority encoder wrapped with a rotating
  pointer -> O(n) LUTs, O(log n) levels, n pointer FFs;
* block RAM and DSP slices are hard macros with fixed access delays.

These per-primitive rules are where the *shape* of the design-space landscape
comes from (monotone trends, interactions, diminishing returns); the flow
merely aggregates them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

from .area import Resources
from .library import TechLibrary

__all__ = [
    "Primitive",
    "Register",
    "Adder",
    "Comparator",
    "Mux",
    "Decoder",
    "PriorityEncoder",
    "RoundRobinArbiter",
    "MatrixArbiter",
    "WavefrontAllocator",
    "SeparableAllocator",
    "Crossbar",
    "LutRam",
    "BlockRam",
    "ShiftRegister",
    "Rom",
    "Multiplier",
    "ComplexMultiplier",
    "StreamingPermuter",
    "Counter",
    "LogicCloud",
]


def _levels(n: int, inputs_per_level: int = 4) -> int:
    """Logic levels of a tree reducing ``n`` inputs, >= 1."""
    if n <= 1:
        return 1
    return max(1, math.ceil(math.log(n, inputs_per_level)))


def _tree_delay(lib: TechLibrary, levels: int) -> float:
    """Delay of a LUT tree: the first level is pure logic, the rest pay
    internal routing too (the inter-primitive net is billed by the STA pass
    per edge, so billing it again on level one would double count)."""
    return lib.lut_delay_ns + max(levels - 1, 0) * lib.level_delay_ns()


@dataclass(frozen=True)
class Primitive:
    """Base class: a mappable RTL building block.

    Attributes:
        sequential: True when outputs are registered, which terminates
            combinational timing paths at this primitive's inputs and starts
            new ones at its outputs.
    """

    sequential: bool = field(default=False, init=False)

    def resources(self, lib: TechLibrary) -> Resources:
        """Mapped resource usage on the target fabric."""
        raise NotImplementedError

    def comb_delay_ns(self, lib: TechLibrary) -> float:
        """Input-to-output combinational delay (0 for pure registers)."""
        raise NotImplementedError

    def kind(self) -> str:
        """Short type tag used in reports and Verilog emission."""
        return type(self).__name__

    def describe(self) -> dict[str, Any]:
        """Parameter dict for reports/Verilog comments."""
        return {
            k: v for k, v in self.__dict__.items() if not k.startswith("_")
        }


@dataclass(frozen=True)
class Register(Primitive):
    """A bank of flip-flops, optionally with clock enable."""

    width: int
    with_enable: bool = True

    def __post_init__(self) -> None:
        object.__setattr__(self, "sequential", True)

    def resources(self, lib: TechLibrary) -> Resources:
        return Resources(ffs=self.width)

    def comb_delay_ns(self, lib: TechLibrary) -> float:
        return 0.0


@dataclass(frozen=True)
class Adder(Primitive):
    """Carry-chain adder/subtractor."""

    width: int

    def resources(self, lib: TechLibrary) -> Resources:
        return Resources(luts=self.width)

    def comb_delay_ns(self, lib: TechLibrary) -> float:
        return lib.lut_delay_ns + self.width * lib.carry_per_bit_ns


@dataclass(frozen=True)
class Comparator(Primitive):
    """Magnitude/equality comparator over two w-bit operands."""

    width: int

    def resources(self, lib: TechLibrary) -> Resources:
        return Resources(luts=math.ceil(self.width / 2))

    def comb_delay_ns(self, lib: TechLibrary) -> float:
        return lib.lut_delay_ns + self.width * lib.carry_per_bit_ns / 2


@dataclass(frozen=True)
class Mux(Primitive):
    """n:1 multiplexer, ``width`` bits wide."""

    width: int
    inputs: int

    def resources(self, lib: TechLibrary) -> Resources:
        if self.inputs <= 1:
            return Resources()
        luts_per_bit = math.ceil((self.inputs - 1) / 3)
        return Resources(luts=self.width * luts_per_bit)

    def comb_delay_ns(self, lib: TechLibrary) -> float:
        # Wide buses fan out across the die; add a width-driven wire term.
        wire_ns = 0.004 * self.width
        return _tree_delay(lib, _levels(self.inputs)) + wire_ns


@dataclass(frozen=True)
class Decoder(Primitive):
    """Binary-to-onehot decoder with ``outputs`` lines."""

    outputs: int

    def resources(self, lib: TechLibrary) -> Resources:
        return Resources(luts=math.ceil(self.outputs / 2))

    def comb_delay_ns(self, lib: TechLibrary) -> float:
        return _tree_delay(lib, _levels(self.outputs, 8))


@dataclass(frozen=True)
class PriorityEncoder(Primitive):
    """Fixed-priority encoder over ``inputs`` request lines."""

    inputs: int

    def resources(self, lib: TechLibrary) -> Resources:
        return Resources(luts=2 * self.inputs)

    def comb_delay_ns(self, lib: TechLibrary) -> float:
        return _tree_delay(lib, _levels(self.inputs) + 1)


@dataclass(frozen=True)
class RoundRobinArbiter(Primitive):
    """Rotating-priority arbiter over ``inputs`` requesters.

    Implemented as a thermometer-masked double priority encoder plus a
    rotating pointer register — the canonical FPGA round-robin circuit.
    """

    inputs: int

    def resources(self, lib: TechLibrary) -> Resources:
        pointer_ffs = max(1, math.ceil(math.log2(max(self.inputs, 2))))
        return Resources(luts=3 * self.inputs + 2, ffs=pointer_ffs)

    def comb_delay_ns(self, lib: TechLibrary) -> float:
        return _tree_delay(lib, _levels(self.inputs) + 2)


@dataclass(frozen=True)
class MatrixArbiter(Primitive):
    """Matrix arbiter: n^2/2 state bits, flat single-level grant logic.

    Faster than round-robin for small n but its state grows quadratically —
    the classic area/delay trade among arbiter styles, which is exactly the
    kind of knob an IP author writes an ordering hint for.
    """

    inputs: int

    def resources(self, lib: TechLibrary) -> Resources:
        state = self.inputs * (self.inputs - 1) // 2
        return Resources(luts=2 * self.inputs + state, ffs=state)

    def comb_delay_ns(self, lib: TechLibrary) -> float:
        return _tree_delay(lib, _levels(self.inputs) + 1)


@dataclass(frozen=True)
class WavefrontAllocator(Primitive):
    """Wavefront allocator matching ``rows`` requesters to ``cols`` resources.

    Produces high-quality matchings in one pass but the combinational
    wavefront ripples across the whole grid — large and slow, great
    matching quality.
    """

    rows: int
    cols: int

    def resources(self, lib: TechLibrary) -> Resources:
        return Resources(luts=4 * self.rows * self.cols)

    def comb_delay_ns(self, lib: TechLibrary) -> float:
        return (self.rows + self.cols - 1) * 0.5 * lib.level_delay_ns()


@dataclass(frozen=True)
class SeparableAllocator(Primitive):
    """Separable (input-first) allocator built from two arbiter ranks."""

    rows: int
    cols: int

    def _rank1(self) -> RoundRobinArbiter:
        return RoundRobinArbiter(self.cols)

    def _rank2(self) -> RoundRobinArbiter:
        return RoundRobinArbiter(self.rows)

    def resources(self, lib: TechLibrary) -> Resources:
        rank1 = self._rank1().resources(lib).scaled(self.rows)
        rank2 = self._rank2().resources(lib).scaled(self.cols)
        return rank1 + rank2

    def comb_delay_ns(self, lib: TechLibrary) -> float:
        # The second rank starts resolving while the first settles its
        # low-order grants, overlapping part of the delay.
        return (
            self._rank1().comb_delay_ns(lib)
            + 0.6 * self._rank2().comb_delay_ns(lib)
        )


@dataclass(frozen=True)
class Crossbar(Primitive):
    """Mux-based crossbar: one ``inputs``:1 mux per output port."""

    inputs: int
    outputs: int
    width: int

    def resources(self, lib: TechLibrary) -> Resources:
        per_output = Mux(self.width, self.inputs).resources(lib)
        return per_output.scaled(self.outputs)

    def comb_delay_ns(self, lib: TechLibrary) -> float:
        return Mux(self.width, self.inputs).comb_delay_ns(lib)


@dataclass(frozen=True)
class LutRam(Primitive):
    """Distributed (LUT) RAM with asynchronous read.

    ``read_ports`` > 1 replicates the storage, as XST does for multi-read
    register files.
    """

    depth: int
    width: int
    read_ports: int = 1

    def resources(self, lib: TechLibrary) -> Resources:
        bits = self.depth * self.width
        luts = math.ceil(bits / lib.lutram_bits_per_lut) * self.read_ports
        address_ffs = 0
        return Resources(luts=luts, ffs=address_ffs)

    def comb_delay_ns(self, lib: TechLibrary) -> float:
        # Address decode and output muxing deepen with RAM depth: every
        # quadrupling of entries adds roughly one mux level on the read path.
        depth_levels = 0.5 * math.log2(max(self.depth, 1))
        return lib.lutram_read_ns + depth_levels * 0.5 * lib.level_delay_ns()


@dataclass(frozen=True)
class BlockRam(Primitive):
    """Block RAM macro with synchronous read (registered output)."""

    depth: int
    width: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "sequential", True)

    def resources(self, lib: TechLibrary) -> Resources:
        bits = self.depth * self.width
        return Resources(brams=max(1, math.ceil(bits / lib.bram_bits)))

    def comb_delay_ns(self, lib: TechLibrary) -> float:
        # Modeled at the path start as clock-to-out (see timing pass).
        return 0.0

    def clk_to_out_ns(self, lib: TechLibrary) -> float:
        """Synchronous read latency used as the path launch delay."""
        return lib.bram_clk_to_out_ns


@dataclass(frozen=True)
class ShiftRegister(Primitive):
    """SRL-based shift register (delay line)."""

    depth: int
    width: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "sequential", True)

    def resources(self, lib: TechLibrary) -> Resources:
        luts = self.width * math.ceil(self.depth / lib.srl_bits_per_lut)
        return Resources(luts=luts)

    def comb_delay_ns(self, lib: TechLibrary) -> float:
        return 0.0


@dataclass(frozen=True)
class Rom(Primitive):
    """Constant table in LUTs (e.g. twiddle factors)."""

    depth: int
    width: int

    def resources(self, lib: TechLibrary) -> Resources:
        bits = self.depth * self.width
        return Resources(luts=math.ceil(bits / 64))

    def comb_delay_ns(self, lib: TechLibrary) -> float:
        return _tree_delay(lib, _levels(max(self.depth // 64, 1), 4))


@dataclass(frozen=True)
class Multiplier(Primitive):
    """w x w multiplier, on DSP slices or LUT fabric."""

    width: int
    use_dsp: bool = True

    def resources(self, lib: TechLibrary) -> Resources:
        if self.use_dsp:
            per_dim = math.ceil(self.width / lib.dsp_max_width)
            glue = (per_dim - 1) * self.width  # partial-product stitching
            return Resources(dsps=per_dim * per_dim, luts=glue)
        return Resources(luts=self.width * self.width * 0.9)

    def comb_delay_ns(self, lib: TechLibrary) -> float:
        if self.use_dsp:
            tiles = math.ceil(self.width / lib.dsp_max_width)
            return lib.dsp_delay_ns + (tiles - 1) * lib.level_delay_ns()
        return _tree_delay(lib, _levels(self.width) + math.ceil(self.width / 4))


@dataclass(frozen=True)
class ComplexMultiplier(Primitive):
    """Complex multiplier: three real multipliers plus adders (Karatsuba).

    ``pipelined=True`` (the default, and what every shipping FFT core does)
    registers the product inside the DSP cascade, so the multiplier launches
    a fresh timing path instead of extending its input path.
    """

    width: int
    use_dsp: bool = True
    pipelined: bool = True

    def __post_init__(self) -> None:
        object.__setattr__(self, "sequential", self.pipelined)

    def resources(self, lib: TechLibrary) -> Resources:
        mult = Multiplier(self.width, self.use_dsp).resources(lib).scaled(3)
        adders = Adder(self.width + 1).resources(lib).scaled(2)
        regs = Resources(ffs=4 * self.width if self.pipelined else 0)
        return mult + adders + regs

    def _raw_delay_ns(self, lib: TechLibrary) -> float:
        return (
            Multiplier(self.width, self.use_dsp).comb_delay_ns(lib)
            + Adder(self.width + 1).comb_delay_ns(lib)
        )

    def comb_delay_ns(self, lib: TechLibrary) -> float:
        return 0.0 if self.pipelined else self._raw_delay_ns(lib)

    def clk_to_out_ns(self, lib: TechLibrary) -> float:
        """Registered-output launch delay (DSP output register)."""
        return lib.ff_clk_to_q_ns + 0.3


@dataclass(frozen=True)
class StreamingPermuter(Primitive):
    """Inter-stage streaming permutation network over ``lanes`` lanes.

    Not a crossbar: streaming FFTs realize stride permutations with
    Benes/Omega-style networks of 2:1 switches plus per-lane delay RAM, so
    cost grows as ``lanes * log2(lanes)``. The network is internally
    pipelined (as shipping streaming cores are), so it registers its outputs
    and contributes one switch level to the launch path.
    """

    lanes: int
    width: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "sequential", self.lanes >= 2)

    def resources(self, lib: TechLibrary) -> Resources:
        if self.lanes < 2:
            return Resources()
        levels = max(1, math.ceil(math.log2(self.lanes)))
        switches = self.lanes * levels / 2  # 2:1 switch pairs per level
        luts = switches * self.width / 4.0  # F7/F8 muxes steer 4 bits/LUT
        # Pipeline registers: one rank per two switch levels.
        ranks = max(1, levels // 2)
        return Resources(luts=luts, ffs=self.width * self.lanes * ranks)

    def comb_delay_ns(self, lib: TechLibrary) -> float:
        return 0.0

    def clk_to_out_ns(self, lib: TechLibrary) -> float:
        """Registered outputs; the last switch level launches the path."""
        return lib.ff_clk_to_q_ns + lib.lut_delay_ns


@dataclass(frozen=True)
class Counter(Primitive):
    """Registered up-counter (credits, pointers, FSM timers)."""

    width: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "sequential", True)

    def resources(self, lib: TechLibrary) -> Resources:
        return Resources(luts=self.width, ffs=self.width)

    def comb_delay_ns(self, lib: TechLibrary) -> float:
        return 0.0


@dataclass(frozen=True)
class LogicCloud(Primitive):
    """Generic random control logic: explicit LUT count and depth.

    Used by generators for FSMs and glue that has no closed-form structure.
    """

    luts: float
    levels: int = 2
    ffs: float = 0.0

    def resources(self, lib: TechLibrary) -> Resources:
        return Resources(luts=self.luts, ffs=self.ffs)

    def comb_delay_ns(self, lib: TechLibrary) -> float:
        return _tree_delay(lib, self.levels)
