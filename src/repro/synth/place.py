"""Simulated-annealing placement for primitive-level modules.

The paper's related work notes that "simulated annealing has long been used
in physical design automation problems" [2]. This module brings that slow
path into the substrate: place a module's instances on a 2-D grid to
minimize half-perimeter wirelength (HPWL), the standard placement
objective, via the classic Kirkpatrick-style annealing schedule.

The default synthesis flow keeps its fast statistical routing model (a
placement per evaluation would make 30k-design characterization hours, not
seconds); :func:`placed_delay_report` shows what the slow path buys — a
placement-aware routing delay per edge derived from actual cell-to-cell
distances — and the tests validate the annealer the way EDA folk would:
it beats random placement by a wide margin, respects the schedule, and is
deterministic under a seed.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from ..core.errors import SynthesisError
from .library import TechLibrary, VIRTEX6
from .netlist import Module

__all__ = ["Placement", "anneal_placement", "wirelength", "placed_delay_report"]


@dataclass(frozen=True)
class Placement:
    """Instance name -> (row, col) grid coordinates."""

    module: str
    grid: int
    cells: dict[str, tuple[int, int]]
    wirelength: float

    def location(self, name: str) -> tuple[int, int]:
        return self.cells[name]


def wirelength(module: Module, cells: dict[str, tuple[int, int]]) -> float:
    """Total half-perimeter wirelength over all dependency edges.

    With two-pin edges HPWL reduces to Manhattan distance; kept as a
    separate function so tests can score arbitrary placements.
    """
    total = 0.0
    for src, dst in module.edges:
        (r1, c1), (r2, c2) = cells[src], cells[dst]
        total += abs(r1 - r2) + abs(c1 - c2)
    return total


def _random_placement(
    module: Module, grid: int, rng: random.Random
) -> dict[str, tuple[int, int]]:
    slots = [(r, c) for r in range(grid) for c in range(grid)]
    rng.shuffle(slots)
    return {
        inst.name: slots[i] for i, inst in enumerate(module.instances)
    }


def anneal_placement(
    module: Module,
    grid: int | None = None,
    seed: int = 1,
    moves_per_temp: int | None = None,
    start_acceptance: float = 0.8,
    cooling: float = 0.92,
    floor_temperature: float = 0.05,
) -> Placement:
    """Place a module's instances on a grid by simulated annealing.

    Args:
        module: The netlist to place (instances become grid cells).
        grid: Grid side length; defaults to the smallest square that fits.
        seed: Annealing RNG seed (placements are deterministic).
        moves_per_temp: Swap attempts per temperature step; defaults to
            ``10 * instances`` (the classic rule of thumb).
        start_acceptance: Initial temperature is chosen so roughly this
            fraction of uphill moves is accepted at the start.
        cooling: Geometric cooling rate per temperature step.
        floor_temperature: Anneal stops when temperature drops below this
            fraction of the initial temperature.
    """
    instances = module.instances
    if not instances:
        raise SynthesisError(f"module {module.name!r} has nothing to place")
    if grid is None:
        grid = max(2, math.ceil(math.sqrt(len(instances))))
    if grid * grid < len(instances):
        raise SynthesisError(
            f"grid {grid}x{grid} cannot hold {len(instances)} instances"
        )
    rng = random.Random(seed)
    cells = _random_placement(module, grid, rng)
    occupied: dict[tuple[int, int], str] = {
        loc: name for name, loc in cells.items()
    }
    current = wirelength(module, cells)
    names = [inst.name for inst in instances]
    moves = moves_per_temp or max(10 * len(names), 50)

    # Calibrate the initial temperature from the uphill-move distribution.
    probes = []
    for _ in range(min(40, moves)):
        delta = _probe_swap_delta(module, cells, occupied, names, grid, rng)
        if delta > 0:
            probes.append(delta)
    mean_uphill = sum(probes) / len(probes) if probes else 1.0
    temperature = -mean_uphill / math.log(start_acceptance)
    stop_at = temperature * floor_temperature

    while temperature > stop_at:
        for _ in range(moves):
            name = names[rng.randrange(len(names))]
            target = (rng.randrange(grid), rng.randrange(grid))
            delta = _swap_delta(module, cells, occupied, name, target)
            if delta <= 0 or rng.random() < math.exp(-delta / temperature):
                _apply_swap(cells, occupied, name, target)
                current += delta
        temperature *= cooling

    return Placement(module.name, grid, dict(cells), wirelength(module, cells))


def _edges_touching(module: Module, *names: str):
    touched = set(names)
    return [
        (a, b) for (a, b) in module.edges if a in touched or b in touched
    ]


def _swap_delta(
    module: Module,
    cells: dict[str, tuple[int, int]],
    occupied: dict[tuple[int, int], str],
    name: str,
    target: tuple[int, int],
) -> float:
    other = occupied.get(target)
    involved = (name, other) if other else (name,)
    edges = _edges_touching(module, *involved)

    def score(assignment):
        total = 0.0
        for a, b in edges:
            (r1, c1) = assignment.get(a, cells[a])
            (r2, c2) = assignment.get(b, cells[b])
            total += abs(r1 - r2) + abs(c1 - c2)
        return total

    before = score({})
    after_map = {name: target}
    if other:
        after_map[other] = cells[name]
    after = score(after_map)
    return after - before


def _probe_swap_delta(module, cells, occupied, names, grid, rng) -> float:
    name = names[rng.randrange(len(names))]
    target = (rng.randrange(grid), rng.randrange(grid))
    return _swap_delta(module, cells, occupied, name, target)


def _apply_swap(cells, occupied, name: str, target: tuple[int, int]) -> None:
    source = cells[name]
    other = occupied.get(target)
    cells[name] = target
    occupied[target] = name
    if other:
        cells[other] = source
        occupied[source] = other
    elif occupied.get(source) == name:
        del occupied[source]


def placed_delay_report(
    module: Module,
    placement: Placement,
    lib: TechLibrary = VIRTEX6,
    ns_per_hop: float = 0.12,
) -> dict[str, float]:
    """Placement-aware timing summary.

    Replaces the flow's statistical per-edge routing delay with one derived
    from actual placed distances (``ns_per_hop`` per grid Manhattan step),
    then reruns the longest-path analysis. Returns a small metrics dict —
    the slow-but-honest counterpart to ``SynthesisFlow.run``'s fast model.
    """
    from .timing import _routing_ns, analyze_timing

    base = analyze_timing(module, lib)
    # Worst placed edge stretches the critical path estimate.
    worst_edge_ns = 0.0
    total_edge_ns = 0.0
    for src, dst in module.edges:
        (r1, c1), (r2, c2) = placement.location(src), placement.location(dst)
        hops = abs(r1 - r2) + abs(c1 - c2)
        edge_ns = ns_per_hop * hops
        worst_edge_ns = max(worst_edge_ns, edge_ns)
        total_edge_ns += edge_ns
    edge_count = max(len(module.edges), 1)
    statistical = _routing_ns(lib, 1)
    placed_period = base.critical_path_ns + max(
        0.0, worst_edge_ns - statistical
    )
    return {
        "hpwl": placement.wirelength,
        "avg_edge_ns": total_edge_ns / edge_count,
        "worst_edge_ns": worst_edge_ns,
        "statistical_period_ns": base.critical_path_ns,
        "placed_period_ns": placed_period,
        "placed_fmax_mhz": 1000.0 / placed_period,
    }
