"""Structural netlists: modules, instances and connections.

A :class:`Module` is a DAG of primitive instances. A connection
``a -> b`` means some output bits of instance ``a`` feed inputs of
instance ``b``; the timing pass walks these edges. Sequential primitives
(registers, block RAMs, counters, SRLs) cut combinational paths.

Ports model the module boundary; by convention (and as every generated IP in
this repository does) inputs and outputs are registered at the boundary, so
the critical path of a module is its worst register-to-register path.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Iterator

from ..core.errors import SynthesisError
from .area import Resources
from .library import TechLibrary
from .primitives import Primitive

__all__ = ["Instance", "Port", "Module"]


class Port:
    """A module boundary port."""

    __slots__ = ("name", "width", "direction")

    def __init__(self, name: str, width: int, direction: str):
        if direction not in ("in", "out"):
            raise SynthesisError(f"port direction must be 'in' or 'out', got {direction!r}")
        if width < 1:
            raise SynthesisError(f"port {name!r} must have positive width")
        self.name = name
        self.width = width
        self.direction = direction

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Port({self.name!r}, {self.width}, {self.direction!r})"


class Instance:
    """A named instantiation of a primitive inside a module."""

    __slots__ = ("name", "primitive")

    def __init__(self, name: str, primitive: Primitive):
        self.name = name
        self.primitive = primitive

    @property
    def sequential(self) -> bool:
        return self.primitive.sequential

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Instance({self.name!r}, {self.primitive.kind()})"


class Module:
    """A flat netlist of primitive instances with dependency edges.

    Generators build modules with :meth:`add`, wire them with
    :meth:`connect`, and hand them to
    :class:`~repro.synth.flow.SynthesisFlow`.
    """

    def __init__(self, name: str):
        self.name = name
        self._instances: dict[str, Instance] = {}
        self._edges: set[tuple[str, str]] = set()
        self._ports: dict[str, Port] = {}

    # -- construction -------------------------------------------------------------

    def add(self, name: str, primitive: Primitive, replicate: int = 1) -> Instance:
        """Add an instance (``replicate`` collapses identical copies).

        Replication multiplies resources without duplicating timing nodes —
        e.g. "one FIFO per VC per port" adds one timing arc but N copies of
        area, matching how identical parallel structures synthesize.
        """
        if name in self._instances:
            raise SynthesisError(f"duplicate instance name {name!r} in module {self.name!r}")
        if replicate < 1:
            raise SynthesisError(f"replicate must be >= 1, got {replicate}")
        primitive = primitive if replicate == 1 else _Replicated(primitive, replicate)
        instance = Instance(name, primitive)
        self._instances[name] = instance
        return instance

    def connect(self, src: str, dst: str) -> None:
        """Declare that outputs of ``src`` feed inputs of ``dst``."""
        for name in (src, dst):
            if name not in self._instances:
                raise SynthesisError(
                    f"connect({src!r}, {dst!r}): unknown instance {name!r}"
                )
        if src == dst:
            raise SynthesisError(f"self-loop on instance {src!r}")
        self._edges.add((src, dst))

    def chain(self, *names: str) -> None:
        """Connect a pipeline of instances in order."""
        for a, b in zip(names, names[1:]):
            self.connect(a, b)

    def add_port(self, name: str, width: int, direction: str) -> Port:
        """Declare a boundary port."""
        if name in self._ports:
            raise SynthesisError(f"duplicate port {name!r} in module {self.name!r}")
        port = Port(name, width, direction)
        self._ports[name] = port
        return port

    # -- access -------------------------------------------------------------------

    @property
    def instances(self) -> tuple[Instance, ...]:
        return tuple(self._instances.values())

    @property
    def ports(self) -> tuple[Port, ...]:
        return tuple(self._ports.values())

    def instance(self, name: str) -> Instance:
        try:
            return self._instances[name]
        except KeyError:
            raise SynthesisError(f"no instance {name!r} in module {self.name!r}") from None

    @property
    def edges(self) -> frozenset[tuple[str, str]]:
        return frozenset(self._edges)

    def predecessors(self, name: str) -> Iterator[str]:
        return (a for a, b in self._edges if b == name)

    def successors(self, name: str) -> Iterator[str]:
        return (b for a, b in self._edges if a == name)

    def __len__(self) -> int:
        return len(self._instances)

    # -- aggregation ---------------------------------------------------------------

    def resources(self, lib: TechLibrary) -> Resources:
        """Sum of all instance resource vectors (pre-packing-overhead)."""
        return Resources.total(
            inst.primitive.resources(lib) for inst in self._instances.values()
        )

    def signature(self) -> str:
        """Stable content hash used to seed deterministic CAD noise."""
        digest = hashlib.sha256()
        digest.update(self.name.encode())
        for name in sorted(self._instances):
            inst = self._instances[name]
            digest.update(name.encode())
            digest.update(inst.primitive.kind().encode())
            digest.update(repr(sorted(inst.primitive.describe().items())).encode())
        for edge in sorted(self._edges):
            digest.update(repr(edge).encode())
        return digest.hexdigest()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Module({self.name!r}, {len(self._instances)} instances, "
            f"{len(self._edges)} edges)"
        )


class _Replicated(Primitive):
    """N identical copies of a primitive sharing one timing node."""

    def __init__(self, inner: Primitive, count: int):
        object.__setattr__(self, "inner", inner)
        object.__setattr__(self, "count", count)
        object.__setattr__(self, "sequential", inner.sequential)

    def resources(self, lib: TechLibrary) -> Resources:
        return self.inner.resources(lib).scaled(self.count)

    def comb_delay_ns(self, lib: TechLibrary) -> float:
        return self.inner.comb_delay_ns(lib)

    def clk_to_out_ns(self, lib: TechLibrary) -> float:
        inner_clk = getattr(self.inner, "clk_to_out_ns", None)
        return inner_clk(lib) if inner_clk else 0.0

    def kind(self) -> str:
        return f"{self.inner.kind()}x{self.count}"

    def describe(self) -> dict:
        desc = dict(self.inner.describe())
        desc["replicate"] = self.count
        return desc
