"""Static timing analysis over a module's instance graph.

Classic longest-path STA on a DAG:

* Sequential instances *launch* paths at their clock-to-out delay and
  *capture* paths at their inputs (plus setup).
* Combinational instances add their mapped delay; every traversed edge adds
  one average routing hop with a fanout penalty (high-fanout nets route
  worse — the usual reason big crossbars miss timing).
* Combinational loops are a synthesis error, as in any real flow.

The resulting worst register-to-register path, floored by the clock
distribution limit, gives the achievable period and hence Fmax.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.errors import SynthesisError
from .library import TechLibrary
from .netlist import Module

__all__ = ["TimingReport", "analyze_timing"]

#: Routing delay grows logarithmically with fanout beyond this knee.
_FANOUT_KNEE = 4


@dataclass(frozen=True)
class TimingReport:
    """Outcome of the STA pass."""

    critical_path_ns: float
    #: Instance names along the critical path, launch to capture.
    critical_path: tuple[str, ...]
    #: Number of combinational levels on the critical path.
    levels: int

    def fmax_mhz(self) -> float:
        """Maximum clock frequency implied by the critical path."""
        return 1000.0 / self.critical_path_ns


def _topological_order(module: Module) -> list[str]:
    """Topological order over *combinational* edges; error on comb loops."""
    comb_edges = [
        (a, b)
        for (a, b) in module.edges
        if not module.instance(a).sequential or not module.instance(b).sequential
    ]
    indegree: dict[str, int] = {inst.name: 0 for inst in module.instances}
    successors: dict[str, list[str]] = {inst.name: [] for inst in module.instances}
    for a, b in comb_edges:
        # Edges out of sequential instances still propagate arrival times
        # (clock-to-out); only edges *into* sequential instances terminate.
        if module.instance(b).sequential:
            continue
        indegree[b] += 1
        successors[a].append(b)
    ready = [name for name, deg in indegree.items() if deg == 0]
    order: list[str] = []
    while ready:
        name = ready.pop()
        order.append(name)
        for succ in successors[name]:
            indegree[succ] -= 1
            if indegree[succ] == 0:
                ready.append(succ)
    if len(order) != len(indegree):
        stuck = sorted(name for name, deg in indegree.items() if deg > 0)
        raise SynthesisError(
            f"combinational loop in module {module.name!r} involving {stuck[:5]}"
        )
    return order


def _routing_ns(lib: TechLibrary, fanout: int) -> float:
    """Per-edge routing delay with a logarithmic fanout penalty."""
    penalty = 1.0
    if fanout > _FANOUT_KNEE:
        penalty += 0.25 * math.log2(fanout / _FANOUT_KNEE)
    return lib.routing_delay_ns * penalty


def analyze_timing(module: Module, lib: TechLibrary) -> TimingReport:
    """Compute the worst register-to-register path of a module.

    A module with no sequential element and no combinational logic (or no
    instances at all) reports the clock floor.
    """
    if len(module) == 0:
        return TimingReport(lib.clock_floor_ns, (), 0)

    fanout = {inst.name: 0 for inst in module.instances}
    for a, _ in module.edges:
        fanout[a] += 1

    arrival: dict[str, float] = {}
    trace: dict[str, tuple[str, ...]] = {}
    levels: dict[str, int] = {}
    order = _topological_order(module)

    for name in order:
        inst = module.instance(name)
        if inst.sequential:
            clk_to_out = getattr(inst.primitive, "clk_to_out_ns", None)
            launch = clk_to_out(lib) if clk_to_out else lib.ff_clk_to_q_ns
            arrival[name] = launch
            trace[name] = (name,)
            levels[name] = 0
            continue
        best = 0.0
        best_trace: tuple[str, ...] = ()
        best_levels = 0
        for pred in module.predecessors(name):
            if pred not in arrival:
                continue
            candidate = arrival[pred] + _routing_ns(lib, fanout[pred])
            if candidate > best:
                best = candidate
                best_trace = trace[pred]
                best_levels = levels[pred]
        own = inst.primitive.comb_delay_ns(lib)
        arrival[name] = best + own
        trace[name] = best_trace + (name,)
        levels[name] = best_levels + 1

    worst = lib.clock_floor_ns
    worst_trace: tuple[str, ...] = ()
    worst_levels = 0
    for a, b in module.edges:
        if not module.instance(b).sequential:
            continue
        if a not in arrival:
            continue
        path = arrival[a] + _routing_ns(lib, fanout[a]) + lib.ff_setup_ns
        if path > worst:
            worst = path
            worst_trace = trace[a] + (b,)
            worst_levels = levels[a]
    # Purely combinational modules (no capture register): worst arrival.
    if not worst_trace and arrival:
        peak = max(arrival, key=lambda n: arrival[n])
        candidate = arrival[peak] + lib.ff_setup_ns
        if candidate > worst:
            worst = candidate
            worst_trace = trace[peak]
            worst_levels = levels[peak]
    return TimingReport(worst, worst_trace, worst_levels)
