"""The miniature synthesis flow: map, analyze, report.

Stands in for Xilinx XST 14.7 in the paper's methodology. Running the flow
on a generated module produces a :class:`SynthesisReport` with the metrics
the paper optimizes: LUTs, FFs, BRAMs, DSPs, critical path and Fmax.

Determinism with realism: real CAD tools are noisy — two near-identical
designs synthesize to slightly different results. The flow reproduces this
with *deterministic pseudo-noise* keyed on the netlist content hash (plus a
configurable salt), so a given design always gets the same report (the
offline-dataset methodology requires it) while neighboring designs see
uncorrelated few-percent perturbations, keeping the fitness landscape
realistically rough for the GA.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass

from .area import Resources
from .library import TechLibrary, VIRTEX6
from .netlist import Module
from .timing import TimingReport, analyze_timing

__all__ = ["SynthesisReport", "SynthesisFlow"]


@dataclass(frozen=True)
class SynthesisReport:
    """Result of synthesizing one module."""

    module: str
    luts: int
    ffs: int
    brams: int
    dsps: int
    critical_path_ns: float
    fmax_mhz: float
    levels: int
    critical_path: tuple[str, ...] = ()

    def metrics(self) -> dict[str, float]:
        """Metrics dict consumed by Nautilus objectives."""
        return {
            "luts": float(self.luts),
            "ffs": float(self.ffs),
            "brams": float(self.brams),
            "dsps": float(self.dsps),
            "critical_path_ns": self.critical_path_ns,
            "fmax_mhz": self.fmax_mhz,
            "area_delay": self.luts * self.critical_path_ns,
        }


class SynthesisFlow:
    """Synthesize primitive-level modules into resource/timing reports.

    Args:
        lib: Target technology library.
        noise: Peak relative magnitude of the deterministic CAD jitter
            (0.01 = up to ±1% on area, ±1.3% scaled on delay). XST itself is
            deterministic, but near-identical designs still map slightly
            differently; a small jitter keeps ties broken without drowning
            the structural landscape. Zero disables it, which tests use for
            exact closed-form checks.
        salt: Extra seed material, letting experiments model "another tool
            version" without touching the netlists.
    """

    def __init__(
        self,
        lib: TechLibrary = VIRTEX6,
        noise: float = 0.01,
        salt: str = "xst14.7",
    ):
        if noise < 0.0 or noise >= 0.5:
            raise ValueError(f"noise must be in [0, 0.5), got {noise}")
        self.lib = lib
        self.noise = noise
        self.salt = salt

    # -- noise ------------------------------------------------------------------

    def _jitter(self, signature: str, channel: str) -> float:
        """Deterministic uniform jitter in [-1, 1] per (design, channel)."""
        digest = hashlib.sha256(
            f"{self.salt}:{channel}:{signature}".encode()
        ).digest()
        raw = int.from_bytes(digest[:8], "big")
        return (raw / 2**63) - 1.0

    # -- main entry ---------------------------------------------------------------

    #: Congestion model: designs larger than this many LUTs pay extra
    #: routing delay per doubling (placement spreads, nets stretch).
    CONGESTION_FREE_LUTS = 1500
    CONGESTION_PER_DOUBLING = 0.045

    def _congestion_factor(self, luts: float) -> float:
        """Area-coupled routing degradation.

        Every parameter that grows the design now also slows it a little —
        the cross-metric coupling real place-and-route exhibits, and the
        reason "minimize area-ish" intuitions transfer to frequency hints.
        """
        if luts <= self.CONGESTION_FREE_LUTS:
            return 1.0
        return 1.0 + self.CONGESTION_PER_DOUBLING * math.log2(
            luts / self.CONGESTION_FREE_LUTS
        )

    def run(self, module: Module) -> SynthesisReport:
        """Map and time a module, returning its synthesis report."""
        resources = module.resources(self.lib)
        timing = analyze_timing(module, self.lib)
        signature = module.signature()
        area_factor = 1.0 + self.noise * self._jitter(signature, "area")
        delay_factor = 1.0 + self.noise * 1.33 * self._jitter(signature, "delay")
        luts = math.ceil(resources.luts * self.lib.packing_overhead * area_factor)
        period = max(
            timing.critical_path_ns * delay_factor * self._congestion_factor(luts),
            self.lib.clock_floor_ns,
        )
        return SynthesisReport(
            module=module.name,
            luts=luts,
            ffs=math.ceil(resources.ffs),
            brams=math.ceil(resources.brams),
            dsps=math.ceil(resources.dsps),
            critical_path_ns=period,
            fmax_mhz=1000.0 / period,
            levels=timing.levels,
            critical_path=timing.critical_path,
        )

    def run_raw(self, module: Module) -> tuple[Resources, TimingReport]:
        """Noise-free resources and timing (used by tests and calibration)."""
        return module.resources(self.lib), analyze_timing(module, self.lib)
