"""Analysis helpers: figure series, terminal plotting, statistics.

Hint-attribution aggregation (:class:`~repro.obs.HintEffectReport`) and
search-health summaries live in :mod:`repro.obs`; the report types are
re-exported here because they are analysis outputs — built from run
traces, read next to the stats in this package.
"""

from .series import FigureSeries
from .plotting import ascii_plot
from .stats import (
    EngineComparison,
    bootstrap_ci,
    compare_engines,
    mann_whitney_u,
    trace_summary,
)
from ..obs.attribution import HintEffectReport, hint_effect_report
from ..obs.health import population_health, stall_risk

__all__ = [
    "FigureSeries",
    "ascii_plot",
    "bootstrap_ci",
    "mann_whitney_u",
    "compare_engines",
    "EngineComparison",
    "trace_summary",
    "HintEffectReport",
    "hint_effect_report",
    "population_health",
    "stall_risk",
]
