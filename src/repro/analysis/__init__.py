"""Analysis helpers: figure series, terminal plotting, statistics."""

from .series import FigureSeries
from .plotting import ascii_plot
from .stats import (
    EngineComparison,
    bootstrap_ci,
    compare_engines,
    mann_whitney_u,
    trace_summary,
)

__all__ = [
    "FigureSeries",
    "ascii_plot",
    "bootstrap_ci",
    "mann_whitney_u",
    "compare_engines",
    "EngineComparison",
    "trace_summary",
]
