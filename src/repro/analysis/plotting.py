"""Terminal plotting for figure series.

The reproduction has no plotting dependency; :func:`ascii_plot` renders any
:class:`~repro.analysis.series.FigureSeries` as a text chart so bench output
and examples can show the figure shapes directly in a terminal or log.
"""

from __future__ import annotations

import math

from .series import FigureSeries

__all__ = ["ascii_plot"]

_MARKERS = "*o+x#@%&"


def _scale(value: float, lo: float, hi: float, size: int, log: bool) -> int:
    if log:
        value, lo, hi = math.log10(value), math.log10(lo), math.log10(hi)
    if hi <= lo:
        return 0
    pos = (value - lo) / (hi - lo)
    return min(size - 1, max(0, round(pos * (size - 1))))


def ascii_plot(
    figure: FigureSeries,
    width: int = 72,
    height: int = 20,
    logx: bool = False,
    logy: bool = False,
) -> str:
    """Render a figure as an ASCII chart with a legend."""
    points = [
        (x, y)
        for series in figure.series.values()
        for x, y in series
        if math.isfinite(x) and math.isfinite(y)
    ]
    if not points:
        return f"{figure.title}\n(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    if logx and min(xs) <= 0:
        logx = False
    if logy and min(ys) <= 0:
        logy = False
    xlo, xhi = min(xs), max(xs)
    ylo, yhi = min(ys), max(ys)
    grid = [[" "] * width for _ in range(height)]
    legend = []
    for index, (label, series) in enumerate(figure.series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        legend.append(f"  {marker} {label}")
        for x, y in series:
            if not (math.isfinite(x) and math.isfinite(y)):
                continue
            col = _scale(x, xlo, xhi, width, logx)
            row = height - 1 - _scale(y, ylo, yhi, height, logy)
            grid[row][col] = marker
    lines = [figure.title]
    lines.append(f"{yhi:.4g} ({figure.ylabel})")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append(f"{ylo:.4g} +" + "-" * (width - 1))
    lines.append(
        f"   {xlo:.4g} .. {xhi:.4g} ({figure.xlabel})"
        + ("  [log x]" if logx else "")
        + ("  [log y]" if logy else "")
    )
    lines.extend(legend)
    return "\n".join(lines)
