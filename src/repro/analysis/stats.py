"""Statistics for comparing stochastic search engines.

The paper compares averaged curves; a rigorous reproduction should also say
whether the differences are significant across the 40 runs. This module
implements the standard toolkit without external dependencies:

* :func:`bootstrap_ci` — percentile bootstrap confidence interval of any
  statistic of a sample (default: the mean);
* :func:`mann_whitney_u` — the Mann-Whitney/Wilcoxon rank-sum test with a
  normal approximation (appropriate at n >= 8 per side, which the paper's
  40-run discipline comfortably satisfies) and tie correction;
* :func:`compare_engines` — a one-call comparison of two
  :class:`~repro.experiments.runner.MultiRunResult` objects on
  evals-to-threshold, returning medians, a p-value and a plain-English
  verdict line;
* :func:`trace_summary` — roll a structured RunEvent stream (live
  :class:`~repro.core.kernel.RunEvent` objects or the JSON dicts served by
  the service's trace endpoint) up into per-kind counts, evaluation-batch
  totals and the search's improvement history.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, Sequence, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..experiments.runner import MultiRunResult

__all__ = [
    "bootstrap_ci",
    "mann_whitney_u",
    "EngineComparison",
    "compare_engines",
    "trace_summary",
]


def trace_summary(events: Sequence) -> dict:
    """Aggregate a RunEvent stream into headline numbers.

    Accepts either :class:`~repro.core.kernel.RunEvent` objects (a live
    engine's ``trace_events``) or plain dicts (the service's persisted
    ``events.jsonl`` / ``GET /campaigns/<id>/trace`` payload). Returns::

        {
          "events": total count,
          "kinds": {kind: count},
          "generations": highest generation seen,
          "evaluations": {"requested": ..., "distinct": ..., "cache_hits": ...},
          "improvements": [(generation, best_score), ...],
          "stop_reason": reason from the final stop event, or None,
        }
    """
    kinds: dict[str, int] = {}
    requested = distinct = cache_hits = 0
    improvements: list[tuple[int, float]] = []
    generations = 0
    stop_reason = None
    for event in events:
        payload = event if isinstance(event, dict) else event.as_dict()
        kind = payload.get("kind", "?")
        kinds[kind] = kinds.get(kind, 0) + 1
        generation = payload.get("generation")
        if isinstance(generation, int):
            generations = max(generations, generation)
        if kind == "eval-batch":
            requested += payload.get("size", 0)
            distinct += payload.get("distinct", 0)
            cache_hits += payload.get("cache_hits", 0)
        elif kind == "best-improved":
            improvements.append((generation, payload.get("best_score")))
        elif kind == "stop":
            stop_reason = payload.get("reason")
    return {
        "events": sum(kinds.values()),
        "kinds": kinds,
        "generations": generations,
        "evaluations": {
            "requested": requested,
            "distinct": distinct,
            "cache_hits": cache_hits,
        },
        "improvements": improvements,
        "stop_reason": stop_reason,
    }


def bootstrap_ci(
    sample: Sequence[float],
    statistic: Callable[[Sequence[float]], float] | None = None,
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 0,
) -> tuple[float, float]:
    """Percentile-bootstrap confidence interval of a statistic.

    Args:
        sample: Observed values (at least one).
        statistic: Function of a sample; defaults to the mean.
        confidence: Interval mass (0.95 -> the 2.5/97.5 percentiles).
        resamples: Bootstrap replicates.
        seed: Resampling RNG seed (results are deterministic).
    """
    if not sample:
        raise ValueError("bootstrap_ci needs a non-empty sample")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    stat = statistic or (lambda xs: sum(xs) / len(xs))
    rng = random.Random(seed)
    n = len(sample)
    replicates = sorted(
        stat([sample[rng.randrange(n)] for _ in range(n)])
        for _ in range(resamples)
    )
    alpha = (1.0 - confidence) / 2.0
    lo_index = int(alpha * resamples)
    hi_index = min(resamples - 1, int((1.0 - alpha) * resamples))
    return replicates[lo_index], replicates[hi_index]


def _rank_with_ties(values: Sequence[float]) -> tuple[list[float], float]:
    """Fractional ranks plus the tie-correction term for the U variance."""
    order = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    tie_term = 0.0
    i = 0
    while i < len(order):
        j = i
        while j + 1 < len(order) and values[order[j + 1]] == values[order[i]]:
            j += 1
        mean_rank = (i + j) / 2.0 + 1.0
        count = j - i + 1
        if count > 1:
            tie_term += count**3 - count
        for k in range(i, j + 1):
            ranks[order[k]] = mean_rank
        i = j + 1
    return ranks, tie_term


def mann_whitney_u(
    a: Sequence[float], b: Sequence[float]
) -> tuple[float, float]:
    """Two-sided Mann-Whitney U test.

    Returns ``(U, p_value)`` using the normal approximation with tie and
    continuity corrections. With identical samples the p-value is 1.0.
    """
    if not a or not b:
        raise ValueError("both samples must be non-empty")
    combined = list(a) + list(b)
    ranks, tie_term = _rank_with_ties(combined)
    n1, n2 = len(a), len(b)
    rank_sum_a = sum(ranks[: len(a)])
    u1 = rank_sum_a - n1 * (n1 + 1) / 2.0
    u2 = n1 * n2 - u1
    u = min(u1, u2)
    mean_u = n1 * n2 / 2.0
    n = n1 + n2
    variance = n1 * n2 / 12.0 * ((n + 1) - tie_term / (n * (n - 1)))
    if variance <= 0.0:
        return u, 1.0
    z = (u - mean_u + 0.5) / math.sqrt(variance)
    p = 2.0 * _normal_sf(abs(z))
    return u, min(p, 1.0)


def _normal_sf(z: float) -> float:
    """Standard normal survival function via erfc."""
    return 0.5 * math.erfc(z / math.sqrt(2.0))


@dataclass(frozen=True)
class EngineComparison:
    """Result of comparing two engines on evals-to-threshold."""

    label_a: str
    label_b: str
    threshold: float
    median_a: float | None
    median_b: float | None
    success_a: float
    success_b: float
    p_value: float | None
    significant: bool

    def verdict(self) -> str:
        """Plain-English one-liner."""
        if self.median_a is None or self.median_b is None:
            leader = self.label_a if self.median_a is not None else self.label_b
            return (
                f"only {leader} reached {self.threshold:g} "
                f"(success {self.success_a:.0%} vs {self.success_b:.0%})"
            )
        faster = self.label_a if self.median_a < self.median_b else self.label_b
        ratio = max(self.median_a, self.median_b) / max(
            min(self.median_a, self.median_b), 1e-9
        )
        significance = (
            f"p={self.p_value:.3g}, significant"
            if self.significant
            else f"p={self.p_value:.3g}, not significant"
        )
        return (
            f"{faster} is {ratio:.2f}x faster to {self.threshold:g} "
            f"({significance} at alpha=0.05)"
        )


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    middle = n // 2
    if n % 2:
        return ordered[middle]
    return (ordered[middle - 1] + ordered[middle]) / 2.0


def compare_engines(
    result_a: "MultiRunResult",
    result_b: "MultiRunResult",
    threshold: float,
    alpha: float = 0.05,
    censor_at: float | None = None,
) -> EngineComparison:
    """Compare two engines' per-run evals-to-threshold distributions.

    Runs that never reach the threshold are censored at ``censor_at``
    (default: the largest observed per-run evaluation count across both
    engines) so they still count against the failing engine rather than
    being silently dropped.
    """
    def per_run(result):
        raw = [r.evals_to_reach(threshold) for r in result.results]
        return raw

    raw_a, raw_b = per_run(result_a), per_run(result_b)
    if censor_at is None:
        totals = [
            r.distinct_evaluations
            for result in (result_a, result_b)
            for r in result.results
        ]
        censor_at = float(max(totals)) + 1.0
    sample_a = [float(x) if x is not None else censor_at for x in raw_a]
    sample_b = [float(x) if x is not None else censor_at for x in raw_b]
    reached_a = [float(x) for x in raw_a if x is not None]
    reached_b = [float(x) for x in raw_b if x is not None]
    __, p_value = mann_whitney_u(sample_a, sample_b)
    return EngineComparison(
        label_a=result_a.label,
        label_b=result_b.label,
        threshold=threshold,
        median_a=_median(reached_a) if reached_a else None,
        median_b=_median(reached_b) if reached_b else None,
        success_a=len(reached_a) / len(sample_a),
        success_b=len(reached_b) / len(sample_b),
        p_value=p_value,
        significant=p_value < alpha,
    )
