"""Figure series containers — the data behind each reproduced figure."""

from __future__ import annotations

import csv
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Sequence

__all__ = ["FigureSeries"]


@dataclass
class FigureSeries:
    """The plottable content of one paper figure.

    Attributes:
        name: Figure identifier (e.g. ``"fig4"``).
        title: Figure caption.
        xlabel / ylabel: Axis labels.
        series: Mapping of curve label to (x, y) points.
        notes: Headline numbers (speedups, eval counts, thresholds) used by
            EXPERIMENTS.md and bench output.
    """

    name: str
    title: str
    xlabel: str
    ylabel: str
    series: dict[str, list[tuple[float, float]]] = field(default_factory=dict)
    notes: dict[str, Any] = field(default_factory=dict)

    def add(self, label: str, points: Sequence[tuple[float, float]]) -> None:
        """Add one named curve."""
        self.series[label] = [(float(x), float(y)) for x, y in points]

    def note(self, key: str, value: Any) -> None:
        """Record a headline number."""
        self.notes[key] = value

    def to_csv(self, path: str | Path) -> None:
        """Write all curves as long-format CSV (series, x, y)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w", newline="", encoding="utf-8") as fh:
            writer = csv.writer(fh)
            writer.writerow(["series", "x", "y"])
            for label, points in self.series.items():
                for x, y in points:
                    writer.writerow([label, x, y])

    def summary_rows(self) -> list[str]:
        """Human-readable per-series summary lines."""
        rows = [f"{self.name}: {self.title}"]
        for label, points in self.series.items():
            if not points:
                continue
            xs = [p[0] for p in points]
            ys = [p[1] for p in points]
            rows.append(
                f"  {label:34s} n={len(points):5d}  "
                f"x:[{min(xs):.5g}, {max(xs):.5g}]  "
                f"y:[{min(ys):.5g}, {max(ys):.5g}]  final y={ys[-1]:.5g}"
            )
        for key, value in self.notes.items():
            rows.append(f"  note {key} = {value}")
        return rows
