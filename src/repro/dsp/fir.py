"""Parameterized FIR filter generator — a third IP domain.

The paper motivates IP generators with "signal processing, arithmetic
units" as domains whose low-level parameters are cryptic to the average
user. This package adds a classic one: a fixed-function low-pass FIR
filter whose implementation parameters trade area, speed and numerical
quality:

* ``taps`` — filter length (fixed by the spec in the evaluation space: all
  design points implement the same 63-tap low-pass response, as required
  for functional interchangeability);
* ``coeff_width`` / ``data_width`` — quantization of coefficients and
  samples; drives arithmetic size and the *computed* stopband attenuation;
* ``structure`` — direct form, transposed form, or symmetric-exploiting
  (half the multipliers, a pre-adder per pair);
* ``multiplier`` — DSP slices or LUT fabric;
* ``serialization`` — fully parallel (1 sample/cycle) down to heavily
  folded (one MAC serving many taps), trading throughput for area.

Like the FFT's SNR, the quality metric is computed, not modeled:
:func:`stopband_attenuation_db` quantizes the actual coefficient vector and
measures the worst stopband ripple of the resulting frequency response with
numpy.
"""

from __future__ import annotations

import functools
import math
from typing import Any, Mapping

import numpy as np

from ..synth.netlist import Module
from ..synth.primitives import (
    Adder,
    Counter,
    LogicCloud,
    LutRam,
    Multiplier,
    Mux,
    Register,
    Rom,
    ShiftRegister,
)

__all__ = [
    "STRUCTURES",
    "MULTIPLIERS",
    "FirConfig",
    "ideal_lowpass_taps",
    "quantize_taps",
    "stopband_attenuation_db",
    "build_fir",
    "fir_throughput_msps",
]

STRUCTURES = ("direct", "transposed", "symmetric")
MULTIPLIERS = ("dsp", "fabric")

#: Normalized cutoff of the reference low-pass specification.
_CUTOFF = 0.22
#: Stopband starts here (normalized to Nyquist = 1).
_STOPBAND_EDGE = 0.30


class FirConfig:
    """A validated FIR implementation configuration."""

    __slots__ = (
        "taps",
        "coeff_width",
        "data_width",
        "structure",
        "multiplier",
        "serialization",
    )

    def __init__(
        self,
        taps: int,
        coeff_width: int,
        data_width: int,
        structure: str,
        multiplier: str,
        serialization: int,
    ):
        if structure not in STRUCTURES:
            raise ValueError(f"unknown structure {structure!r}")
        if multiplier not in MULTIPLIERS:
            raise ValueError(f"unknown multiplier {multiplier!r}")
        if taps < 3 or taps % 2 == 0:
            raise ValueError("taps must be odd and >= 3 (linear-phase spec)")
        if serialization < 1 or taps % serialization not in (0, taps % serialization):
            raise ValueError("serialization must be >= 1")
        if serialization > taps:
            raise ValueError("serialization cannot exceed tap count")
        if structure == "symmetric" and serialization > (taps + 1) // 2:
            raise ValueError(
                "symmetric structures fold at most (taps+1)/2 multipliers"
            )
        self.taps = taps
        self.coeff_width = coeff_width
        self.data_width = data_width
        self.structure = structure
        self.multiplier = multiplier
        self.serialization = serialization

    @classmethod
    def from_mapping(cls, config: Mapping[str, Any]) -> "FirConfig":
        return cls(
            taps=config.get("taps", 63),
            coeff_width=config["coeff_width"],
            data_width=config["data_width"],
            structure=config["structure"],
            multiplier=config["multiplier"],
            serialization=config["serialization"],
        )

    def name(self) -> str:
        return (
            f"fir{self.taps}_{self.structure}_c{self.coeff_width}"
            f"d{self.data_width}_{self.multiplier}_s{self.serialization}"
        )

    def physical_multipliers(self) -> int:
        """MAC units actually instantiated after symmetry and folding."""
        logical = (self.taps + 1) // 2 if self.structure == "symmetric" else self.taps
        return max(1, math.ceil(logical / self.serialization))


@functools.lru_cache(maxsize=32)
def ideal_lowpass_taps(taps: int = 63, cutoff: float = _CUTOFF) -> tuple[float, ...]:
    """Hamming-windowed sinc prototype (linear phase, symmetric)."""
    n = np.arange(taps) - (taps - 1) / 2.0
    sinc = np.sinc(cutoff * n) * cutoff
    window = np.hamming(taps)
    coefficients = sinc * window
    return tuple(float(c) for c in coefficients / np.sum(coefficients))


def quantize_taps(
    coefficients: tuple[float, ...], coeff_width: int
) -> np.ndarray:
    """Round coefficients to ``coeff_width``-bit two's-complement."""
    scale = float(1 << (coeff_width - 1))
    peak = max(abs(c) for c in coefficients)
    quantized = np.round(np.asarray(coefficients) / peak * (scale - 1))
    return quantized * peak / (scale - 1)


@functools.lru_cache(maxsize=256)
def stopband_attenuation_db(
    coeff_width: int, taps: int = 63, points: int = 2048
) -> float:
    """Worst-case stopband attenuation of the quantized filter (dB).

    Computed from the actual frequency response: quantize the prototype,
    evaluate |H(f)| on a dense grid, and report the stopband peak relative
    to the passband. Coefficient quantization is the dominant quality
    limit, so this is a pure function of ``coeff_width`` (and the spec).
    """
    prototype = ideal_lowpass_taps(taps)
    quantized = quantize_taps(prototype, coeff_width)
    spectrum = np.abs(np.fft.rfft(quantized, n=2 * points))
    freqs = np.linspace(0.0, 1.0, len(spectrum))
    passband_gain = float(np.max(spectrum[freqs <= _CUTOFF]))
    stopband = spectrum[freqs >= _STOPBAND_EDGE]
    worst = float(np.max(stopband)) if len(stopband) else 1e-12
    return 20.0 * math.log10(passband_gain / max(worst, 1e-12))


def build_fir(config: FirConfig | Mapping[str, Any]) -> Module:
    """Elaborate a FIR configuration into a synthesizable module."""
    cfg = config if isinstance(config, FirConfig) else FirConfig.from_mapping(config)
    module = Module(cfg.name())
    module.add_port("sample_in", cfg.data_width, "in")
    module.add_port("sample_out", cfg.data_width + cfg.coeff_width, "out")

    mults = cfg.physical_multipliers()
    accumulator_width = cfg.data_width + cfg.coeff_width + max(cfg.taps, 2).bit_length()

    module.add("input_reg", Register(cfg.data_width))
    # Sample delay line: SRLs for direct/symmetric, a register chain of
    # accumulators for transposed.
    if cfg.structure == "transposed":
        module.add(
            "delay_line", Register(accumulator_width), replicate=cfg.taps
        )
    else:
        module.add("delay_line", ShiftRegister(cfg.taps, cfg.data_width))
    if cfg.structure == "symmetric":
        # Pre-adders combine mirrored taps before each multiplier.
        module.add(
            "pre_adders", Adder(cfg.data_width + 1), replicate=(cfg.taps + 1) // 2
        )
    module.add(
        "multipliers",
        Multiplier(max(cfg.coeff_width, cfg.data_width), use_dsp=cfg.multiplier == "dsp"),
        replicate=mults,
    )
    if cfg.serialization > 1:
        # Folded MACs: coefficient storage, operand muxing, schedule control.
        module.add(
            "coeff_mem",
            LutRam(cfg.serialization, cfg.coeff_width),
            replicate=mults,
        )
        module.add(
            "operand_mux", Mux(cfg.data_width, cfg.serialization), replicate=mults
        )
        module.add("schedule_counter", Counter(max(cfg.serialization - 1, 1).bit_length()))
        module.add("fold_control", LogicCloud(luts=18 + 2 * mults, levels=2, ffs=10))
        module.connect("schedule_counter", "fold_control")
        module.connect("fold_control", "operand_mux")
        module.connect("coeff_mem", "multipliers")
        module.connect("operand_mux", "multipliers")
    else:
        module.add("coeff_rom", Rom(cfg.taps, cfg.coeff_width))
        module.connect("coeff_rom", "multipliers")
    # Adder tree (direct/symmetric) or distributed accumulation (transposed).
    if cfg.structure == "transposed":
        module.add("accumulate", Adder(accumulator_width), replicate=cfg.taps)
    else:
        tree_adders = max(mults - 1, 1)
        module.add("accumulate", Adder(accumulator_width), replicate=tree_adders)
    module.add("round_sat", LogicCloud(luts=accumulator_width // 2, levels=1))
    module.add("output_reg", Register(cfg.data_width + cfg.coeff_width))

    module.connect("input_reg", "delay_line")
    if cfg.structure == "symmetric":
        module.connect("delay_line", "pre_adders")
        module.connect("pre_adders", "multipliers")
    else:
        module.connect("delay_line", "multipliers")
    module.chain("multipliers", "accumulate", "round_sat", "output_reg")
    return module


def fir_throughput_msps(
    config: FirConfig | Mapping[str, Any], fmax_mhz: float
) -> float:
    """Sustained throughput: one sample per ``serialization`` cycles."""
    cfg = config if isinstance(config, FirConfig) else FirConfig.from_mapping(config)
    return fmax_mhz / cfg.serialization
