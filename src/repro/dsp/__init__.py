"""DSP substrate: a parameterized FIR filter IP generator.

A third IP domain beyond the paper's NoC and FFT generators, demonstrating
that the hint taxonomy and search machinery transfer: a fixed 63-tap
low-pass specification with five implementation parameters (word lengths,
structure, multiplier style, folding factor) whose stopband attenuation is
computed from the quantized coefficients' actual frequency response.
"""

from .fir import (
    FirConfig,
    MULTIPLIERS,
    STRUCTURES,
    build_fir,
    fir_throughput_msps,
    ideal_lowpass_taps,
    quantize_taps,
    stopband_attenuation_db,
)
from .space import (
    FIR_TAPS,
    FirEvaluator,
    fir_area_hints,
    fir_evaluator,
    fir_space,
)

__all__ = [
    "FirConfig",
    "STRUCTURES",
    "MULTIPLIERS",
    "build_fir",
    "fir_throughput_msps",
    "ideal_lowpass_taps",
    "quantize_taps",
    "stopband_attenuation_db",
    "FIR_TAPS",
    "fir_space",
    "FirEvaluator",
    "fir_evaluator",
    "fir_area_hints",
]
