"""The FIR design space, evaluator and expert hints.

All design points implement the same 63-tap low-pass specification (the
functional-interchangeability requirement); the five implementation
parameters span ~1.6k configurations — a third IP domain demonstrating that
the hint taxonomy transfers beyond the paper's two generators.
"""

from __future__ import annotations

from typing import Any, Mapping

from ..core.evaluator import CallableEvaluator
from ..core.genome import Genome
from ..core.hints import HintSet, ParamHints
from ..core.params import ChoiceParam, IntParam, OrderedParam
from ..core.space import DesignSpace
from ..synth.flow import SynthesisFlow
from .fir import (
    MULTIPLIERS,
    STRUCTURES,
    build_fir,
    fir_throughput_msps,
    stopband_attenuation_db,
)

__all__ = ["FIR_TAPS", "fir_space", "FirEvaluator", "fir_evaluator", "fir_area_hints"]

#: Tap count of the reference specification.
FIR_TAPS = 63

#: Serialization factors offered by the generator (1 = fully parallel).
_SERIALIZATIONS = (1, 2, 4, 8, 16, 32)


def _symmetric_fold_limit(config: Mapping[str, Any]) -> bool:
    if config["structure"] != "symmetric":
        return True
    return config["serialization"] <= (FIR_TAPS + 1) // 2


def fir_space() -> DesignSpace:
    """The 5-parameter FIR implementation space (~1.6k points)."""
    return DesignSpace(
        f"fir{FIR_TAPS}_lowpass",
        [
            IntParam("coeff_width", 8, 20),
            IntParam("data_width", 8, 18, step=2),
            ChoiceParam("structure", STRUCTURES),
            OrderedParam("multiplier", MULTIPLIERS),
            OrderedParam("serialization", _SERIALIZATIONS),
        ],
        constraints=[_symmetric_fold_limit],
    )


class FirEvaluator:
    """Synthesize the filter and compute its numerical quality."""

    def __init__(self, flow: SynthesisFlow | None = None):
        self.flow = flow or SynthesisFlow()

    def evaluate(self, genome: Genome | Mapping[str, Any]) -> dict[str, float]:
        config = genome.as_dict() if isinstance(genome, Genome) else dict(genome)
        config.setdefault("taps", FIR_TAPS)
        report = self.flow.run(build_fir(config))
        metrics = report.metrics()
        msps = fir_throughput_msps(config, report.fmax_mhz)
        metrics["throughput_msps"] = msps
        metrics["msps_per_lut"] = msps / max(report.luts, 1)
        metrics["stopband_db"] = stopband_attenuation_db(config["coeff_width"])
        return metrics


def fir_evaluator(flow: SynthesisFlow | None = None) -> CallableEvaluator:
    """Convenience: a core-API evaluator over the FIR generator."""
    evaluator = FirEvaluator(flow)
    return CallableEvaluator(evaluator.evaluate)


def fir_area_hints(confidence: float = 0.8) -> HintSet:
    """Expert hints for minimizing LUTs under the fixed spec.

    Filter-designer knowledge: fold as hard as possible (serialization is
    by far the dominant area lever), exploit symmetry, keep DSP multipliers
    (fabric multipliers explode LUT count), and trim word lengths.
    """
    return HintSet(
        {
            "serialization": ParamHints(importance=95, bias=-1.0),
            "multiplier": ParamHints(importance=80, bias=1.0),
            "structure": ParamHints(
                importance=60,
                bias=-0.8,
                ordering=("symmetric", "transposed", "direct"),
            ),
            "data_width": ParamHints(importance=40, bias=0.8),
            "coeff_width": ParamHints(importance=35, bias=0.8),
        },
        confidence=confidence,
        importance_decay=0.04,
    )
