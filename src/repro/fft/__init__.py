"""FFT substrate: a Spiral-style streaming FFT IP generator.

Implements the paper's second evaluation target: a generator of 1024-point
FFT datapaths whose six implementation parameters (streaming width, radix,
bit width, twiddle storage, scaling policy, architecture) span the ~12k
design points of Section 4.1. Hardware metrics come from the miniature
synthesis flow; the SNR metric is computed by actually simulating the
fixed-point datapath (:mod:`repro.fft.fixedpoint`).
"""

from .fixedpoint import SCALING_MODES, fixed_point_fft, snr_db
from .generator import (
    ARCHITECTURES,
    FFT_N,
    FftConfig,
    TWIDDLE_STORAGE,
    build_fft,
    fft_stages,
    throughput_msps,
)
from .space import FftEvaluator, fft_evaluator, fft_space
from .hints import (
    STRONG_CONFIDENCE,
    WEAK_CONFIDENCE,
    lut_hints,
    throughput_per_lut_hints,
)

__all__ = [
    "FFT_N",
    "FftConfig",
    "build_fft",
    "fft_stages",
    "throughput_msps",
    "ARCHITECTURES",
    "TWIDDLE_STORAGE",
    "SCALING_MODES",
    "fixed_point_fft",
    "snr_db",
    "fft_space",
    "FftEvaluator",
    "fft_evaluator",
    "lut_hints",
    "throughput_per_lut_hints",
    "WEAK_CONFIDENCE",
    "STRONG_CONFIDENCE",
]
