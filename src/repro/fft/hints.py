"""Expert hint sets for the FFT experiments.

In the paper the FFT hints are *expert-provided*: "a developer of the FFT IP
generator set the hints" (Section 4.1/4.2). The vectors below encode what a
streaming-FFT architect knows about how implementation parameters move each
metric:

* LUT count is dominated by streaming width (linear in parallel arithmetic),
  then by bit width (linear in every adder/multiplier), with the iterative
  architecture far cheaper than fully streaming; BRAM twiddles are nearly
  free in LUTs while CORDIC burns logic.
* Throughput-per-LUT favors wide streaming datapaths (fixed control
  overhead amortizes), narrow words, and memory-based twiddles; radix 4 is
  the classic arithmetic sweet spot, expressed as a *target* hint.

Figure 3's "Nautilus w/ 1 or 2 bias hints" variants are obtained by
truncating these vectors with :meth:`HintSet.restricted_to`.
"""

from __future__ import annotations

from ..core.hints import HintSet, ParamHints

__all__ = [
    "lut_hints",
    "throughput_per_lut_hints",
    "WEAK_CONFIDENCE",
    "STRONG_CONFIDENCE",
]

#: Confidence levels for the weakly/strongly guided variants (footnote 2:
#: the two variants "differ only in the confidence hint").
WEAK_CONFIDENCE = 0.35
STRONG_CONFIDENCE = 0.85

#: Scaling modes ordered by the logic they add (unscaled adds none, block
#: floating point adds detection + normalization).
_SCALING_BY_LOGIC = ("unscaled", "per_stage", "block_fp")
#: Architectures ordered by size (iterative reuses one butterfly column).
_ARCH_BY_SIZE = ("iterative", "streaming")


def lut_hints(confidence: float = STRONG_CONFIDENCE) -> HintSet:
    """Expert hints for minimizing LUT count (Figure 6 / Figure 3).

    Biases are stated with respect to the raw metric (LUTs): increasing
    streaming width or bit width increases LUTs, and so on. The engine
    flips them for the minimization objective.
    """
    return HintSet(
        {
            "streaming_width": ParamHints(importance=95, bias=1.0),
            "bit_width": ParamHints(importance=85, bias=0.9, step=3),
            "architecture": ParamHints(
                importance=80, bias=1.0, ordering=_ARCH_BY_SIZE
            ),
            "twiddle_storage": ParamHints(importance=60, bias=0.9),
            "radix": ParamHints(importance=45, bias=0.4),
            "scaling": ParamHints(
                importance=25, bias=0.5, ordering=_SCALING_BY_LOGIC
            ),
        },
        confidence=confidence,
        importance_decay=0.02,
    )


def throughput_per_lut_hints(confidence: float = STRONG_CONFIDENCE) -> HintSet:
    """Expert hints for maximizing throughput per LUT (Figure 7).

    Wide streaming designs amortize control and memory overhead, so the
    ratio improves with width; narrow datapaths improve it further; radix 4
    is the known arithmetic sweet spot, captured as a target hint.
    """
    return HintSet(
        {
            "streaming_width": ParamHints(importance=95, bias=0.9),
            "architecture": ParamHints(
                importance=90, bias=1.0, ordering=_ARCH_BY_SIZE
            ),
            "bit_width": ParamHints(importance=85, bias=-0.9, step=3),
            "radix": ParamHints(importance=55, target=4),
            "twiddle_storage": ParamHints(importance=50, bias=-0.8),
            "scaling": ParamHints(
                importance=25, bias=-0.5, ordering=_SCALING_BY_LOGIC
            ),
        },
        confidence=confidence,
        importance_decay=0.02,
    )
