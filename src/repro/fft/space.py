"""The FFT design space used in the paper's evaluation.

Section 4.1: "approximately 12,000 design instances for the FFT IP (varying
6 parameters)". Six implementation parameters of a fixed 1024-point
transform give 12,600 product points; the streaming-width >= radix
constraint leaves 10,800 structurally feasible designs — sparse, as the
paper's auxiliary-settings discussion anticipates.
"""

from __future__ import annotations

from typing import Any, Mapping

from ..core.evaluator import CallableEvaluator
from ..core.genome import Genome
from ..core.params import ChoiceParam, IntParam, OrderedParam, PowOfTwoParam
from ..core.space import DesignSpace
from ..synth.flow import SynthesisFlow
from .fixedpoint import SCALING_MODES, snr_db
from .generator import (
    ARCHITECTURES,
    TWIDDLE_STORAGE,
    build_fft,
    fft_stages,
    throughput_msps,
)

__all__ = ["fft_space", "FftEvaluator", "fft_evaluator"]


def _width_covers_radix(config: Mapping[str, Any]) -> bool:
    if config["architecture"] != "streaming":
        return True
    return config["streaming_width"] >= config["radix"]


def fft_space(n: int = 1024) -> DesignSpace:
    """Build the 6-parameter FFT design space (~12k points at n=1024).

    Other power-of-two transform sizes reuse the same parameterization;
    the evaluator picks up ``n`` from the space name.
    """
    if n & (n - 1) or n < 64:
        raise ValueError(f"transform size must be a power of two >= 64, got {n}")
    return DesignSpace(
        f"spiral_fft{n}",
        [
            PowOfTwoParam("streaming_width", 1, 64),
            OrderedParam("radix", (2, 4, 8)),
            IntParam("bit_width", 8, 32),
            OrderedParam("twiddle_storage", TWIDDLE_STORAGE),
            ChoiceParam("scaling", SCALING_MODES),
            ChoiceParam("architecture", ARCHITECTURES),
        ],
        constraints=[_width_covers_radix],
    )


class FftEvaluator:
    """Evaluator: elaborate, synthesize and simulate one FFT design point.

    Metrics include hardware implementation quantities (``luts``,
    ``fmax_mhz``...), the domain-specific computed ``snr_db``, and the
    composites the paper optimizes (``throughput_msps``,
    ``msps_per_lut`` — Figure 7's objective).
    """

    def __init__(
        self,
        flow: SynthesisFlow | None = None,
        snr_trials: int = 3,
        n: int = 1024,
    ):
        self.flow = flow or SynthesisFlow()
        self.snr_trials = snr_trials
        self.n = n

    def evaluate(self, genome: Genome | Mapping[str, Any]) -> dict[str, float]:
        config = genome.as_dict() if isinstance(genome, Genome) else dict(genome)
        config.setdefault("n", self.n)
        report = self.flow.run(build_fft(config))
        metrics = report.metrics()
        msps = throughput_msps(config, report.fmax_mhz)
        metrics["throughput_msps"] = msps
        metrics["msps_per_lut"] = msps / max(report.luts, 1)
        metrics["stages"] = float(fft_stages(config))
        metrics["snr_db"] = snr_db(
            config["bit_width"],
            config["scaling"],
            config["radix"],
            n=self.n,
            trials=self.snr_trials,
        )
        return metrics


def fft_evaluator(
    flow: SynthesisFlow | None = None, n: int = 1024
) -> CallableEvaluator:
    """Convenience: a core-API evaluator over the FFT generator."""
    evaluator = FftEvaluator(flow, n=n)
    return CallableEvaluator(evaluator.evaluate)
