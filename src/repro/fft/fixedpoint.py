"""Fixed-point FFT arithmetic simulation — the SNR metric is *computed*.

The paper lists "metrics specific to the IP domain (e.g., SNR values for the
FFT IP)" among the characterized quantities. Rather than modeling SNR with a
formula, this module actually runs the generated datapath's arithmetic: a
decimation-in-time FFT over ``bit_width``-bit two's-complement values with
the configured scaling policy, compared against double-precision
``numpy.fft`` on random inputs.

Scaling policies (the generator's ``scaling`` parameter):

* ``"unscaled"`` — inputs are pre-scaled by 1/N so no stage can overflow;
  cheap hardware, but log2(N) bits of headroom are wasted.
* ``"per_stage"`` — divide by two after every radix-2 stage (rounding);
  the classic fixed-scaling FFT.
* ``"block_fp"`` — block floating point: each stage shifts only when the
  block actually grew, tracking a shared exponent; best SNR, most control
  logic.

The radix matters too: a radix-r butterfly computes log2(r) levels in full
precision internally and rounds once at its output, so higher radices
quantize fewer times.
"""

from __future__ import annotations

import functools
import math

import numpy as np

__all__ = ["SCALING_MODES", "fixed_point_fft", "snr_db"]

SCALING_MODES = ("unscaled", "per_stage", "block_fp")


def _quantize(values: np.ndarray, bit_width: int, frac_bits: int) -> np.ndarray:
    """Round to ``frac_bits`` fractional bits and saturate to ``bit_width``."""
    scale = float(1 << frac_bits)
    ints = np.round(values * scale)
    limit = float(1 << (bit_width - 1))
    ints = np.clip(ints, -limit, limit - 1)
    return ints / scale


def _quantize_complex(values: np.ndarray, bit_width: int, frac_bits: int) -> np.ndarray:
    return (
        _quantize(values.real, bit_width, frac_bits)
        + 1j * _quantize(values.imag, bit_width, frac_bits)
    )


def fixed_point_fft(
    x: np.ndarray,
    bit_width: int,
    scaling: str = "per_stage",
    radix: int = 2,
) -> tuple[np.ndarray, int]:
    """Compute an N-point FFT in simulated fixed-point arithmetic.

    Args:
        x: Complex input vector, |Re|,|Im| < 1, length a power of two.
        bit_width: Two's-complement word length of the datapath.
        scaling: One of :data:`SCALING_MODES`.
        radix: Butterfly radix (2, 4 or 8); controls how often intermediate
            results are rounded back to ``bit_width`` bits.

    Returns:
        (spectrum, block_exponent): the fixed-point spectrum and the number
        of power-of-two scalings applied (so the reference is
        ``fft(x) / 2**block_exponent``).
    """
    if scaling not in SCALING_MODES:
        raise ValueError(f"unknown scaling mode {scaling!r}")
    n = len(x)
    if n & (n - 1) or n < 2:
        raise ValueError(f"FFT length must be a power of two >= 2, got {n}")
    stages = int(math.log2(n))
    frac_bits = bit_width - 1
    quantize_every = max(1, int(math.log2(radix)))

    data = np.asarray(x, dtype=np.complex128)
    exponent = 0
    if scaling == "unscaled":
        data = data / n
        exponent = stages
    data = _quantize_complex(data, bit_width, frac_bits)
    # Bit-reversal permutation (decimation in time).
    indices = np.arange(n)
    reversed_indices = np.zeros(n, dtype=np.int64)
    for bit in range(stages):
        reversed_indices |= ((indices >> bit) & 1) << (stages - 1 - bit)
    data = data[reversed_indices]

    for stage in range(stages):
        half = 1 << stage
        span = half * 2
        twiddle = np.exp(-2j * np.pi * np.arange(half) / span)
        twiddle = _quantize_complex(twiddle, bit_width, frac_bits)
        blocks = data.reshape(n // span, span)
        top = blocks[:, :half].copy()
        bottom = blocks[:, half:] * twiddle
        blocks[:, :half] = top + bottom
        blocks[:, half:] = top - bottom
        data = blocks.reshape(n)

        if scaling == "per_stage":
            data = data / 2.0
            exponent += 1
        elif scaling == "block_fp":
            peak = max(
                float(np.max(np.abs(data.real))),
                float(np.max(np.abs(data.imag))),
                1e-30,
            )
            if peak >= 1.0:
                shift = int(math.ceil(math.log2(peak + 1e-12))) or 1
                data = data / (1 << shift)
                exponent += shift
        is_rounding_stage = (stage + 1) % quantize_every == 0 or stage == stages - 1
        if is_rounding_stage:
            data = _quantize_complex(data, bit_width, frac_bits)
    return data, exponent


@functools.lru_cache(maxsize=512)
def snr_db(
    bit_width: int,
    scaling: str = "per_stage",
    radix: int = 2,
    n: int = 1024,
    trials: int = 3,
    seed: int = 1234,
) -> float:
    """Average output SNR (dB) of the fixed-point FFT vs numpy.fft.

    Deterministic for a given argument tuple (seeded RNG + LRU cache), which
    the offline characterization step relies on.
    """
    rng = np.random.default_rng(seed)
    signal_power = 0.0
    error_power = 0.0
    for _ in range(trials):
        x = (rng.uniform(-0.5, 0.5, n) + 1j * rng.uniform(-0.5, 0.5, n))
        fixed, exponent = fixed_point_fft(x, bit_width, scaling, radix)
        reference = np.fft.fft(x) / (2.0**exponent)
        signal_power += float(np.sum(np.abs(reference) ** 2))
        error_power += float(np.sum(np.abs(reference - fixed) ** 2))
    if error_power <= 0.0:
        return 200.0  # effectively exact
    return 10.0 * math.log10(signal_power / error_power)
