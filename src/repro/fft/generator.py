"""Streaming/iterative FFT datapath generator (Spiral-style substrate).

Stands in for the Spiral FFT IP generator [11] the paper evaluates on. A
configuration selects the implementation of a fixed 1024-point transform —
every design point is functionally interchangeable from the IP user's
perspective, exactly as the paper requires — and :func:`build_fft` elaborates
it into a structural module for the synthesis flow:

* ``architecture``: ``"streaming"`` instantiates every stage (one column of
  butterflies per log_radix(N) stage); ``"iterative"`` instantiates one
  column and recirculates through a working memory.
* ``streaming_width`` (w): complex samples accepted per cycle. Throughput is
  ``w x Fmax`` for streaming designs and ``w x Fmax / stages`` for
  iterative ones.
* ``radix``: butterfly radix; bigger radices need fewer stages (fewer
  memories, fewer rounding points) but each butterfly is larger.
* ``bit_width``: datapath word length; drives every adder/multiplier size
  and the computed SNR (:mod:`repro.fft.fixedpoint`).
* ``twiddle_storage``: BRAM ROMs (cheap LUTs), LUT ROMs, or a CORDIC
  rotator (no memory, lots of logic).
* ``scaling``: overflow policy; block floating point adds detection and
  normalization logic on top of the per-stage path.
"""

from __future__ import annotations

import math
from typing import Any, Mapping

from ..synth.netlist import Module
from ..synth.primitives import (
    Adder,
    BlockRam,
    Counter,
    LogicCloud,
    LutRam,
    Mux,
    Register,
    Rom,
    ComplexMultiplier,
    StreamingPermuter,
)

__all__ = ["FFT_N", "FftConfig", "build_fft", "fft_stages", "throughput_msps"]

#: Transform size: all design points implement the same 1024-point FFT.
FFT_N = 1024

ARCHITECTURES = ("iterative", "streaming")
#: Twiddle sources, ordered cheapest-LUTs first ("lut_rom_shared" is a single
#: ROM time-multiplexed across lanes; "cordic" computes rotations in logic).
TWIDDLE_STORAGE = ("bram_rom", "lut_rom_shared", "lut_rom", "cordic")

#: RAM below this many bits maps to distributed RAM, above it to block RAM.
_LUTRAM_LIMIT_BITS = 4096


class FftConfig:
    """A validated FFT generator configuration."""

    __slots__ = (
        "streaming_width",
        "radix",
        "bit_width",
        "twiddle_storage",
        "scaling",
        "architecture",
        "n",
    )

    def __init__(
        self,
        streaming_width: int,
        radix: int,
        bit_width: int,
        twiddle_storage: str,
        scaling: str,
        architecture: str,
        n: int = FFT_N,
    ):
        if architecture not in ARCHITECTURES:
            raise ValueError(f"unknown architecture {architecture!r}")
        if twiddle_storage not in TWIDDLE_STORAGE:
            raise ValueError(f"unknown twiddle_storage {twiddle_storage!r}")
        if radix not in (2, 4, 8):
            raise ValueError(f"radix must be 2, 4 or 8, got {radix}")
        if architecture == "streaming" and streaming_width < radix:
            raise ValueError(
                "streaming architectures need streaming_width >= radix "
                f"(got w={streaming_width}, r={radix})"
            )
        if streaming_width & (streaming_width - 1):
            raise ValueError("streaming_width must be a power of two")
        self.streaming_width = streaming_width
        self.radix = radix
        self.bit_width = bit_width
        self.twiddle_storage = twiddle_storage
        self.scaling = scaling
        self.architecture = architecture
        self.n = n

    @classmethod
    def from_mapping(cls, config: Mapping[str, Any]) -> "FftConfig":
        return cls(
            streaming_width=config["streaming_width"],
            radix=config["radix"],
            bit_width=config["bit_width"],
            twiddle_storage=config["twiddle_storage"],
            scaling=config["scaling"],
            architecture=config["architecture"],
            n=config.get("n", FFT_N),
        )

    def name(self) -> str:
        return (
            f"fft{self.n}_{self.architecture}_w{self.streaming_width}"
            f"r{self.radix}b{self.bit_width}_{self.twiddle_storage}"
            f"_{self.scaling}"
        )


def fft_stages(config: FftConfig | Mapping[str, Any]) -> int:
    """Number of radix-r stages for the transform (mixed-radix tail)."""
    cfg = config if isinstance(config, FftConfig) else FftConfig.from_mapping(config)
    return math.ceil(math.log2(cfg.n) / math.log2(cfg.radix))


def _butterfly_adders(radix: int) -> int:
    """Real adders in one radix-r butterfly (2 per complex addition)."""
    complex_adds = radix * int(math.log2(radix))
    return 2 * max(complex_adds, 2)


def _add_memory(module: Module, name: str, depth: int, width: int, copies: int) -> None:
    """Pick LUTRAM or BRAM by capacity, mirroring how XST infers RAM style."""
    if depth * width <= _LUTRAM_LIMIT_BITS:
        module.add(name, LutRam(depth, width), replicate=copies)
    else:
        module.add(name, BlockRam(depth, width), replicate=copies)


def _add_twiddles(
    module: Module, cfg: FftConfig, name: str, units: int, points_per_unit: int
) -> str | None:
    """Twiddle factor source for one column; returns the rotator node name
    when the twiddle source *replaces* the complex multipliers (CORDIC)."""
    width = 2 * cfg.bit_width
    if cfg.twiddle_storage == "bram_rom":
        module.add(name, BlockRam(max(points_per_unit, 32), width), replicate=units)
        return None
    if cfg.twiddle_storage == "lut_rom":
        module.add(name, Rom(max(points_per_unit, 16), width), replicate=units)
        return None
    if cfg.twiddle_storage == "lut_rom_shared":
        # One ROM feeds all lanes through a distribution mux.
        module.add(name, Rom(max(points_per_unit, 16), width))
        module.add(f"{name}_dist", Mux(width, max(units, 2)))
        module.connect(name, f"{name}_dist")
        return None
    # CORDIC rotator: pipelined shift-add stages replace the multipliers.
    module.add(
        name,
        LogicCloud(
            luts=6 * cfg.bit_width,
            levels=2,
            ffs=8 * cfg.bit_width,
        ),
        replicate=units,
    )
    return name


def build_fft(config: FftConfig | Mapping[str, Any]) -> Module:
    """Elaborate an FFT configuration into a synthesizable module.

    The module contains one or ``stages`` butterfly columns; each column is
    a chain of butterfly adder levels -> twiddle rotation (pipelined complex
    multipliers, or CORDIC rotators) -> inter-stage stride permutation
    (switch network + lane memories) with a pipeline register per column, so
    the critical path is one column's arithmetic regardless of transform
    size — matching streaming FFT practice.
    """
    cfg = config if isinstance(config, FftConfig) else FftConfig.from_mapping(config)
    module = Module(cfg.name())
    w = cfg.streaming_width
    module.add_port("sample_in", 2 * cfg.bit_width * w, "in")
    module.add_port("sample_out", 2 * cfg.bit_width * w, "out")

    stages = fft_stages(cfg)
    columns = stages if cfg.architecture == "streaming" else 1
    butterflies_per_column = max(1, w // cfg.radix)
    lanes_with_twiddle = max(1, w - butterflies_per_column)
    adder_levels = max(1, int(math.log2(cfg.radix)))
    adders_per_level = _butterfly_adders(cfg.radix) * butterflies_per_column // adder_levels

    module.add("input_reg", Register(2 * cfg.bit_width), replicate=w)
    previous = "input_reg"
    for col in range(columns):
        # Butterfly: log2(radix) chained adder levels (the real arithmetic
        # depth of a radix-r dragonfly of complex additions).
        level_names = []
        for level in range(adder_levels):
            bfly = f"stage{col}_bfly_l{level}"
            module.add(bfly, Adder(cfg.bit_width), replicate=max(adders_per_level, 2))
            level_names.append(bfly)
        module.chain(previous, *level_names)
        bfly_out = level_names[-1]
        # Per-output rounding/saturation after the butterfly.
        sat = f"stage{col}_round_sat"
        module.add(
            sat,
            LogicCloud(luts=cfg.bit_width // 4 + 1, levels=1),
            replicate=w,
        )
        module.connect(bfly_out, sat)

        twiddle = f"stage{col}_twiddle"
        rotator = _add_twiddles(
            module, cfg, twiddle, lanes_with_twiddle, cfg.n // max(w, 1)
        )
        if rotator is None:
            cmult = f"stage{col}_twiddle_mult"
            use_dsp = cfg.bit_width <= 2 * 18  # DSP cascades cover the space
            module.add(
                cmult,
                ComplexMultiplier(cfg.bit_width, use_dsp=use_dsp),
                replicate=lanes_with_twiddle,
            )
            if cfg.twiddle_storage == "lut_rom_shared":
                module.connect(f"{twiddle}_dist", cmult)
            else:
                module.connect(twiddle, cmult)
            rotation_out = cmult
        else:
            rotation_out = rotator
        module.connect(sat, rotation_out)

        switch = f"stage{col}_permute"
        module.add(switch, StreamingPermuter(w, 2 * cfg.bit_width))
        mem = f"stage{col}_perm_mem"
        # Stride-permutation delay lines average N/(2w) samples per lane.
        lane_depth = max(cfg.n // max(2 * w, 1), 4)
        _add_memory(module, mem, lane_depth, 2 * cfg.bit_width, w)
        agu = f"stage{col}_agu"
        module.add(
            agu,
            LogicCloud(
                luts=10 + 2 * max(cfg.n - 1, 2).bit_length(), levels=2, ffs=8
            ),
        )
        pipe = f"stage{col}_reg"
        module.add(pipe, Register(2 * cfg.bit_width), replicate=w)

        module.connect(rotation_out, switch)
        module.connect(switch, pipe)
        module.connect(switch, mem)
        module.connect(mem, pipe)
        module.connect(agu, mem)
        previous = pipe

    if cfg.architecture == "iterative":
        # Recirculation: working memory ping-pong plus the return path mux.
        work_depth = max(2 * cfg.n // max(w, 1), 4)
        _add_memory(module, "work_mem", work_depth, 2 * cfg.bit_width, 2 * w)
        module.add("recirc_mux", Mux(2 * cfg.bit_width, 2), replicate=w)
        module.connect(previous, "work_mem")
        module.connect("work_mem", "recirc_mux")
        module.connect("recirc_mux", "stage0_bfly_l0")

    if cfg.scaling == "block_fp":
        # Block exponent detection + barrel-shift normalization per lane.
        module.add(
            "bfp_detect",
            LogicCloud(luts=3 * cfg.bit_width, levels=2, ffs=6),
            replicate=w,
        )
        module.add(
            "bfp_shift",
            LogicCloud(
                luts=cfg.bit_width * math.ceil(math.log2(cfg.bit_width)) // 2,
                levels=2,
            ),
            replicate=w,
        )
        module.connect(previous, "bfp_detect")
        module.connect("bfp_detect", "bfp_shift")
        previous = "bfp_shift"
    elif cfg.scaling == "per_stage":
        module.add("scale_round", LogicCloud(luts=cfg.bit_width // 2, levels=1), replicate=w)
        module.connect(previous, "scale_round")
        previous = "scale_round"

    module.add(
        "control_fsm",
        LogicCloud(luts=110 + 6 * stages, levels=2, ffs=60),
    )
    # Stream interface, handshaking and configuration/status registers —
    # the fixed cost every generated core pays regardless of datapath size.
    module.add("io_interface", LogicCloud(luts=72, levels=2, ffs=96))
    module.add(
        "twiddle_agu",
        LogicCloud(luts=28 + cfg.bit_width, levels=2, ffs=16),
        replicate=columns,
    )
    module.connect("io_interface", "input_reg")
    module.connect("twiddle_agu", "control_fsm")
    # Input/output reorder buffering (natural <-> bit-reversed order).
    _add_memory(module, "reorder_mem", max(2 * cfg.n // max(w, 1), 4), 2 * cfg.bit_width, w)
    module.add("reorder_agu", LogicCloud(luts=24 + 2 * max(cfg.n - 1, 2).bit_length(), levels=2, ffs=12))
    module.connect("reorder_agu", "reorder_mem")

    module.add("addr_counters", Counter(max(cfg.n - 1, 2).bit_length()), replicate=2)
    module.connect("addr_counters", "control_fsm")
    module.connect("control_fsm", "stage0_bfly_l0")

    module.add("output_reg", Register(2 * cfg.bit_width), replicate=w)
    if cfg.architecture == "iterative":
        module.connect(previous, "reorder_mem")
        module.connect("reorder_mem", "output_reg")
    module.connect(previous, "output_reg")
    return module


def throughput_msps(
    config: FftConfig | Mapping[str, Any], fmax_mhz: float
) -> float:
    """Sustained throughput in million samples per second.

    Counts real samples (I and Q each), i.e. two per complex point per
    cycle-lane — the convention that makes a streaming width-16 design at
    ~250 MHz land in the multi-GSPS regime the Spiral generator reports.
    Streaming designs accept ``w`` complex samples per cycle continuously;
    iterative designs reuse one column for all stages, dividing throughput.
    """
    cfg = config if isinstance(config, FftConfig) else FftConfig.from_mapping(config)
    per_cycle = 2 * cfg.streaming_width
    if cfg.architecture == "iterative":
        return fmax_mhz * per_cycle / fft_stages(cfg)
    return fmax_mhz * per_cycle
