"""Command-line interface: ``nautilus`` (or ``python -m repro``).

Subcommands:

* ``characterize`` — build (or refresh) the offline datasets (Section 4.1's
  cluster step).
* ``optimize`` — run a baseline or guided search on one of the bundled IP
  spaces and print the result.
* ``figure`` — regenerate a paper figure and render it as an ASCII chart
  (optionally dumping the series to CSV).
* ``estimate`` — run the 80-design sweep and print the derived hints.
* ``simulate`` — run the flit-level NoC simulator on a topology and print
  the latency/throughput curve.
* ``report`` — compile the benchmark artifacts in ``results/`` into
  RESULTS.md, or (``--html <id>``) render one campaign's status, curve,
  health, and hint-attribution report into a standalone HTML file.
* ``serve`` — run the search-campaign daemon (REST API; see
  ``docs/service.md``). ``--log-json`` switches to structured JSON logs,
  ``--trace-max-events`` caps per-campaign event logs, ``--fleet`` opens
  a coordinator for distributed evaluation workers, ``--archive`` records
  every paid evaluation into the cross-campaign design archive.
* ``archive`` — inspect the cross-campaign design archive offline:
  ``stats``, ``query`` (top designs for a named query), ``export-hints``
  (mine a hints JSON from archived rows), and ``import`` (backfill from
  a persistent eval cache).
* ``cache`` — maintain the persistent evaluation cache (``compact``
  rewrites each space file dropping duplicate and torn rows).
* ``worker`` — run one evaluation-fleet worker daemon against a
  coordinator (see ``docs/distributed.md``).
* ``fleet`` — show a daemon's evaluation-fleet status (workers, queue
  depth, retry/requeue counters).
* ``submit`` / ``status`` — submit campaigns to a running daemon and poll
  their progress, search curves, and health diagnostics.
* ``trace`` — dump a campaign's structured RunEvent log as JSONL.
* ``profile`` — phase budget, straggler report and critical path over a
  tracing campaign's span tree; ``--perfetto`` exports Chrome trace-event
  JSON loadable at https://ui.perfetto.dev.
* ``hints`` — print a campaign's aggregated hint-attribution report.
* ``top`` — live terminal dashboard over every campaign the daemon runs.

See ``docs/observability.md`` for the telemetry these commands surface.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from .analysis import ascii_plot
from .core import (
    DatasetEvaluator,
    GAConfig,
    GeneticSearch,
    NautilusError,
    RandomSearch,
    estimate_hints,
    hintset_from_json,
    hintset_to_json,
    maximize,
    minimize,
)
from .queries import (
    MULTI_QUERIES,
    QUERIES,
    build_hints,
    load_dataset,
    resolve_objective,
)

__all__ = ["main"]

_FIGURES = ("fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7")


def _read_hints_file(path: str) -> dict:
    """Load a hints JSON file (as written by ``nautilus estimate --output``)."""
    try:
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
    except OSError as exc:
        raise NautilusError(f"cannot read hints file {path!r}: {exc}") from None
    except json.JSONDecodeError as exc:
        raise NautilusError(f"hints file {path!r} is not valid JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise NautilusError(
            f"hints file {path!r} must contain a JSON object, "
            f"got {type(payload).__name__}"
        )
    return payload


def _cmd_characterize(args: argparse.Namespace) -> int:
    from .dataset import data_dir, fft_dataset, fir_dataset, router_dataset

    targets = {"noc": router_dataset, "fft": fft_dataset, "fir": fir_dataset}
    names = [args.space] if args.space != "all" else list(targets)
    for name in names:
        dataset = targets[name](refresh=args.refresh)
        print(
            f"{name}: {len(dataset)} designs characterized "
            f"({dataset.feasible_count} feasible) -> {data_dir()}"
        )
    return 0


def _cmd_optimize(args: argparse.Namespace) -> int:
    query = QUERIES[args.query]
    dataset = load_dataset(query.space)
    objective, hint_kind = resolve_objective(query, args.metric, args.direction)
    evaluator = DatasetEvaluator(dataset)
    if args.hints is not None and args.engine != "nautilus":
        raise NautilusError(
            f"--hints requires the nautilus engine, not {args.engine!r}"
        )
    if args.engine == "random":
        search = RandomSearch(
            dataset.space, evaluator, objective, budget=args.budget, seed=args.seed
        )
    else:
        hints = None
        if args.hints is not None:
            hints = hintset_from_json(_read_hints_file(args.hints), dataset.space)
            if args.confidence is not None:
                hints = hints.with_confidence(args.confidence)
        elif args.engine == "nautilus" and hint_kind is not None:
            hints = build_hints(hint_kind, args.confidence)
        search = GeneticSearch(
            dataset.space,
            evaluator,
            objective,
            GAConfig(generations=args.generations, seed=args.seed),
            hints=hints,
        )
    result = search.run()
    best = dataset.best_value(objective)
    print(
        f"query      : {args.query} "
        f"({objective.direction} {objective.name})"
    )
    print(f"engine     : {args.engine}")
    print(f"best found : {result.best_raw:.4g} (space optimum {best:.4g})")
    print(f"evaluated  : {result.distinct_evaluations} distinct designs")
    stats = result.eval_stats
    print(
        f"eval stack : {stats.requests} requests, {stats.cache_hits} cache "
        f"hits ({stats.hit_rate:.0%}), {stats.batches} batches "
        f"(max {stats.max_batch}), {stats.wall_time_s:.3f}s"
    )
    print(f"score      : {dataset.score_percent(objective, result.best_raw):.2f}% percentile")
    print("configuration:")
    for key, value in result.best_config.items():
        print(f"  {key} = {value}")
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    from . import experiments

    kwargs = {}
    if args.name not in ("fig1", "fig2"):
        kwargs = {"runs": args.runs, "generations": args.generations}
        if args.name == "fig5":
            kwargs["generations"] = min(args.generations, 20)
    builder = getattr(experiments, args.name.replace("fig", "figure"))
    built = builder(**kwargs)
    figures = built if isinstance(built, tuple) else (built,)
    for figure in figures:
        print(ascii_plot(figure, logx=figure.name.startswith("fig2"),
                         logy=figure.name.startswith("fig2")))
        for line in figure.summary_rows():
            print(line)
        if args.csv:
            path = f"{figure.name}.csv"
            figure.to_csv(path)
            print(f"series written to {path}")
        print()
    return 0


def _cmd_estimate(args: argparse.Namespace) -> int:
    query = QUERIES[args.query]
    dataset = load_dataset(query.space)
    objective = (
        maximize(query.metric)
        if query.direction == "max"
        else minimize(query.metric)
    )
    hints, used = estimate_hints(
        dataset.space,
        DatasetEvaluator(dataset),
        objective,
        budget=args.budget,
        seed=args.seed,
    )
    if args.confidence is not None:
        hints = hints.with_confidence(args.confidence)
    print(f"estimated hints for {args.query} using {used} designs:")
    for name in dataset.space.param_names:
        if name in hints.params:
            h = hints.params[name]
            print(f"  {name:18s} importance={h.importance:3d} bias={h.bias:+.2f}")
        else:
            print(f"  {name:18s} (no signal)")
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(hintset_to_json(hints), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(
            f"hints written to {args.output} — feed them back with "
            f"'nautilus optimize {args.query} --hints {args.output}' or "
            f"'nautilus submit {args.query} --hints {args.output}'"
        )
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from .noc import (
        NetworkSimulator,
        build_topology,
        default_router_config,
        make_pattern,
        saturation_throughput,
    )

    topology = build_topology(args.topology, args.endpoints)
    config = default_router_config(
        topology.router_radix,
        num_vcs=args.vcs,
        buffer_depth=args.buffer_depth,
    )
    simulator = NetworkSimulator(topology, config, routing=args.routing)
    pattern = make_pattern(args.pattern)
    print(
        f"{args.topology} x{args.endpoints} endpoints, "
        f"{topology.num_routers} routers radix {topology.router_radix}, "
        f"{args.vcs} VCs x depth {args.buffer_depth}, {args.pattern} traffic"
    )
    print(f"{'offered':>8s} {'delivered':>10s} {'latency cy':>11s} {'blocked':>8s}")
    for rate in (0.02, 0.05, 0.1, 0.2, 0.35, 0.5):
        report = simulator.run(rate, cycles=args.cycles, pattern=pattern)
        print(
            f"{report.offered_rate:8.2f} {report.delivered_rate:10.3f} "
            f"{report.avg_latency_cycles:11.1f} {report.blocked_fraction:8.2%}"
        )
    saturation = saturation_throughput(simulator, cycles=args.cycles)
    print(f"saturation throughput: {saturation:.3f} flits/endpoint/cycle")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    if args.html:
        from .obs.htmlreport import render_campaign_html
        from .service import ServiceClient, ServiceError

        client = ServiceClient(host=args.host, port=args.port)
        status = client.status(args.html)
        curve = client.curve(args.html)
        try:
            hints = client.hints(args.html)
        except ServiceError:
            hints = None
        try:
            spans = client.spans(args.html)
        except ServiceError:
            spans = None
        output = args.output or f"campaign-{args.html}.html"
        with open(output, "w", encoding="utf-8") as handle:
            handle.write(render_campaign_html(status, curve=curve,
                                              hint_report=hints,
                                              spans=spans))
        print(f"html report written to {output}")
        return 0
    from .experiments import generate_report

    path = generate_report(args.results_dir, args.output)
    print(f"report written to {path}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .service import SearchService

    service = SearchService(
        args.dir,
        host=args.host,
        port=args.port,
        workers=args.workers,
        quiet=not args.verbose,
        eval_cache=args.eval_cache,
        trace_max_events=args.trace_max_events,
        log_json=args.log_json,
        fleet=args.fleet,
        fleet_host=args.host,
        fleet_port=args.fleet_port,
        archive=args.archive,
    )
    print(f"nautilus daemon serving on {service.address} (store: {args.dir})")
    if service.eval_cache is not None:
        print(f"persistent eval cache: {service.eval_cache.root}")
    if service.archive is not None:
        print(f"design archive: {service.archive.root}")
    if service.fleet is not None:
        print(
            f"evaluation fleet on {service.fleet_address} — connect workers "
            f"with: nautilus worker --connect {service.fleet_address}"
        )
    print(
        "POST /campaigns, GET /campaigns/<id>[/curve|/trace|/spans|/hints], "
        "GET /fleet, GET /metrics[?format=prometheus]; Ctrl-C stops"
    )
    service.serve_forever()
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    from .distributed import FleetWorker

    host, _, port = args.connect.rpartition(":")
    if not host or not port.isdigit():
        print(
            f"error: --connect must be host:port, got {args.connect!r}",
            file=sys.stderr,
        )
        return 2
    worker = FleetWorker(
        host,
        int(port),
        spaces=args.spaces,
        name=args.name,
        slots=args.slots,
    )
    print(
        f"worker {worker.name} connecting to {args.connect} "
        f"(slots={worker.slots})"
    )
    try:
        worker.run()
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        worker.stop()
    except Exception as exc:
        print(f"worker stopped: {exc}", file=sys.stderr)
        return 1
    print(
        f"worker {worker.name} disconnected after "
        f"{worker.tasks_served} evaluations in {worker.batches_served} batches"
    )
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    from .service import ServiceClient

    client = ServiceClient(host=args.host, port=args.port)
    status = client.fleet()
    if args.json:
        json.dump(status, sys.stdout, indent=2)
        print()
        return 0
    if not status.get("enabled"):
        print("fleet: disabled (start the daemon with --fleet)")
        return 0
    totals = status.get("totals", {})
    print(
        f"fleet on {status['address']}: {status['live_workers']} worker(s), "
        f"{status['queue_depth']} queued, {status['in_flight']} in flight"
    )
    print(
        f"totals: {totals.get('dispatched', 0)} dispatched, "
        f"{totals.get('completed', 0)} completed, "
        f"{totals.get('retried', 0)} retried, "
        f"{totals.get('requeued', 0)} requeued, "
        f"{totals.get('exhausted', 0)} exhausted, "
        f"{totals.get('local_fallback', 0)} served locally"
    )
    rows = status.get("workers", []) + status.get("departed", [])
    if rows:
        print(
            f"{'worker':24s} {'state':10s} {'spaces':20s} {'done':>6s} "
            f"{'fail':>5s} {'retry':>5s} {'requeue':>7s} {'hb age':>7s} "
            f"{'rate/s':>8s}"
        )
    for row in rows:
        state = row.get("departed") or "live"
        print(
            f"{row['name']:24s} {state:10s} "
            f"{','.join(row['spaces']):20s} {row['completed']:6d} "
            f"{row['failed']:5d} {row['retried']:5d} {row['requeued']:7d} "
            f"{row['heartbeat_age_s']:7.1f} {row['throughput_per_s']:8.2f}"
        )
    return 0


def _archive_objective(query_name: str):
    """(query, dataset, objective, fingerprint) for an offline archive command."""
    query = QUERIES[query_name]
    dataset = load_dataset(query.space)
    objective = (
        maximize(query.metric)
        if query.direction == "max"
        else minimize(query.metric)
    )
    evaluator = DatasetEvaluator(dataset)
    return query, dataset, objective, evaluator.fingerprint


def _cmd_archive_stats(args: argparse.Namespace) -> int:
    from .archive import DesignArchive

    stats = DesignArchive(args.dir).stats()
    if args.json:
        json.dump(stats, sys.stdout, indent=2, sort_keys=True)
        print()
        return 0
    print(
        f"archive {args.dir}: {stats['rows']} rows in {stats['files']} "
        f"file(s) ({stats['feasible']} feasible, "
        f"{stats['infeasible']} infeasible)"
    )
    for space, count in sorted(stats["spaces"].items()):
        print(f"  space {space:12s} {count} rows")
    for campaign, count in sorted(stats["campaigns"].items()):
        print(f"  campaign {campaign:20s} {count} rows")
    return 0


def _cmd_archive_query(args: argparse.Namespace) -> int:
    from .archive import DesignArchive

    query, dataset, objective, fingerprint = _archive_objective(args.query)
    rows = DesignArchive(args.dir).top_k(
        dataset.space, fingerprint, objective, k=args.top
    )
    if args.json:
        json.dump(rows, sys.stdout, indent=2, sort_keys=True)
        print()
        return 0
    if not rows:
        print(
            f"no archived designs for {args.query} — run campaigns with "
            f"'nautilus serve --archive' or backfill with "
            f"'nautilus archive import'"
        )
        return 0
    print(
        f"top {len(rows)} archived designs for {args.query} "
        f"({objective.direction} {objective.name}):"
    )
    for rank, row in enumerate(rows, 1):
        config = " ".join(f"{k}={v}" for k, v in row["config"].items())
        campaign = f" [{row['campaign']}]" if row.get("campaign") else ""
        print(f"  {rank:2d}. {row['raw']:.4g}{campaign}  {config}")
    return 0


def _cmd_archive_export_hints(args: argparse.Namespace) -> int:
    from .archive import DesignArchive, mine_hints

    query, dataset, objective, fingerprint = _archive_objective(args.query)
    hints, used = mine_hints(
        DesignArchive(args.dir),
        dataset.space,
        objective,
        fingerprint,
        confidence=args.confidence,
        min_rows=args.min_rows,
    )
    if not used:
        raise NautilusError(
            f"not enough archived rows for {args.query} "
            f"(need {args.min_rows}); run campaigns with "
            f"'nautilus serve --archive' or lower --min-rows"
        )
    # The miner works on engine-internal (maximized) scores; exported
    # hints re-enter through StaticHints, which flips bias/ordering for
    # minimizing objectives — pre-flip so the round trip is neutral.
    if not objective.maximizing:
        hints = hints.for_minimization()
    print(f"archive-mined hints for {args.query} using {used} designs:")
    for name in dataset.space.param_names:
        if name in hints.params:
            h = hints.params[name]
            target = f" target={h.target}" if h.target is not None else ""
            print(
                f"  {name:18s} importance={h.importance:3d} "
                f"bias={h.bias:+.2f}{target}"
            )
        else:
            print(f"  {name:18s} (no signal)")
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(hintset_to_json(hints), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(
            f"hints written to {args.output} — feed them back with "
            f"'nautilus optimize {args.query} --hints {args.output}' or "
            f"'nautilus submit {args.query} --hints {args.output}'"
        )
    return 0


def _cmd_archive_import(args: argparse.Namespace) -> int:
    from .archive import DesignArchive

    report = DesignArchive(args.dir).import_cache(
        args.source, campaign=args.campaign
    )
    print(
        f"imported {report['imported']} row(s) from {report['files']} cache "
        f"file(s) ({report['skipped']} skipped) into {args.dir}"
    )
    return 0


def _cmd_cache_compact(args: argparse.Namespace) -> int:
    from .core.evalstack import PersistentCache

    report = PersistentCache(args.dir).compact()
    for name, cell in sorted(report["files"].items()):
        print(
            f"  {name:24s} {cell['rows']} rows kept, "
            f"{cell['reclaimed']} reclaimed"
        )
    print(
        f"compacted {args.dir}: {report['rows']} rows kept, "
        f"{report['reclaimed']} duplicate/torn row(s) reclaimed"
    )
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from .service import CampaignSpec, ServiceClient

    client = ServiceClient(host=args.host, port=args.port)
    spec = CampaignSpec(
        query=args.query,
        engine=args.engine,
        generations=args.generations,
        seed=args.seed,
        priority=args.priority,
        confidence=args.confidence,
        budget=args.budget,
        trace_max_events=args.trace_max_events,
        tracing=args.tracing,
        label=args.label,
    )
    payload = spec.to_json()
    # --workers and --hints ride as raw fields so validation happens
    # server-side (a bad value answers 400 with a JSON error — field-level
    # for hints — not a local traceback).
    if args.workers is not None:
        payload["workers"] = args.workers
    if args.warm_start is not None:
        payload["warm_start"] = args.warm_start
    if args.hints is not None:
        payload["hints"] = _read_hints_file(args.hints)
    campaign_id = client.submit(payload)
    print(campaign_id)
    if args.wait:
        status = client.wait(campaign_id, timeout=args.timeout)
        print(f"state      : {status['state']}")
        if "best_raw" in status:
            print(f"best found : {status['best_raw']:.4g}")
            print(f"evaluated  : {status['distinct_evaluations']} distinct designs")
        if "front" in status:
            print(f"front      : {len(status['front'])} non-dominated designs")
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    from .service import ServiceClient

    client = ServiceClient(host=args.host, port=args.port)
    if args.id is None:
        campaigns = client.list_campaigns()
        metrics = client.metrics()
        eval_times = metrics.get("campaign_eval_time_s", {})
        evals = metrics.get("campaign_evaluations", {})
        if not campaigns:
            print("no campaigns")
        for status in campaigns:
            cid = status["id"]
            best = (
                f" best={status['best_raw']:.4g}" if "best_raw" in status else ""
            )
            timing = (
                f" evals={evals[cid]} eval_time={eval_times[cid]:.3f}s"
                if cid in eval_times
                else ""
            )
            print(
                f"{cid}  {status['state']:9s} "
                f"{status['spec']['query']}/{status['spec']['engine']} "
                f"gen={status['generations_done']}{best}{timing}"
            )
        print(
            f"service: {metrics['evaluations_total']} evaluations, "
            f"cache hit rate {metrics['cache_hit_rate']:.0%}, "
            f"persistent hits {metrics['persistent_hits_total']} "
            f"({metrics['persistent_cache_hit_rate']:.0%}), "
            f"eval time {metrics['eval_time_s']:.3f}s"
        )
        return 0
    status = client.status(args.id)
    for key in ("id", "state", "generations_done", "best_raw",
                "distinct_evaluations", "stop_reason", "error"):
        if key in status:
            print(f"{key:21s}: {status[key]}")
    print(f"{'query':21s}: {status['spec']['query']} ({status['spec']['engine']})")
    health = status.get("health")
    if health:
        print(
            f"{'health':21s}: diversity={health['diversity']:.3f} "
            f"dup={health['duplicate_rate']:.0%} "
            f"infeasible={health['infeasible_rate']:.0%} "
            f"velocity={health['convergence_velocity']:+.4g} "
            f"stall_risk={health['stall_risk']:.2f} "
            f"(stalled {health['stalled_generations']} gen)"
        )
    if "front" in status:
        print(f"{'pareto front':21s}: {len(status['front'])} designs")
        for raws in status["front"]:
            print("  " + "  ".join(f"{value:.4g}" for value in raws))
    if args.curve:
        print(f"{'generation':>10s} {'evals':>8s} {'best':>12s}")
        for point in client.curve(args.id):
            print(
                f"{point['generation']:10d} {point['distinct_evaluations']:8d} "
                f"{point['best_raw']:12.4g}"
            )
    if args.trace:
        operators = (
            client.metrics()
            .get("campaign_operator_time_s", {})
            .get(args.id, {})
        )
        if operators:
            print("operator time:")
            for operator in sorted(operators):
                print(f"  {operator:12s} {operators[operator]:.3f}s")
        print("recent events:")
        for event in client.trace(args.id, limit=args.trace_limit):
            kind = event.get("kind", "?")
            generation = event.get("generation")
            detail = {
                k: v
                for k, v in event.items()
                if k not in ("seq", "kind", "generation")
            }
            print(f"  [{generation}] {kind} {json.dumps(detail, sort_keys=True)}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from .service import ServiceClient

    client = ServiceClient(host=args.host, port=args.port)
    for event in client.trace(args.id, limit=args.limit):
        print(json.dumps(event, sort_keys=True))
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from .obs.tracing import (
        critical_path,
        perfetto_export,
        phase_budget,
        straggler_report,
        validate_accounting,
    )
    from .service import ServiceClient

    client = ServiceClient(host=args.host, port=args.port)
    spans = client.spans(args.id)
    if not spans:
        print(
            f"{args.id}: no spans recorded — submit the campaign with "
            f"--tracing to profile it",
            file=sys.stderr,
        )
        return 1
    budget = phase_budget(spans)
    stragglers = straggler_report(spans)
    path = critical_path(spans)
    accounting = validate_accounting(spans)
    if args.perfetto:
        with open(args.perfetto, "w", encoding="utf-8") as handle:
            json.dump(perfetto_export(spans), handle)
        print(
            f"perfetto trace written to {args.perfetto} — load it at "
            f"https://ui.perfetto.dev or chrome://tracing"
        )
    if args.json:
        print(
            json.dumps(
                {
                    "phase_budget": budget,
                    "stragglers": stragglers,
                    "critical_path": path,
                    "accounting": accounting,
                },
                sort_keys=True,
                indent=2,
            )
        )
        return 0
    generations = budget["generations"]
    print(
        f"{args.id}: {len(spans)} spans, {len(generations)} generation(s), "
        f"{budget['wall_time_s']:.3f}s wall "
        f"(phase coverage {budget['coverage']:.0%})"
    )
    if not accounting["ok"]:
        print(f"accounting: {len(accounting['errors'])} violation(s)")
        for error in accounting["errors"][:5]:
            print(f"  {error}")
    total_wall = budget["wall_time_s"] or 1.0
    print("phase budget:")
    for label, seconds in sorted(
        budget["phases"].items(), key=lambda kv: -kv[1]
    ):
        print(f"  {label:12s} {seconds:9.3f}s {seconds / total_wall:6.1%}")
    if stragglers:
        print("eval batches (slowest task per batch):")
        print(
            f"  {'gen':>4s} {'tasks':>5s} {'wall':>8s} {'worker':20s} "
            f"{'total':>8s} {'exec':>8s} {'queue':>8s} {'retry':>5s}"
        )
        for entry in stragglers:
            slow = entry["slowest"]
            gen = entry["generation"]
            print(
                f"  {gen if gen is not None else '?':>4} "
                f"{entry['tasks']:5d} {entry['wall_time_s']:8.3f} "
                f"{slow['worker']:20s} {slow['total_s']:8.3f} "
                f"{slow['exec_s']:8.3f} {slow['queue_s']:8.3f} "
                f"{slow['retries']:5d}"
            )
    if path:
        print("critical path:")
        for node in path:
            attrs = node["attrs"]
            detail = ""
            if node["name"] == "generation":
                detail = f" #{attrs.get('generation', '?')}"
            elif node["name"] == "phase":
                detail = f" {attrs.get('phase', '?')}"
            elif attrs.get("worker"):
                detail = f" on {attrs['worker']}"
            print(f"  {node['name']}{detail}  {node['duration_s']:.3f}s")
    return 0


def _cmd_hints(args: argparse.Namespace) -> int:
    from .service import ServiceClient

    client = ServiceClient(host=args.host, port=args.port)
    report = client.hints(args.id)
    if args.json:
        print(json.dumps(report, sort_keys=True, indent=2))
        return 0
    hinted = "guided" if report.get("hinted") else "unguided"
    confidence = report.get("confidence")
    conf = f", confidence {confidence:.2f}" if confidence is not None else ""
    print(
        f"{args.id}: {report['generations']} generations, "
        f"{report['children']} children bred ({hinted}{conf})"
    )
    header = (
        f"{'scope':18s} {'channel':9s} {'proposals':>9s} {'feasible':>8s} "
        f"{'improved':>8s} {'rate':>6s} {'mean Δ':>10s}"
    )
    print(header)
    for channel, cell in report.get("channels", {}).items():
        print(
            f"{'(all params)':18s} {channel:9s} {cell['proposals']:9d} "
            f"{cell['feasible']:8d} {cell['improved']:8d} "
            f"{cell['improvement_rate']:6.0%} {cell['mean_delta']:+10.4g}"
        )
    for name, param in report.get("params", {}).items():
        for channel, cell in param.get("channels", {}).items():
            print(
                f"{name:18s} {channel:9s} {cell['proposals']:9d} "
                f"{cell['feasible']:8d} {cell['improved']:8d} "
                f"{cell['improvement_rate']:6.0%} {cell['mean_delta']:+10.4g}"
            )
    importance = report.get("effective_importance", {})
    if importance:
        print("effective importance (latest generation):")
        for name, value in sorted(importance.items()):
            print(f"  {name:18s} {value:.2f}")
    return 0


def _render_top(campaigns, metrics) -> str:
    """One frame of the ``nautilus top`` dashboard (plain text)."""
    health_by_id = metrics.get("campaign_health", {})
    best_by_id = metrics.get("campaign_best_score", {})
    evals = metrics.get("campaign_evaluations", {})
    lines = [
        f"nautilus top — {metrics['evaluations_total']} evaluations, "
        f"{metrics['evaluations_per_sec']:.1f}/s, "
        f"cache hit rate {metrics['cache_hit_rate']:.0%}, "
        f"queue depth {metrics['queue_depth']}",
        f"{'id':12s} {'state':9s} {'query/engine':28s} {'gen':>5s} "
        f"{'evals':>7s} {'best':>10s} {'divers':>6s} {'stall':>5s}",
    ]
    for status in campaigns:
        cid = status["id"]
        health = health_by_id.get(cid, {})
        best = best_by_id.get(cid)
        lines.append(
            f"{cid:12s} {status['state']:9s} "
            f"{status['spec']['query'] + '/' + status['spec']['engine']:28s} "
            f"{status['generations_done']:5d} "
            f"{evals.get(cid, 0):7d} "
            + (f"{best:10.4g} " if best is not None else f"{'-':>10s} ")
            + (
                f"{health['diversity']:6.2f} {health['stall_risk']:5.2f}"
                if health
                else f"{'-':>6s} {'-':>5s}"
            )
        )
    if not campaigns:
        lines.append("(no campaigns)")
    return "\n".join(lines)


def _cmd_top(args: argparse.Namespace) -> int:
    import time

    from .service import ServiceClient

    client = ServiceClient(host=args.host, port=args.port)
    iteration = 0
    try:
        while True:
            frame = _render_top(client.list_campaigns(), client.metrics())
            if not args.no_clear:
                print("\x1b[2J\x1b[H", end="")
            print(frame)
            iteration += 1
            if args.iterations is not None and iteration >= args.iterations:
                return 0
            time.sleep(args.interval)
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="nautilus",
        description="Nautilus (DAC 2015) reproduction: guided-GA IP design space search.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("characterize", help="build the offline datasets")
    p.add_argument("space", choices=("noc", "fft", "fir", "all"))
    p.add_argument("--refresh", action="store_true", help="recharacterize even if cached")
    p.set_defaults(fn=_cmd_characterize)

    p = sub.add_parser("optimize", help="run one optimization query")
    p.add_argument("query", choices=sorted(QUERIES))
    p.add_argument("--engine", choices=("baseline", "nautilus", "random"), default="nautilus")
    p.add_argument(
        "--metric",
        default=None,
        help="composite metric expression overriding the query's default, "
        "e.g. 'fmax_mhz / (luts + 8 * brams)'",
    )
    p.add_argument("--direction", choices=("max", "min"), default=None)
    p.add_argument("--confidence", type=float, default=None)
    p.add_argument(
        "--hints",
        metavar="HINTS_JSON",
        default=None,
        help="JSON hints file (e.g. from 'nautilus estimate --output') "
        "replacing the query's bundled hint set; nautilus engine only",
    )
    p.add_argument("--generations", type=int, default=80)
    p.add_argument("--budget", type=int, default=400, help="random-search budget")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=_cmd_optimize)

    p = sub.add_parser("figure", help="regenerate a paper figure")
    p.add_argument("name", choices=_FIGURES)
    p.add_argument("--runs", type=int, default=10)
    p.add_argument("--generations", type=int, default=80)
    p.add_argument("--csv", action="store_true", help="write series CSV")
    p.set_defaults(fn=_cmd_figure)

    p = sub.add_parser("estimate", help="derive hints from a parameter sweep")
    p.add_argument("query", choices=sorted(QUERIES))
    p.add_argument("--budget", type=int, default=80)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--confidence",
        type=float,
        default=None,
        help="confidence written into the derived hint set "
        "(default: the estimator's own)",
    )
    p.add_argument(
        "--output",
        metavar="HINTS_JSON",
        default=None,
        help="write the derived hints as schema-versioned JSON, ready for "
        "'nautilus optimize --hints' / 'nautilus submit --hints'",
    )
    p.set_defaults(fn=_cmd_estimate)

    p = sub.add_parser("simulate", help="flit-level NoC simulation")
    from .noc.topology import TOPOLOGY_FAMILIES
    from .noc.traffic import TRAFFIC_PATTERNS

    p.add_argument("topology", choices=sorted(TOPOLOGY_FAMILIES))
    p.add_argument("--endpoints", type=int, default=64)
    p.add_argument("--vcs", type=int, default=2)
    p.add_argument("--buffer-depth", type=int, default=8)
    p.add_argument("--pattern", choices=sorted(TRAFFIC_PATTERNS), default="uniform")
    p.add_argument(
        "--routing", choices=("deterministic", "diverse"), default="deterministic"
    )
    p.add_argument("--cycles", type=int, default=1500)
    p.set_defaults(fn=_cmd_simulate)

    p = sub.add_parser(
        "report",
        help="compile results/ into RESULTS.md, or --html <id> for one campaign",
    )
    p.add_argument("--results-dir", default=None)
    p.add_argument("--output", default=None)
    p.add_argument(
        "--html",
        metavar="CAMPAIGN_ID",
        default=None,
        help="render one campaign (status, curve, health, hint report) "
        "from a running daemon into a standalone HTML file",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8765)
    p.set_defaults(fn=_cmd_report)

    p = sub.add_parser(
        "serve", help="run the search-campaign daemon (REST API)"
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8765, help="0 picks an ephemeral port")
    p.add_argument("--dir", default="campaigns", help="campaign store directory")
    p.add_argument("--workers", type=int, default=4, help="evaluation worker pool size")
    p.add_argument(
        "--eval-cache",
        action="store_true",
        help="share evaluation results across campaigns and restarts via an "
        "on-disk cache under the store directory",
    )
    p.add_argument(
        "--trace-max-events",
        type=int,
        default=None,
        help="cap each campaign's on-disk event log at N events "
        "(oldest and newest halves are kept around a truncation marker)",
    )
    p.add_argument(
        "--log-json",
        action="store_true",
        help="emit structured JSON logs (one object per line) with "
        "campaign-id correlation",
    )
    p.add_argument(
        "--fleet",
        action="store_true",
        help="open a distributed-evaluation coordinator; workers join with "
        "'nautilus worker --connect host:port'",
    )
    p.add_argument(
        "--fleet-port",
        type=int,
        default=8766,
        help="coordinator TCP port (0 picks an ephemeral port)",
    )
    p.add_argument(
        "--archive",
        nargs="?",
        const=True,
        default=False,
        metavar="DIR",
        help="record every paid evaluation into the cross-campaign design "
        "archive (default location: <store>/archive; pass DIR to place it "
        "elsewhere); enables warm-started campaigns and GET /archive/*",
    )
    p.add_argument("--verbose", action="store_true", help="log HTTP requests")
    p.set_defaults(fn=_cmd_serve)

    p = sub.add_parser(
        "worker", help="run one evaluation-fleet worker daemon"
    )
    p.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="coordinator address printed by 'nautilus serve --fleet'",
    )
    p.add_argument(
        "--spaces",
        nargs="+",
        default=None,
        metavar="SPACE",
        choices=("noc", "fft", "fir"),
        help="dataset spaces this worker serves (default: all bundled)",
    )
    p.add_argument("--name", default=None, help="worker name (default host-pid)")
    p.add_argument(
        "--slots", type=int, default=1, help="concurrent evaluations per batch"
    )
    p.set_defaults(fn=_cmd_worker)

    p = sub.add_parser(
        "fleet", help="show a daemon's evaluation-fleet status"
    )
    p.add_argument("--json", action="store_true", help="dump the raw status")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8765)
    p.set_defaults(fn=_cmd_fleet)

    p = sub.add_parser("submit", help="submit a campaign to a running daemon")
    p.add_argument(
        "query",
        choices=sorted(QUERIES) + sorted(MULTI_QUERIES),
        help="single-objective query, or a multi-objective one for --engine pareto",
    )
    p.add_argument(
        "--engine",
        choices=("baseline", "nautilus", "random", "pareto"),
        default="nautilus",
    )
    p.add_argument("--generations", type=int, default=80)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--priority", type=int, default=0, help="higher runs first")
    p.add_argument("--confidence", type=float, default=None)
    p.add_argument(
        "--hints",
        metavar="HINTS_JSON",
        default=None,
        help="inline JSON hints file replacing the query's bundled hint "
        "set (guided engines; validated server-side with field-level "
        "errors)",
    )
    p.add_argument("--budget", type=int, default=400, help="random-search budget")
    p.add_argument(
        "--workers",
        type=int,
        default=None,
        help="per-campaign evaluation pool size (overrides the daemon "
        "default; validated server-side, must be >= 1)",
    )
    p.add_argument(
        "--warm-start",
        type=int,
        default=None,
        metavar="N",
        help="seed the initial GA population with the top N archived "
        "designs (needs a daemon started with --archive; validated "
        "server-side)",
    )
    p.add_argument(
        "--trace-max-events",
        type=int,
        default=None,
        help="cap this campaign's event log (overrides the daemon default)",
    )
    p.add_argument(
        "--tracing",
        action="store_true",
        help="record a span tree for the campaign (inspect with "
        "'nautilus profile'); zero RNG cost, results stay bit-identical",
    )
    p.add_argument("--label", default="")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8765)
    p.add_argument("--wait", action="store_true", help="block until terminal")
    p.add_argument("--timeout", type=float, default=600.0)
    p.set_defaults(fn=_cmd_submit)

    p = sub.add_parser(
        "archive", help="inspect the cross-campaign design archive"
    )
    archive_sub = p.add_subparsers(dest="archive_command", required=True)

    p = archive_sub.add_parser("stats", help="row/feasibility/campaign counts")
    p.add_argument("--dir", default="campaigns/archive", help="archive directory")
    p.add_argument("--json", action="store_true", help="dump the raw stats")
    p.set_defaults(fn=_cmd_archive_stats)

    p = archive_sub.add_parser(
        "query", help="top archived designs for a named query, best first"
    )
    p.add_argument("query", choices=sorted(QUERIES))
    p.add_argument("--dir", default="campaigns/archive", help="archive directory")
    p.add_argument(
        "-k", "--top", type=int, default=10, help="number of designs shown"
    )
    p.add_argument("--json", action="store_true", help="dump the raw rows")
    p.set_defaults(fn=_cmd_archive_query)

    p = archive_sub.add_parser(
        "export-hints",
        help="mine a hints JSON from archived rows (no extra evaluations)",
    )
    p.add_argument("query", choices=sorted(QUERIES))
    p.add_argument("--dir", default="campaigns/archive", help="archive directory")
    p.add_argument(
        "--confidence",
        type=float,
        default=0.5,
        help="confidence written into the mined hint set",
    )
    p.add_argument(
        "--min-rows",
        type=int,
        default=20,
        help="fewest archived rows worth mining",
    )
    p.add_argument(
        "--output",
        metavar="HINTS_JSON",
        default=None,
        help="write the mined hints as schema-versioned JSON, ready for "
        "'nautilus optimize --hints' / 'nautilus submit --hints'",
    )
    p.set_defaults(fn=_cmd_archive_export_hints)

    p = archive_sub.add_parser(
        "import", help="backfill the archive from a persistent eval cache"
    )
    p.add_argument("--dir", default="campaigns/archive", help="archive directory")
    p.add_argument(
        "--from",
        dest="source",
        required=True,
        metavar="CACHE_DIR",
        help="persistent eval cache directory (e.g. campaigns/evalcache)",
    )
    p.add_argument(
        "--campaign",
        default="import",
        help="campaign label recorded on imported rows",
    )
    p.set_defaults(fn=_cmd_archive_import)

    p = sub.add_parser(
        "cache", help="maintain the persistent evaluation cache"
    )
    cache_sub = p.add_subparsers(dest="cache_command", required=True)

    p = cache_sub.add_parser(
        "compact",
        help="rewrite cache files dropping duplicate and torn rows",
    )
    p.add_argument(
        "--dir", default="campaigns/evalcache", help="cache directory"
    )
    p.set_defaults(fn=_cmd_cache_compact)

    p = sub.add_parser("status", help="show campaign status (all, or one by id)")
    p.add_argument("id", nargs="?", default=None)
    p.add_argument("--curve", action="store_true", help="print the search curve")
    p.add_argument(
        "--trace",
        action="store_true",
        help="print operator timings and the most recent trace events",
    )
    p.add_argument(
        "--trace-limit", type=int, default=10, help="events shown by --trace"
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8765)
    p.set_defaults(fn=_cmd_status)

    p = sub.add_parser(
        "trace", help="dump a campaign's structured RunEvent log as JSONL"
    )
    p.add_argument("id")
    p.add_argument(
        "--limit", type=int, default=None, help="keep only the last N events"
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8765)
    p.set_defaults(fn=_cmd_trace)

    p = sub.add_parser(
        "profile",
        help="phase budget, stragglers and critical path of a tracing campaign",
    )
    p.add_argument("id")
    p.add_argument(
        "--perfetto",
        metavar="OUT_JSON",
        default=None,
        help="also write Chrome trace-event JSON (open at ui.perfetto.dev)",
    )
    p.add_argument("--json", action="store_true", help="dump the raw reports")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8765)
    p.set_defaults(fn=_cmd_profile)

    p = sub.add_parser(
        "hints", help="print a campaign's aggregated hint-attribution report"
    )
    p.add_argument("id")
    p.add_argument("--json", action="store_true", help="dump the raw report")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8765)
    p.set_defaults(fn=_cmd_hints)

    p = sub.add_parser(
        "top", help="live dashboard over a running daemon's campaigns"
    )
    p.add_argument("--interval", type=float, default=2.0, help="refresh period, seconds")
    p.add_argument(
        "--iterations",
        type=int,
        default=None,
        help="render N frames then exit (default: run until Ctrl-C)",
    )
    p.add_argument(
        "--no-clear",
        action="store_true",
        help="append frames instead of clearing the screen (pipe-friendly)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8765)
    p.set_defaults(fn=_cmd_top)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except NautilusError as exc:
        # Covers ServiceError too: a daemon's 400/404 answer (bad spec,
        # unknown campaign) is a user error, not a crash.
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; exit quietly instead of
        # tracebacking. Redirect stdout so interpreter teardown can't
        # raise a second BrokenPipeError while flushing.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
