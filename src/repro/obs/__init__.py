"""Cross-cutting observability for Nautilus searches.

This package is deliberately dependency-free (stdlib only) and imports
nothing from the rest of :mod:`repro`, so every layer — the core kernel,
the evaluation stack, the service scheduler, and the CLI — can use it
without import cycles. It provides four largely independent pieces:

* :mod:`repro.obs.registry` — a small Prometheus-style metrics registry
  (counters / gauges / histograms with labels) with text exposition,
  shared by the evaluation stack, the scheduler, and the kernel and
  served at ``GET /metrics?format=prometheus``.
* :mod:`repro.obs.attribution` — hint-attribution telemetry: per-child
  breeding provenance (which params mutated, through which hint channel,
  confidence-gate outcomes) collected by a :class:`BreedingObserver` and
  aggregated into per-param / per-channel :class:`HintEffectReport`\\ s.
* :mod:`repro.obs.health` — per-generation search-health diagnostics
  (population diversity, duplicate/infeasible rates, convergence
  velocity, stall risk) derived from the population without consuming
  any RNG.
* :mod:`repro.obs.logs` / :mod:`repro.obs.htmlreport` — a JSON log
  formatter with campaign-id correlation and a no-dependency HTML
  report renderer for ``nautilus report --html``.
* :mod:`repro.obs.clock` / :mod:`repro.obs.tracing` — the injectable
  time source shared by every timed layer, and the span layer: one
  causal timing tree per run (run → generation → phase → eval-batch →
  task → dispatch/worker-exec/retry), with phase-budget, straggler,
  critical-path, and Perfetto trace-event analysis on top.

Everything here is *read-only* with respect to the search: enabling
observability never consumes RNG draws, so seeded runs stay bit-identical
with it on or off (enforced by the engine-parity CI job).
"""

from .attribution import BreedingObserver, HintEffectReport, hint_effect_report
from .clock import DEFAULT_CLOCK, FakeClock
from .health import population_health, stall_risk
from .logs import JsonLogFormatter, configure_json_logging
from .registry import Counter, Gauge, Histogram, MetricsRegistry, parse_prometheus
from .tracing import (
    Span,
    SpanRecorder,
    critical_path,
    perfetto_export,
    phase_budget,
    span_tree,
    straggler_report,
    validate_accounting,
)

__all__ = [
    "BreedingObserver",
    "HintEffectReport",
    "hint_effect_report",
    "population_health",
    "stall_risk",
    "JsonLogFormatter",
    "configure_json_logging",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "parse_prometheus",
    "DEFAULT_CLOCK",
    "FakeClock",
    "Span",
    "SpanRecorder",
    "span_tree",
    "validate_accounting",
    "phase_budget",
    "straggler_report",
    "critical_path",
    "perfetto_export",
]
