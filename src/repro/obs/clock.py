"""The one injectable time source every timed layer shares.

Before this module each layer picked its own clock ad hoc — the kernel
hardcoded ``time.perf_counter``, the fleet coordinator defaulted to
``time.monotonic`` — which made span/timing tests sleep real wall-clock
time to observe anything. Every timed component now accepts a ``clock``
callable defaulting to :data:`DEFAULT_CLOCK`, and tests drive a
:class:`FakeClock` instead of sleeping.

A clock here is just a zero-argument callable returning seconds as a
float, monotonic within one process. Only *relative* readings are ever
compared, so components with different epochs (``perf_counter`` vs
``monotonic``) still interoperate — span stitching across the fleet uses
offsets, never absolute timestamps (see :mod:`repro.obs.tracing`).
"""

from __future__ import annotations

import time

__all__ = ["DEFAULT_CLOCK", "FakeClock"]

#: The process-wide default clock: highest-resolution monotonic timer.
DEFAULT_CLOCK = time.perf_counter


class FakeClock:
    """A manually advanced clock for deterministic timing tests.

    Call the instance to read the current time; :meth:`advance` moves it
    forward. ``tick`` (default 0) is added on *every* read, which gives
    strictly increasing timestamps to code that takes several readings
    in a row — spans then have non-zero durations without any sleeps.
    """

    def __init__(self, start: float = 0.0, tick: float = 0.0):
        self._now = float(start)
        self._tick = float(tick)

    def __call__(self) -> float:
        self._now += self._tick
        return self._now

    def advance(self, seconds: float) -> None:
        """Move the clock forward by ``seconds`` (must be >= 0)."""
        if seconds < 0:
            raise ValueError("a monotonic clock cannot go backwards")
        self._now += seconds
