"""Span tracing: one causal timing tree per search run.

The metrics registry answers *how much*; this module answers *why slow*.
A :class:`SpanRecorder` collects one tree of timed spans per campaign::

    run
    └── generation
        ├── phase (select | crossover | mutate | evaluate | observe |
        │          checkpoint | init)
        │   └── eval-batch            (under the evaluate phase)
        │       ├── task              (one per fleet-dispatched design)
        │       │   ├── dispatch      (one per attempt)
        │       │   ├── retry         (backoff wait after a failed attempt)
        │       │   └── worker-exec   (worker-reported execution window)
        │       └── cache-write       (persistent-cache write-back)
        └── ...

Design constraints, in force everywhere:

* **Zero RNG.** Span and trace ids come from monotonic counters, never
  from :mod:`random` — seeded runs are bit-identical with tracing on or
  off (the engine-parity CI job runs the full matrix both ways).
* **Offsets, not timestamps, across processes.** Worker and coordinator
  clocks share no epoch; remote work travels as *durations and offsets
  relative to batch submission* and is anchored (and clamped) into the
  local eval-batch span, so child durations never exceed their parent.
* **Accounting closes.** Every dispatched task has exactly one owning
  ``task`` span per eval batch; retries and first-result-wins duplicates
  are attributed to that span (as child spans / attributes), never
  duplicated. :func:`validate_accounting` checks both invariants.

Analysis helpers operate on exported span dicts (the wire/JSONL form),
so they work identically on a live recorder and on a persisted
``spans.jsonl``: :func:`phase_budget` (where did each generation's
wall-clock go), :func:`straggler_report` / :func:`critical_path` (per
eval batch: slowest worker, queue wait vs exec time), and
:func:`perfetto_export` (Chrome trace-event JSON, loadable in Perfetto).

Like the rest of :mod:`repro.obs`, this module is stdlib-only and
imports nothing from the rest of :mod:`repro` — the kernel, eval stack
and fleet duck-type into it.
"""

from __future__ import annotations

import itertools
import os
import threading
from contextlib import contextmanager
from typing import Any, Callable, Iterable, Mapping, Sequence

from .clock import DEFAULT_CLOCK

__all__ = [
    "Span",
    "SpanRecorder",
    "span_tree",
    "validate_accounting",
    "phase_budget",
    "straggler_report",
    "critical_path",
    "perfetto_export",
]

#: Span names of the per-generation phase partition (see phase_budget).
PHASE_NAMES = (
    "init", "select", "crossover", "mutate", "evaluate", "observe",
    "checkpoint",
)

#: Containment slack, seconds: floating-point rounding when a child's
#: boundary timestamp is arithmetically derived from its parent's.
_EPSILON = 1e-6

_TRACE_SEQ = itertools.count(1)


def _new_trace_id() -> str:
    """A process-unique trace id from counters (never the random module)."""
    return f"trace-{os.getpid():x}-{next(_TRACE_SEQ):x}"


class Span:
    """One timed node of a trace tree. ``end_s is None`` while open."""

    __slots__ = ("span_id", "parent_id", "name", "start_s", "end_s", "attrs")

    def __init__(
        self,
        span_id: str,
        parent_id: str | None,
        name: str,
        start_s: float,
        end_s: float | None = None,
        attrs: dict[str, Any] | None = None,
    ):
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start_s = start_s
        self.end_s = end_s
        self.attrs = attrs or {}

    @property
    def duration_s(self) -> float | None:
        if self.end_s is None:
            return None
        return self.end_s - self.start_s

    def as_dict(self) -> dict[str, Any]:
        return {
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "attrs": dict(self.attrs),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        dur = "open" if self.end_s is None else f"{self.duration_s:.6f}s"
        return f"Span({self.name!r}, {self.span_id}, {dur})"


class SpanRecorder:
    """Thread-safe collector of one run's span tree.

    Args:
        clock: Injectable time source (see :mod:`repro.obs.clock`); spans
            store raw clock readings, so only differences are meaningful.
        trace_id: Stable identity of this tree (defaults to a counter-based
            process-unique id); propagated through fleet protocol frames.
    """

    def __init__(
        self,
        clock: Callable[[], float] = DEFAULT_CLOCK,
        trace_id: str | None = None,
    ):
        self.clock = clock
        self.trace_id = trace_id or _new_trace_id()
        self._lock = threading.Lock()
        self._seq = itertools.count(1)
        self._spans: list[Span] = []
        self._undrained: list[Span] = []

    def _next_id(self) -> str:
        return f"s{next(self._seq):06x}"

    @staticmethod
    def _parent_id(parent: "Span | str | None") -> str | None:
        if parent is None or isinstance(parent, str):
            return parent
        return parent.span_id

    # -- recording ---------------------------------------------------------------

    def begin(
        self,
        name: str,
        parent: "Span | str | None" = None,
        at: float | None = None,
        **attrs: Any,
    ) -> Span:
        """Open a span now (or at the explicit clock reading ``at``)."""
        start = self.clock() if at is None else at
        with self._lock:
            span = Span(self._next_id(), self._parent_id(parent), name, start,
                        attrs=attrs)
            self._spans.append(span)
        return span

    def end(self, span: Span, at: float | None = None, **attrs: Any) -> None:
        """Close a span; extra attrs are merged in (idempotent on end time)."""
        stamp = self.clock() if at is None else at
        with self._lock:
            if span.end_s is None:
                span.end_s = max(stamp, span.start_s)
                self._undrained.append(span)
            if attrs:
                span.attrs.update(attrs)

    @contextmanager
    def span(self, name: str, parent: "Span | str | None" = None, **attrs: Any):
        """Context manager over :meth:`begin` / :meth:`end`."""
        node = self.begin(name, parent=parent, **attrs)
        try:
            yield node
        finally:
            self.end(node)

    def record(
        self,
        name: str,
        start_s: float,
        end_s: float,
        parent: "Span | str | None" = None,
        **attrs: Any,
    ) -> Span:
        """Add an already-timed (closed) span — remote or derived work.

        Used for two things: phase segments computed from boundary
        timestamps, and worker/coordinator activity anchored from relative
        offsets. ``end_s`` is floored to ``start_s`` so derived arithmetic
        can never produce a negative duration.
        """
        with self._lock:
            span = Span(
                self._next_id(),
                self._parent_id(parent),
                name,
                start_s,
                max(end_s, start_s),
                attrs=attrs,
            )
            self._spans.append(span)
            self._undrained.append(span)
        return span

    # -- export ------------------------------------------------------------------

    def spans(self) -> list[Span]:
        """Every span recorded so far (copy of the list, live objects)."""
        with self._lock:
            return list(self._spans)

    def export(self) -> list[dict[str, Any]]:
        """JSON-ready dicts for every span, in creation order."""
        with self._lock:
            return [span.as_dict() for span in self._spans]

    def drain_finished(self) -> list[dict[str, Any]]:
        """Spans closed since the last drain, as dicts (then marked drained).

        The service appends these to the campaign's ``spans.jsonl`` after
        every scheduler step, so a killed daemon loses at most the spans
        of the generation in flight. Draining never removes spans from
        :meth:`export` — it only advances the persistence cursor.
        """
        with self._lock:
            batch, self._undrained = self._undrained, []
            return [span.as_dict() for span in batch]


# ---------------------------------------------------------------------------
# analysis over exported spans
# ---------------------------------------------------------------------------


def _as_dicts(spans: Iterable[Any]) -> list[dict[str, Any]]:
    out = []
    for span in spans:
        if isinstance(span, Span):
            out.append(span.as_dict())
        elif isinstance(span, Mapping):
            out.append(dict(span))
        else:
            raise TypeError(f"not a span: {span!r}")
    return out


def span_tree(
    spans: Sequence[Any],
) -> tuple[dict[str, dict], dict[str | None, list[dict]]]:
    """Index spans: ``(by_id, children_by_parent)``; roots key ``None``.

    A span whose ``parent`` id is missing from the set is treated as a
    root too (a partially persisted tree still analyzes).
    """
    rows = _as_dicts(spans)
    by_id = {row["id"]: row for row in rows}
    children: dict[str | None, list[dict]] = {}
    for row in rows:
        parent = row.get("parent")
        if parent is not None and parent not in by_id:
            parent = None
        children.setdefault(parent, []).append(row)
    return by_id, children


def validate_accounting(spans: Sequence[Any]) -> dict[str, Any]:
    """Check the two span-accounting invariants; ``{"ok", "errors", ...}``.

    1. *Containment*: every closed child lies inside its closed parent's
       window (within a float-rounding epsilon) — child durations never
       exceed their parent's.
    2. *Single ownership*: within one eval-batch span, each dispatched
       task id owns exactly one ``task`` span (retries and duplicate
       results attach to it; they never mint a second owner).
    """
    rows = _as_dicts(spans)
    by_id, children = span_tree(rows)
    errors: list[str] = []
    open_spans = sum(1 for row in rows if row.get("end_s") is None)
    for row in rows:
        parent = by_id.get(row.get("parent"))
        if parent is None or row.get("end_s") is None:
            continue
        if parent.get("end_s") is None:
            continue
        if row["start_s"] < parent["start_s"] - _EPSILON or (
            row["end_s"] > parent["end_s"] + _EPSILON
        ):
            errors.append(
                f"span {row['id']} ({row['name']}) "
                f"[{row['start_s']:.6f}, {row['end_s']:.6f}] escapes parent "
                f"{parent['id']} ({parent['name']}) "
                f"[{parent['start_s']:.6f}, {parent['end_s']:.6f}]"
            )
    task_spans = 0
    for batch in (r for r in rows if r["name"] == "eval-batch"):
        owners: dict[str, int] = {}
        for child in children.get(batch["id"], ()):
            if child["name"] != "task":
                continue
            task_spans += 1
            task = str(child.get("attrs", {}).get("task", ""))
            owners[task] = owners.get(task, 0) + 1
        for task, count in owners.items():
            if count > 1:
                errors.append(
                    f"task {task[:12]} owned by {count} spans in eval-batch "
                    f"{batch['id']} (must be exactly one)"
                )
    return {
        "ok": not errors,
        "errors": errors,
        "spans": len(rows),
        "open_spans": open_spans,
        "task_spans": task_spans,
    }


def phase_budget(spans: Sequence[Any]) -> dict[str, Any]:
    """Where each generation's wall-clock went, by phase.

    Returns ``{"generations": [...], "phases": {...}, "wall_time_s",
    "coverage"}``. Phase spans are recorded as a contiguous partition of
    their generation's window, so per-generation coverage (phase seconds
    over generation wall seconds) is ~1.0 by construction; the acceptance
    floor is 0.95.
    """
    rows = _as_dicts(spans)
    __, children = span_tree(rows)
    generations = []
    totals: dict[str, float] = {}
    total_wall = 0.0
    gen_rows = sorted(
        (r for r in rows if r["name"] == "generation" and r.get("end_s") is not None),
        key=lambda r: r["attrs"].get("generation", 0),
    )
    for gen in gen_rows:
        wall = gen["end_s"] - gen["start_s"]
        phases: dict[str, float] = {}
        for child in children.get(gen["id"], ()):
            if child["name"] != "phase" or child.get("end_s") is None:
                continue
            label = str(child["attrs"].get("phase", "?"))
            phases[label] = phases.get(label, 0.0) + (
                child["end_s"] - child["start_s"]
            )
        budget = sum(phases.values())
        generations.append(
            {
                "generation": gen["attrs"].get("generation", 0),
                "wall_time_s": wall,
                "phases": phases,
                "coverage": budget / wall if wall > 0 else 1.0,
            }
        )
        total_wall += wall
        for label, seconds in phases.items():
            totals[label] = totals.get(label, 0.0) + seconds
    return {
        "generations": generations,
        "phases": totals,
        "wall_time_s": total_wall,
        "coverage": (
            sum(totals.values()) / total_wall if total_wall > 0 else 1.0
        ),
    }


def straggler_report(spans: Sequence[Any]) -> list[dict[str, Any]]:
    """Per eval batch: slowest task/worker and queue-wait vs exec split.

    Queue wait is the part of a task's dispatch window the worker did
    *not* spend executing (coordinator queueing, network, worker-side
    batching); exec time is the worker-reported execution duration. One
    report entry per eval-batch span that owns at least one task span.
    """
    rows = _as_dicts(spans)
    by_id, children = span_tree(rows)
    report = []
    for batch in (r for r in rows if r["name"] == "eval-batch"):
        tasks = [c for c in children.get(batch["id"], ()) if c["name"] == "task"]
        if not tasks:
            continue
        per_task = []
        workers: dict[str, dict[str, float]] = {}
        for task in tasks:
            exec_s = queue_s = 0.0
            retries = 0
            for child in children.get(task["id"], ()):
                dur = (child.get("end_s") or child["start_s"]) - child["start_s"]
                if child["name"] == "worker-exec":
                    exec_s += dur
                    queue_s += float(child["attrs"].get("queue_s", 0.0))
                elif child["name"] == "retry":
                    retries += 1
            total = (task.get("end_s") or task["start_s"]) - task["start_s"]
            worker = str(task["attrs"].get("worker", "?"))
            entry = {
                "task": str(task["attrs"].get("task", "")),
                "worker": worker,
                "total_s": total,
                "exec_s": exec_s,
                "queue_s": queue_s if queue_s else max(total - exec_s, 0.0),
                "retries": retries,
                "duplicates": int(task["attrs"].get("duplicate_results", 0)),
            }
            per_task.append(entry)
            agg = workers.setdefault(
                worker, {"tasks": 0, "exec_s": 0.0, "total_s": 0.0}
            )
            agg["tasks"] += 1
            agg["exec_s"] += entry["exec_s"]
            agg["total_s"] += total
        slowest = max(per_task, key=lambda e: e["total_s"])
        parent_phase = by_id.get(batch.get("parent"), {})
        grandparent = by_id.get(parent_phase.get("parent"), {})
        report.append(
            {
                "generation": grandparent.get("attrs", {}).get("generation"),
                "batch_span": batch["id"],
                "wall_time_s": (batch.get("end_s") or batch["start_s"])
                - batch["start_s"],
                "tasks": len(per_task),
                "slowest": slowest,
                "slowest_worker": max(
                    workers.items(), key=lambda kv: kv[1]["total_s"]
                )[0],
                "workers": workers,
            }
        )
    return report


def critical_path(spans: Sequence[Any], root: str | None = None) -> list[dict]:
    """The chain of spans ending latest at each level, root downwards.

    This is the sequence of nested windows that bounded the run's (or,
    given ``root``, a subtree's) wall-clock — the place an optimization
    must land to shorten it. Entries carry name, attrs, and duration.
    """
    rows = _as_dicts(spans)
    by_id, children = span_tree(rows)
    closed = [r for r in rows if r.get("end_s") is not None]
    if root is not None:
        node = by_id.get(root)
    else:
        roots = [r for r in children.get(None, ()) if r.get("end_s") is not None]
        node = max(roots, key=lambda r: r["end_s"] - r["start_s"], default=None)
        if node is None and closed:
            node = max(closed, key=lambda r: r["end_s"] - r["start_s"])
    path = []
    while node is not None:
        path.append(
            {
                "id": node["id"],
                "name": node["name"],
                "attrs": dict(node.get("attrs", {})),
                "duration_s": (node.get("end_s") or node["start_s"])
                - node["start_s"],
            }
        )
        kids = [
            c for c in children.get(node["id"], ()) if c.get("end_s") is not None
        ]
        node = max(kids, key=lambda c: c["end_s"], default=None)
    return path


def perfetto_export(
    spans: Sequence[Any], trace_id: str | None = None
) -> dict[str, Any]:
    """Chrome trace-event JSON (loadable in Perfetto / chrome://tracing).

    Spans become complete (``"X"``) events with microsecond timestamps.
    Search-side spans share one track; each fleet worker's ``task`` /
    ``dispatch`` / ``worker-exec`` / ``retry`` spans get their own track,
    so stragglers are visible as the longest bars in a worker lane.
    """
    rows = _as_dicts(spans)
    closed = [r for r in rows if r.get("end_s") is not None]
    origin = min((r["start_s"] for r in closed), default=0.0)
    by_id, __ = span_tree(rows)

    def _worker_of(row: dict) -> str | None:
        node = row
        while node is not None:
            worker = node.get("attrs", {}).get("worker")
            if worker:
                return str(worker)
            if node["name"] in ("run", "generation", "phase", "eval-batch"):
                return None
            node = by_id.get(node.get("parent"))
        return None

    tids: dict[str, int] = {"search": 1}
    events: list[dict[str, Any]] = []
    for row in closed:
        lane = _worker_of(row) if row["name"] not in (
            "run", "generation", "phase", "eval-batch", "cache-write"
        ) else None
        track = f"worker:{lane}" if lane else "search"
        tid = tids.setdefault(track, len(tids) + 1)
        label = row["name"]
        attrs = row.get("attrs", {})
        if row["name"] == "phase":
            label = f"phase:{attrs.get('phase', '?')}"
        elif row["name"] == "generation":
            label = f"generation {attrs.get('generation', '?')}"
        elif row["name"] == "task":
            label = f"task {str(attrs.get('task', ''))[:12]}"
        events.append(
            {
                "name": label,
                "cat": row["name"],
                "ph": "X",
                "ts": round((row["start_s"] - origin) * 1e6, 3),
                "dur": round((row["end_s"] - row["start_s"]) * 1e6, 3),
                "pid": 1,
                "tid": tid,
                "args": {"id": row["id"], **attrs},
            }
        )
    metadata = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "args": {"name": "nautilus"},
        }
    ]
    metadata.extend(
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": tid,
            "args": {"name": track},
        }
        for track, tid in sorted(tids.items(), key=lambda kv: kv[1])
    )
    return {
        "traceEvents": metadata + events,
        "displayTimeUnit": "ms",
        "otherData": {"trace_id": trace_id or "", "spans": len(closed)},
    }
