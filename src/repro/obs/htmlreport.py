"""Self-contained HTML report for one campaign (no dependencies).

``nautilus report --html <id>`` fetches a campaign's status, curve, and
hint-effect report over the REST API and renders one static HTML file:
an inline-SVG best-so-far curve, the health panel, and the per-param /
per-channel hint-effect table (mean deltas colored by sign). Tracing
campaigns additionally get a phase-profile section (where each
generation's wall-clock went, plus the slowest task per eval batch)
derived from their span tree. No JavaScript, no external assets — the
file can be attached to a ticket or archived next to the campaign
directory.
"""

from __future__ import annotations

import html
import json
from typing import Any, Mapping, Sequence

__all__ = ["render_campaign_html"]

_CSS = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2rem auto; max-width: 60rem; color: #1a1a2e; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem; }
table { border-collapse: collapse; margin-top: .5rem; font-size: .85rem; }
th, td { border: 1px solid #ccc; padding: .3rem .6rem; text-align: right; }
th { background: #f0f0f5; } td.name { text-align: left; font-family: monospace; }
.pos { color: #0a7a2f; } .neg { color: #b01030; } .muted { color: #777; }
.kv { font-size: .9rem; } .kv dt { float: left; clear: left; width: 14rem;
       font-weight: 600; } .kv dd { margin-left: 15rem; }
svg { background: #fafaff; border: 1px solid #ddd; }
"""


def _fmt(value: Any, digits: int = 4) -> str:
    if isinstance(value, float):
        return f"{value:.{digits}g}"
    return html.escape(str(value))


def _delta_cell(value: float) -> str:
    cls = "pos" if value > 0 else ("neg" if value < 0 else "muted")
    return f'<td class="{cls}">{value:+.4g}</td>'


def _curve_svg(curve: Sequence[Mapping[str, Any]], width=640, height=220) -> str:
    points = [
        (float(p["generation"]), float(p["best_raw"]))
        for p in curve
        if p.get("best_raw") == p.get("best_raw")  # drop NaN
    ]
    if len(points) < 2:
        return '<p class="muted">Not enough points for a curve yet.</p>'
    pad = 30
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    def sx(x: float) -> float:
        return pad + (x - x_lo) / x_span * (width - 2 * pad)

    def sy(y: float) -> float:
        return height - pad - (y - y_lo) / y_span * (height - 2 * pad)

    path = " ".join(f"{sx(x):.1f},{sy(y):.1f}" for x, y in points)
    return (
        f'<svg viewBox="0 0 {width} {height}" width="{width}" height="{height}" '
        'role="img" aria-label="best-so-far curve">'
        f'<polyline points="{path}" fill="none" stroke="#2a4d9b" stroke-width="2"/>'
        f'<text x="{pad}" y="{height - 8}" font-size="11">generation {x_lo:g}</text>'
        f'<text x="{width - pad}" y="{height - 8}" font-size="11" '
        f'text-anchor="end">generation {x_hi:g}</text>'
        f'<text x="{pad}" y="16" font-size="11">best {y_hi:g}</text>'
        f'<text x="{pad}" y="{height - pad}" font-size="11" '
        f'dy="-4">best {y_lo:g}</text>'
        "</svg>"
    )


def _hint_table(report: Mapping[str, Any]) -> str:
    channels = report.get("channels", {})
    params = report.get("params", {})
    if not channels and not params:
        return '<p class="muted">No hint-attribution events in this trace.</p>'
    rows = ['<table><tr><th>scope</th><th>channel</th><th>proposals</th>'
            "<th>feasible</th><th>improved</th><th>improvement rate</th>"
            "<th>mean Δscore</th></tr>"]
    for channel, cell in channels.items():
        rows.append(
            '<tr><td class="name">all params</td>'
            f'<td class="name">{html.escape(channel)}</td>'
            f'<td>{cell["proposals"]}</td><td>{cell["feasible"]}</td>'
            f'<td>{cell["improved"]}</td>'
            f'<td>{cell["improvement_rate"]:.1%}</td>'
            f'{_delta_cell(cell["mean_delta"])}</tr>'
        )
    for name, param in params.items():
        for channel, cell in param.get("channels", {}).items():
            rows.append(
                f'<tr><td class="name">{html.escape(name)}</td>'
                f'<td class="name">{html.escape(channel)}</td>'
                f'<td>{cell["proposals"]}</td><td>{cell["feasible"]}</td>'
                f'<td>{cell["improved"]}</td>'
                f'<td>{cell["improvement_rate"]:.1%}</td>'
                f'{_delta_cell(cell["mean_delta"])}</tr>'
            )
    rows.append("</table>")
    return "".join(rows)


def _health_panel(health: Mapping[str, Any] | None) -> str:
    if not health:
        return '<p class="muted">No health data yet.</p>'
    keys = (
        "diversity", "duplicate_rate", "infeasible_rate",
        "convergence_velocity", "stalled_generations", "stall_risk",
    )
    items = "".join(
        f"<dt>{html.escape(key.replace('_', ' '))}</dt><dd>{_fmt(health.get(key, 0))}</dd>"
        for key in keys
    )
    return f'<dl class="kv">{items}</dl>'


def _phase_panel(spans: Sequence[Mapping[str, Any]] | None) -> str:
    if not spans:
        return (
            '<p class="muted">No span tree recorded — submit the campaign '
            "with <code>tracing</code> to profile it.</p>"
        )
    from .tracing import phase_budget, straggler_report

    budget = phase_budget(spans)
    total_wall = budget["wall_time_s"] or 1.0
    rows = [
        "<table><tr><th>phase</th><th>seconds</th><th>share</th></tr>"
    ]
    for label, seconds in sorted(
        budget["phases"].items(), key=lambda kv: -kv[1]
    ):
        rows.append(
            f'<tr><td class="name">{html.escape(label)}</td>'
            f"<td>{seconds:.3f}</td><td>{seconds / total_wall:.1%}</td></tr>"
        )
    rows.append("</table>")
    parts = [
        f"<p>{len(budget['generations'])} generation(s), "
        f"{budget['wall_time_s']:.3f}s wall, phase coverage "
        f"{budget['coverage']:.0%}.</p>",
        "".join(rows),
    ]
    stragglers = straggler_report(spans)
    if stragglers:
        rows = [
            "<table><tr><th>generation</th><th>tasks</th><th>batch s</th>"
            "<th>slowest worker</th><th>task s</th><th>exec s</th>"
            "<th>queue s</th><th>retries</th></tr>"
        ]
        for entry in stragglers:
            slow = entry["slowest"]
            gen = entry["generation"]
            rows.append(
                f"<tr><td>{_fmt(gen if gen is not None else '?')}</td>"
                f"<td>{entry['tasks']}</td>"
                f"<td>{entry['wall_time_s']:.3f}</td>"
                f'<td class="name">{html.escape(slow["worker"])}</td>'
                f"<td>{slow['total_s']:.3f}</td><td>{slow['exec_s']:.3f}</td>"
                f"<td>{slow['queue_s']:.3f}</td><td>{slow['retries']}</td></tr>"
            )
        rows.append("</table>")
        parts.append("<h3>Slowest task per eval batch</h3>")
        parts.append("".join(rows))
    return "".join(parts)


def render_campaign_html(
    status: Mapping[str, Any],
    curve: Sequence[Mapping[str, Any]] = (),
    hint_report: Mapping[str, Any] | None = None,
    spans: Sequence[Mapping[str, Any]] | None = None,
    title: str | None = None,
) -> str:
    """Render one campaign into a complete standalone HTML document."""
    cid = str(status.get("id", "?"))
    title = title or f"Nautilus campaign {cid}"
    spec = status.get("spec", {})
    summary_keys = (
        ("state", status.get("state")),
        ("query", spec.get("query")),
        ("engine", spec.get("engine")),
        ("seed", spec.get("seed")),
        ("generations done", status.get("generations_done")),
        ("best raw", status.get("best_raw")),
        ("best score", status.get("best_score")),
        ("distinct evaluations", status.get("distinct_evaluations")),
        ("stop reason", status.get("stop_reason")),
    )
    summary = "".join(
        f"<dt>{html.escape(str(key))}</dt><dd>{_fmt(value)}</dd>"
        for key, value in summary_keys
        if value is not None
    )
    best_config = status.get("best_config")
    config_block = (
        f"<h2>Best configuration</h2><pre>{html.escape(json.dumps(best_config, indent=2))}</pre>"
        if best_config
        else ""
    )
    return f"""<!DOCTYPE html>
<html lang="en"><head><meta charset="utf-8">
<title>{html.escape(title)}</title><style>{_CSS}</style></head>
<body>
<h1>{html.escape(title)}</h1>
<dl class="kv">{summary}</dl>
<h2>Best-so-far curve</h2>
{_curve_svg(curve)}
<h2>Search health</h2>
{_health_panel(status.get("health"))}
<h2>Phase profile</h2>
{_phase_panel(spans)}
<h2>Hint effect</h2>
{_hint_table(hint_report or {})}
{config_block}
</body></html>
"""
