"""Hint-attribution telemetry: which hints are earning their keep?

The paper's contribution is the hint taxonomy (importance, decay, bias,
target, confidence), but a run's curves only show the *combined* effect.
This module attributes fitness movement to individual hints: every child
bred by the :class:`~repro.core.operators.BreedingPipeline` carries
provenance — which params mutated and through which *channel*:

``"bias"``
    The confidence gate passed and the new value came from a bias-tilted
    directional step along the param's ordinal axis.
``"target"``
    The gate passed and the value was pulled toward the authored target.
``"fallback"``
    The param has directional hints but the confidence gate *lost* (or
    no ordinal axis was available), so a uniform different value was
    drawn — the baseline GA's move, made on a hinted param.
``"uniform"``
    The param has no directional hints; plain baseline mutation.
``"noop"``
    A cardinality-1 param was selected for mutation; nothing can change.

The importance channel (which genes mutate) is visible through the
per-param proposal counts and the ``effective_importance`` series; the
value channels above cover the second decision (which values genes get).

Collection is split in two so it stays **read-only with respect to the
RNG streams** (the engine-parity CI job pins seeded curves with
observability on): the :class:`BreedingObserver` records provenance
during breeding without drawing randomness, and the engine joins it with
offspring scores *after* the evaluation batch, emitting one
``hint-attribution`` trace event per generation. Deltas are measured as
``child_score - parent_score`` (internal, higher-is-better score scale),
so "did this channel's proposals improve on their parents, and by how
much" reads directly off the report — a wrong-hints run shows a negative
or neutral mean delta on the poisoned channel.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence

__all__ = [
    "CHANNELS",
    "BreedingObserver",
    "summarize_generation",
    "HintEffectReport",
    "hint_effect_report",
]

#: Value-assignment channels a mutated gene can go through.
CHANNELS = ("bias", "target", "fallback", "uniform", "noop")


class BreedingObserver:
    """Collects per-child breeding provenance for one generation.

    Attached to :class:`~repro.core.operators.GeneticOperators` (and read
    by the :class:`~repro.core.operators.BreedingPipeline`); every method
    is pure bookkeeping — no RNG draws, no effect on the bred genomes.
    """

    def __init__(self):
        self._children: list[dict[str, Any]] = []
        self._current: dict[str, Any] | None = None
        self._pending_mutations: list[tuple[str, str]] = []

    # -- pipeline-facing hooks --------------------------------------------------

    def child_started(self, parent_score: float) -> None:
        self._current = {
            "parent_score": parent_score,
            "crossover": False,
            "mutations": [],
            "attempts": 0,
            "fallback": False,
        }

    def crossover_applied(self) -> None:
        if self._current is not None:
            self._current["crossover"] = True

    def child_finished(self) -> None:
        if self._current is not None:
            self._children.append(self._current)
            self._current = None

    # -- operator-facing hooks --------------------------------------------------

    def mutation_attempted(self, mutations: Sequence[tuple[str, str]]) -> None:
        """The channels of the most recent (possibly infeasible) attempt."""
        self._pending_mutations = list(mutations)

    def mutation_committed(self, attempts: int, fallback: bool) -> None:
        """A feasible mutation (or the fallback to the input) was accepted."""
        if self._current is None:
            return
        self._current["mutations"] = (
            [] if fallback else list(self._pending_mutations)
        )
        self._current["attempts"] = attempts
        self._current["fallback"] = fallback
        self._pending_mutations = []

    # -- engine-facing ----------------------------------------------------------

    def drain(self) -> list[dict[str, Any]]:
        """Hand over (and forget) the children recorded since the last drain."""
        children, self._children = self._children, []
        self._current = None
        return children


def _finite(value: float) -> bool:
    return value == value and value not in (float("inf"), float("-inf"))


def _cell() -> dict[str, float]:
    return {"proposals": 0, "feasible": 0, "improved": 0, "delta_sum": 0.0}


def _charge(cell: dict[str, float], delta: float | None) -> None:
    cell["proposals"] += 1
    if delta is None:
        return
    cell["feasible"] += 1
    cell["delta_sum"] += delta
    if delta > 0:
        cell["improved"] += 1


def summarize_generation(
    children: Sequence[Mapping[str, Any]],
    scores: Sequence[tuple[float, bool]],
    confidence: float = 0.0,
    hinted: bool = False,
    effective_importance: Mapping[str, float] | None = None,
) -> dict[str, Any] | None:
    """Join breeding provenance with offspring scores into one payload.

    ``children`` comes from :meth:`BreedingObserver.drain`; ``scores`` is
    the aligned ``(score, feasible)`` list for the same bred offspring.
    Returns the JSON payload of one ``hint-attribution`` trace event, or
    ``None`` when nothing was bred this generation.
    """
    if not children:
        return None
    payload: dict[str, Any] = {
        "children": len(children),
        "improved": 0,
        "crossover": 0,
        "mutation_fallbacks": 0,
        "confidence": confidence,
        "hinted": hinted,
        "params": {},
        "channels": {},
    }
    for child, (score, feasible) in zip(children, scores):
        if child["crossover"]:
            payload["crossover"] += 1
        if child["fallback"]:
            payload["mutation_fallbacks"] += 1
        delta = None
        if feasible and _finite(score) and _finite(child["parent_score"]):
            delta = score - child["parent_score"]
        if delta is not None and delta > 0:
            payload["improved"] += 1
        for name, channel in child["mutations"]:
            param = payload["params"].setdefault(
                name, {**_cell(), "channels": {}}
            )
            _charge(param, delta)
            _charge(param["channels"].setdefault(channel, _cell()), delta)
            _charge(payload["channels"].setdefault(channel, _cell()), delta)
    if effective_importance:
        payload["effective_importance"] = {
            name: round(float(value), 6)
            for name, value in effective_importance.items()
        }
    return payload


def _merge_cell(into: dict[str, float], cell: Mapping[str, float]) -> None:
    into["proposals"] += int(cell.get("proposals", 0))
    into["feasible"] += int(cell.get("feasible", 0))
    into["improved"] += int(cell.get("improved", 0))
    into["delta_sum"] += float(cell.get("delta_sum", 0.0))


def _rates(cell: Mapping[str, float]) -> dict[str, float]:
    feasible = int(cell.get("feasible", 0))
    out = {
        "proposals": int(cell.get("proposals", 0)),
        "feasible": feasible,
        "improved": int(cell.get("improved", 0)),
        "delta_sum": float(cell.get("delta_sum", 0.0)),
        "improvement_rate": 0.0,
        "mean_delta": 0.0,
    }
    if feasible:
        out["improvement_rate"] = out["improved"] / feasible
        out["mean_delta"] = out["delta_sum"] / feasible
    return out


class HintEffectReport:
    """Per-param / per-channel hint effectiveness over one or many runs.

    Aggregates ``hint-attribution`` trace events. For every param and
    every value channel it reports how many mutation proposals went
    through, what fraction of the resulting children improved on their
    parent (``improvement_rate``), and the mean parent→child score delta
    (``mean_delta``, internal score scale). Negative or ~zero mean deltas
    on the ``bias``/``target`` channels are the signature of wrong hints.
    """

    def __init__(self):
        self.generations = 0
        self.children = 0
        self.improved = 0
        self.crossover = 0
        self.mutation_fallbacks = 0
        self.hinted = False
        self.last_confidence: float | None = None
        self.params: dict[str, dict[str, Any]] = {}
        self.channels: dict[str, dict[str, float]] = {}
        self.last_effective_importance: dict[str, float] = {}

    # -- construction -----------------------------------------------------------

    def add_event(self, payload: Mapping[str, Any]) -> None:
        """Fold one ``hint-attribution`` event payload into the report."""
        self.generations += 1
        self.children += int(payload.get("children", 0))
        self.improved += int(payload.get("improved", 0))
        self.crossover += int(payload.get("crossover", 0))
        self.mutation_fallbacks += int(payload.get("mutation_fallbacks", 0))
        self.hinted = self.hinted or bool(payload.get("hinted", False))
        if "confidence" in payload:
            self.last_confidence = float(payload["confidence"])
        for name, param in payload.get("params", {}).items():
            into = self.params.setdefault(name, {**_cell(), "channels": {}})
            _merge_cell(into, param)
            for channel, cell in param.get("channels", {}).items():
                _merge_cell(into["channels"].setdefault(channel, _cell()), cell)
        for channel, cell in payload.get("channels", {}).items():
            _merge_cell(self.channels.setdefault(channel, _cell()), cell)
        importance = payload.get("effective_importance")
        if importance:
            self.last_effective_importance = dict(importance)

    @classmethod
    def from_events(cls, events: Iterable[Any]) -> "HintEffectReport":
        """Build a report from a trace — RunEvent objects or plain dicts."""
        report = cls()
        for event in events:
            kind = getattr(event, "kind", None)
            if kind is None and isinstance(event, Mapping):
                kind = event.get("kind")
            if kind != "hint-attribution":
                continue
            payload = getattr(event, "payload", None)
            if payload is None:
                payload = event
            report.add_event(payload)
        return report

    def merge(self, other: "HintEffectReport") -> "HintEffectReport":
        """Fold another report into this one (multi-run aggregation)."""
        self.generations += other.generations
        self.children += other.children
        self.improved += other.improved
        self.crossover += other.crossover
        self.mutation_fallbacks += other.mutation_fallbacks
        self.hinted = self.hinted or other.hinted
        if other.last_confidence is not None:
            self.last_confidence = other.last_confidence
        for name, param in other.params.items():
            into = self.params.setdefault(name, {**_cell(), "channels": {}})
            _merge_cell(into, param)
            for channel, cell in param["channels"].items():
                _merge_cell(into["channels"].setdefault(channel, _cell()), cell)
        for channel, cell in other.channels.items():
            _merge_cell(self.channels.setdefault(channel, _cell()), cell)
        if other.last_effective_importance:
            self.last_effective_importance = dict(other.last_effective_importance)
        return self

    # -- reading ----------------------------------------------------------------

    def channel_rates(self, channel: str) -> dict[str, float]:
        """Counts plus derived improvement_rate / mean_delta for a channel."""
        return _rates(self.channels.get(channel, _cell()))

    def as_dict(self) -> dict[str, Any]:
        """JSON body of ``GET /campaigns/<id>/hints`` (rates included)."""
        return {
            "generations": self.generations,
            "children": self.children,
            "improved": self.improved,
            "crossover": self.crossover,
            "mutation_fallbacks": self.mutation_fallbacks,
            "hinted": self.hinted,
            "confidence": self.last_confidence,
            "channels": {
                channel: _rates(cell)
                for channel, cell in sorted(self.channels.items())
            },
            "params": {
                name: {
                    **_rates(param),
                    "channels": {
                        channel: _rates(cell)
                        for channel, cell in sorted(param["channels"].items())
                    },
                }
                for name, param in sorted(self.params.items())
            },
            "effective_importance": dict(self.last_effective_importance),
        }


def hint_effect_report(events: Iterable[Any]) -> dict[str, Any]:
    """Aggregate a run trace's hint-attribution events into one report dict.

    Accepts :class:`~repro.core.kernel.RunEvent` objects or the plain
    dicts the service trace endpoint serves.
    """
    return HintEffectReport.from_events(events).as_dict()
