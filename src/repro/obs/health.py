"""Search-health diagnostics derived from the live population.

One ``health`` trace event per generation summarizes whether the search
is still exploring or has collapsed, without consuming any RNG:

``diversity``
    Mean over varying params of the normalized Shannon entropy of the
    population's values (1.0 = uniform spread, 0.0 = converged).
    Cardinality-1 params are excluded — they cannot vary.
``param_entropy`` / ``param_spread``
    The per-param breakdown: normalized entropy, and the fraction of the
    *reachable* domain (``min(population, cardinality)``) present in the
    population.
``duplicate_rate``
    Fraction of the population sharing a genome with an earlier member.
``infeasible_rate``
    Infeasible share of this generation's evaluation batch.
``convergence_velocity``
    Mean best-score improvement per generation over a recent window
    (internal score scale; 0.0 while flat).
``stalled_generations`` / ``stall_risk``
    Generations since the last best-so-far improvement, and a [0, 1]
    composite: ``min(1, 0.7 * stalled/patience + 0.3 * duplicate_rate)``
    where ``patience`` is the configured ``stall_generations`` (default
    10 when none is set). Risk ≥ ~0.7 means the stall cutoff is close or
    the population has degenerated into copies.
"""

from __future__ import annotations

import math
from typing import Any, Mapping, Sequence

__all__ = ["population_health", "stall_risk", "DEFAULT_STALL_PATIENCE"]

#: Patience assumed by :func:`stall_risk` when no stall cutoff is set.
DEFAULT_STALL_PATIENCE = 10


def _freeze(value):
    return tuple(value) if isinstance(value, list) else value


def _normalized_entropy(values: Sequence, cardinality: int) -> float:
    """Shannon entropy of the value histogram, normalized to [0, 1]."""
    ceiling = min(len(values), cardinality)
    if ceiling <= 1:
        return 0.0
    counts: dict = {}
    for value in values:
        key = _freeze(value)
        counts[key] = counts.get(key, 0) + 1
    total = len(values)
    entropy = -sum(
        (n / total) * math.log(n / total) for n in counts.values() if n
    )
    return min(1.0, entropy / math.log(ceiling))


def stall_risk(
    stalled_generations: int,
    patience: int | None,
    duplicate_rate: float,
) -> float:
    """Composite [0, 1] risk that the search has stopped making progress."""
    effective = patience if patience and patience > 0 else DEFAULT_STALL_PATIENCE
    pressure = stalled_generations / effective
    return min(1.0, 0.7 * pressure + 0.3 * min(max(duplicate_rate, 0.0), 1.0))


def population_health(
    genomes: Sequence[Any],
    *,
    cardinalities: Mapping[str, int],
    best_history: Sequence[float] = (),
    stalled_generations: int = 0,
    stall_patience: int | None = None,
    batch_size: int = 0,
    batch_infeasible: int = 0,
) -> dict[str, Any]:
    """Summarize a population into one JSON-ready ``health`` payload.

    Args:
        genomes: The surviving population's genomes (mapping-style access
            by param name; :class:`~repro.core.genome.Genome` qualifies).
        cardinalities: Domain size per param name.
        best_history: Recent best-so-far scores, oldest first (window for
            the convergence velocity).
        stalled_generations: Consecutive generations without improvement.
        stall_patience: The engine's ``stall_generations`` cutoff, if set.
        batch_size / batch_infeasible: This generation's evaluation batch
            totals, for the infeasible rate.
    """
    population = len(genomes)
    param_entropy: dict[str, float] = {}
    param_spread: dict[str, float] = {}
    varying: list[float] = []
    for name, cardinality in cardinalities.items():
        values = [genome[name] for genome in genomes]
        reachable = min(population, cardinality)
        if reachable <= 1:
            param_entropy[name] = 0.0
            param_spread[name] = 1.0 if population else 0.0
            continue
        entropy = _normalized_entropy(values, cardinality)
        param_entropy[name] = round(entropy, 6)
        distinct = len({_freeze(v) for v in values})
        param_spread[name] = round(distinct / reachable, 6)
        varying.append(entropy)
    diversity = sum(varying) / len(varying) if varying else 0.0

    duplicate_rate = 0.0
    if population:
        keys = {
            getattr(genome, "key", None) or tuple(sorted(
                (name, _freeze(genome[name])) for name in cardinalities
            ))
            for genome in genomes
        }
        duplicate_rate = 1.0 - len(keys) / population

    velocity = 0.0
    finite = [s for s in best_history if s == s and abs(s) != float("inf")]
    if len(finite) > 1:
        velocity = (finite[-1] - finite[0]) / (len(finite) - 1)

    infeasible_rate = batch_infeasible / batch_size if batch_size else 0.0
    return {
        "population": population,
        "diversity": round(diversity, 6),
        "param_entropy": param_entropy,
        "param_spread": param_spread,
        "duplicate_rate": round(duplicate_rate, 6),
        "infeasible_rate": round(infeasible_rate, 6),
        "convergence_velocity": round(velocity, 6),
        "stalled_generations": stalled_generations,
        "stall_risk": round(
            stall_risk(stalled_generations, stall_patience, duplicate_rate), 6
        ),
    }
