"""Structured JSON logging with campaign-id correlation.

The service's default logging is human lines on stderr; fleet operators
want one JSON object per line so a collector can index by campaign. The
formatter serializes every record to a stable envelope::

    {"ts": 1719400000.123, "level": "info", "logger": "nautilus.scheduler",
     "message": "campaign finished", "campaign": "c000001", "state": "done"}

Any extra attributes passed via ``logging``'s ``extra={...}`` mechanism
(``campaign``, ``state``, ``event`` …) are lifted into the envelope, so
call sites stay plain ``log.info("...", extra={"campaign": cid})``.

Enable with ``nautilus serve --log-json`` or programmatically via
:func:`configure_json_logging`.
"""

from __future__ import annotations

import json
import logging
import sys
from typing import Any, TextIO

__all__ = ["JsonLogFormatter", "configure_json_logging"]

#: ``LogRecord`` attributes that are plumbing, not payload.
_STANDARD_ATTRS = frozenset(
    (
        "args", "asctime", "created", "exc_info", "exc_text", "filename",
        "funcName", "levelname", "levelno", "lineno", "module", "msecs",
        "msg", "message", "name", "pathname", "process", "processName",
        "relativeCreated", "stack_info", "taskName", "thread", "threadName",
    )
)


class JsonLogFormatter(logging.Formatter):
    """Formats each record as one JSON line; extras become fields."""

    def format(self, record: logging.LogRecord) -> str:
        payload: dict[str, Any] = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "message": record.getMessage(),
        }
        for key, value in record.__dict__.items():
            if key in _STANDARD_ATTRS or key in payload:
                continue
            try:
                json.dumps(value)
            except (TypeError, ValueError):
                value = repr(value)
            payload[key] = value
        if record.exc_info and record.exc_info[0] is not None:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload)


def configure_json_logging(
    logger_name: str = "nautilus",
    level: int = logging.INFO,
    stream: TextIO | None = None,
) -> logging.Logger:
    """Route a logger tree to one-JSON-line-per-record on a stream.

    Replaces any handlers previously installed by this function (safe to
    call twice, e.g. across daemon restarts in tests) and stops
    propagation so records are not double-printed by a root handler.
    """
    logger = logging.getLogger(logger_name)
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(JsonLogFormatter())
    handler.set_name(f"{logger_name}-json")
    for existing in list(logger.handlers):
        if existing.get_name() == handler.get_name():
            logger.removeHandler(existing)
    logger.addHandler(handler)
    logger.setLevel(level)
    logger.propagate = False
    return logger
