"""A small Prometheus-style metrics registry (stdlib only).

The service already serves a JSON metrics snapshot; operators want the
same numbers scrapeable by Prometheus. Rather than depending on
``prometheus_client`` (not available in the image, and overkill for a
handful of families), this module implements the three metric kinds the
repo needs — counters, gauges, histograms — with label support and the
text exposition format 0.0.4 that every Prometheus scraper understands.

Conventions:

* metric names are ``nautilus_*`` and follow Prometheus naming rules
  (counters end in ``_total``, durations are ``_seconds``);
* a metric family is created once via :meth:`MetricsRegistry.counter` /
  ``gauge`` / ``histogram`` — repeated calls with the same name return
  the same family object, so layers can share families without passing
  them around;
* all mutation goes through one registry lock, so the eval stack's
  worker threads, the scheduler thread, and HTTP handler threads can
  record concurrently.
"""

from __future__ import annotations

import threading
from typing import Iterable, Mapping, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "render_prometheus",
    "parse_prometheus",
    "DEFAULT_LATENCY_BUCKETS",
]

#: Default histogram buckets, tuned for fast analytical evaluations
#: (sub-millisecond) through real synthesis jobs (minutes).
DEFAULT_LATENCY_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

_INF = float("inf")


def _escape_label_value(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace("\n", "\\n")
        .replace('"', '\\"')
    )


def _unescape_label_value(value: str) -> str:
    """Invert :func:`_escape_label_value` (exposition-format escaping)."""
    out, i = [], 0
    while i < len(value):
        char = value[i]
        if char == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            if nxt == "n":
                out.append("\n")
                i += 2
                continue
            if nxt in ('"', "\\"):
                out.append(nxt)
                i += 2
                continue
        out.append(char)
        i += 1
    return "".join(out)


def _format_value(value: float) -> str:
    if value == _INF:
        return "+Inf"
    if value == -_INF:
        return "-Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _label_suffix(labelnames: Sequence[str], labelvalues: Sequence[str]) -> str:
    if not labelnames:
        return ""
    pairs = ",".join(
        f'{name}="{_escape_label_value(value)}"'
        for name, value in zip(labelnames, labelvalues)
    )
    return "{" + pairs + "}"


class _Family:
    """Shared machinery of one named metric family with labels."""

    kind = "untyped"

    def __init__(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str],
        lock: threading.Lock,
    ):
        self.name = name
        self.help_text = help_text
        self.labelnames = tuple(labelnames)
        self._lock = lock
        self._series: dict[tuple, object] = {}

    def _key(self, labels: Mapping[str, str]) -> tuple:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} expects labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)

    def remove(self, **labels: str) -> None:
        """Drop one label set (e.g. a worker that left the fleet).

        Long-lived daemons must prune per-worker series when the worker
        deregisters or expires, or ``/metrics`` grows without bound.
        Removing a series that was never recorded is a no-op.
        """
        with self._lock:
            self._series.pop(self._key(labels), None)

    def _render_header(self) -> list[str]:
        lines = []
        if self.help_text:
            lines.append(f"# HELP {self.name} {self.help_text}")
        lines.append(f"# TYPE {self.name} {self.kind}")
        return lines


class Counter(_Family):
    """A monotonically increasing value (per label set)."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        key = self._key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        with self._lock:
            return float(self._series.get(self._key(labels), 0.0))

    def _render(self) -> list[str]:
        lines = self._render_header()
        for key in sorted(self._series):
            suffix = _label_suffix(self.labelnames, key)
            lines.append(f"{self.name}{suffix} {_format_value(self._series[key])}")
        return lines


class Gauge(_Family):
    """A value that can go up and down (per label set)."""

    kind = "gauge"

    def set(self, value: float, **labels: str) -> None:
        key = self._key(labels)
        with self._lock:
            self._series[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        key = self._key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        with self._lock:
            return float(self._series.get(self._key(labels), 0.0))

    def _render(self) -> list[str]:
        lines = self._render_header()
        for key in sorted(self._series):
            suffix = _label_suffix(self.labelnames, key)
            lines.append(f"{self.name}{suffix} {_format_value(self._series[key])}")
        return lines


class Histogram(_Family):
    """Cumulative-bucket histogram of observed values (per label set)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str],
        lock: threading.Lock,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ):
        super().__init__(name, help_text, labelnames, lock)
        bounds = sorted(float(b) for b in buckets)
        if not bounds:
            raise ValueError(f"histogram {self.name!r} needs at least one bucket")
        self.buckets = tuple(bounds)

    def observe(self, value: float, **labels: str) -> None:
        key = self._key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = {"counts": [0] * len(self.buckets), "sum": 0.0, "count": 0}
                self._series[key] = series
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    series["counts"][i] += 1
            series["sum"] += value
            series["count"] += 1

    def snapshot(self, **labels: str) -> dict:
        with self._lock:
            series = self._series.get(self._key(labels))
            if series is None:
                return {"counts": [0] * len(self.buckets), "sum": 0.0, "count": 0}
            return {
                "counts": list(series["counts"]),
                "sum": series["sum"],
                "count": series["count"],
            }

    def _render(self) -> list[str]:
        lines = self._render_header()
        bucket_names = self.labelnames + ("le",)
        for key in sorted(self._series):
            series = self._series[key]
            for bound, count in zip(self.buckets, series["counts"]):
                suffix = _label_suffix(bucket_names, key + (_format_value(bound),))
                lines.append(f"{self.name}_bucket{suffix} {count}")
            suffix = _label_suffix(bucket_names, key + ("+Inf",))
            lines.append(f"{self.name}_bucket{suffix} {series['count']}")
            plain = _label_suffix(self.labelnames, key)
            lines.append(f"{self.name}_sum{plain} {_format_value(series['sum'])}")
            lines.append(f"{self.name}_count{plain} {series['count']}")
        return lines


class MetricsRegistry:
    """Get-or-create home for metric families, with text exposition.

    One registry serves one process (the service daemon creates one and
    threads it through the scheduler into every campaign's evaluation
    stack). Families are identified by name; asking for an existing name
    with a different kind or label set raises, which catches layer
    mismatches early.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._families: dict[str, _Family] = {}

    def _get_or_create(self, cls, name, help_text, labelnames, **kwargs):
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if not isinstance(family, cls) or family.labelnames != tuple(labelnames):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{family.kind} with labels {family.labelnames}"
                    )
                return family
            family = cls(name, help_text, labelnames, self._lock, **kwargs)
            self._families[name] = family
            return family

    def counter(
        self, name: str, help_text: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        return self._get_or_create(Counter, name, help_text, labelnames)

    def gauge(
        self, name: str, help_text: str = "", labelnames: Sequence[str] = ()
    ) -> Gauge:
        return self._get_or_create(Gauge, name, help_text, labelnames)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] | None = None,
    ) -> Histogram:
        kwargs = {} if buckets is None else {"buckets": buckets}
        return self._get_or_create(Histogram, name, help_text, labelnames, **kwargs)

    def families(self) -> list[str]:
        with self._lock:
            return sorted(self._families)

    def render(self) -> str:
        """The whole registry in Prometheus text exposition format 0.0.4."""
        lines: list[str] = []
        with self._lock:
            families = [self._families[name] for name in sorted(self._families)]
        for family in families:
            lines.extend(family._render())
        return "\n".join(lines) + "\n" if lines else ""


def render_prometheus(registry: MetricsRegistry) -> str:
    """Functional alias for :meth:`MetricsRegistry.render`."""
    return registry.render()


def parse_prometheus(text: str) -> dict[str, dict]:
    """Parse text exposition back into ``{family: {"type", "samples"}}``.

    A deliberately small parser — enough to round-trip what
    :meth:`MetricsRegistry.render` produces and to let tests and the
    obs-smoke job assert on families and sample values. ``samples`` maps
    a ``(sample_name, ((label, value), ...))`` key to a float.
    """
    families: dict[str, dict] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(None, 3)
            families.setdefault(name, {"type": kind, "samples": {}})
            continue
        if line.startswith("#"):
            continue
        name_and_labels, _, raw_value = line.rpartition(" ")
        labels: tuple = ()
        sample_name = name_and_labels
        if "{" in name_and_labels:
            sample_name, _, label_body = name_and_labels.partition("{")
            label_body = label_body.rstrip("}")
            parsed = []
            for part in _split_labels(label_body):
                label, _, quoted = part.partition("=")
                if quoted.startswith('"') and quoted.endswith('"') and len(quoted) >= 2:
                    quoted = quoted[1:-1]
                parsed.append((label, _unescape_label_value(quoted)))
            labels = tuple(parsed)
        family_name = sample_name
        for suffix in ("_bucket", "_sum", "_count"):
            base = sample_name.removesuffix(suffix)
            if base != sample_name and families.get(base, {}).get("type") == "histogram":
                family_name = base
                break
        family = families.setdefault(family_name, {"type": "untyped", "samples": {}})
        family["samples"][(sample_name, labels)] = float(raw_value)
    return families


def _split_labels(body: str) -> Iterable[str]:
    """Split ``a="x",b="y"`` on commas outside quotes."""
    part, in_quotes, escaped = "", False, False
    for char in body:
        if escaped:
            part += char
            escaped = False
        elif char == "\\":
            part += char
            escaped = True
        elif char == '"':
            part += char
            in_quotes = not in_quotes
        elif char == "," and not in_quotes:
            if part:
                yield part
            part = ""
        else:
            part += char
    if part:
        yield part
