"""Network topologies for the CONNECT-style NoC generator (Figure 2).

Eight topology families, matching the legend of the paper's Figure 2:
ring, double ring, concentrated ring, concentrated double ring, mesh,
torus, fat tree and butterfly — all instantiated for 64 endpoints.

A :class:`Topology` is a concrete graph of routers and channels plus the
derived quantities the network model needs: per-router radix, channel
lengths under a simple floorplan, bisection channel count and average hop
count. Graphs are built with :mod:`networkx` so tests can independently
verify structural properties (degree, connectivity, cut widths).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import networkx as nx

from ..core.errors import NautilusError

__all__ = [
    "Channel",
    "Topology",
    "TOPOLOGY_FAMILIES",
    "build_topology",
    "ring",
    "double_ring",
    "concentrated_ring",
    "concentrated_double_ring",
    "mesh",
    "torus",
    "fat_tree",
    "butterfly",
]


@dataclass(frozen=True)
class Channel:
    """A (bidirectional) inter-router channel with a physical length."""

    src: str
    dst: str
    length_mm: float


@dataclass(frozen=True)
class Topology:
    """A concrete network topology instance.

    Attributes:
        name: Family name (Figure 2 legend entry).
        endpoints: Number of network endpoints served.
        graph: Router-level connectivity graph (endpoints excluded).
        channels: Inter-router channels with floorplan lengths.
        router_radix: Ports per router (network ports + endpoint ports).
        concentration: Endpoints attached per router.
        bisection_channels: Channels crossing the canonical bisection,
            counted per direction.
        avg_hops: Average router-to-router hop count under uniform traffic
            (closed-form per family).
    """

    name: str
    endpoints: int
    graph: nx.Graph = field(compare=False, repr=False)
    channels: tuple[Channel, ...] = field(compare=False, repr=False)
    router_radix: int
    concentration: int
    bisection_channels: int
    avg_hops: float

    @property
    def num_routers(self) -> int:
        return self.graph.number_of_nodes()

    def total_channel_length_mm(self) -> float:
        """Sum of channel lengths, both directions counted once."""
        return sum(ch.length_mm for ch in self.channels)


#: Die edge assumed for the floorplan model (a 64-endpoint 65nm SoC region).
_DIE_MM = 8.0


def _ring_positions(n: int) -> list[tuple[float, float]]:
    """Place n routers around the die perimeter."""
    radius = _DIE_MM / 2.0
    return [
        (
            radius + radius * math.cos(2 * math.pi * i / n),
            radius + radius * math.sin(2 * math.pi * i / n),
        )
        for i in range(n)
    ]


def _grid_positions(rows: int, cols: int) -> dict[tuple[int, int], tuple[float, float]]:
    """Place a rows x cols grid evenly over the die."""
    dx = _DIE_MM / max(cols - 1, 1)
    dy = _DIE_MM / max(rows - 1, 1)
    return {(r, c): (c * dx, r * dy) for r in range(rows) for c in range(cols)}


def _distance(a: tuple[float, float], b: tuple[float, float]) -> float:
    return math.hypot(a[0] - b[0], a[1] - b[1])


def _edges_to_channels(
    graph: nx.Graph, positions: dict[str, tuple[float, float]]
) -> tuple[Channel, ...]:
    return tuple(
        Channel(u, v, max(_distance(positions[u], positions[v]), 0.1))
        for u, v in sorted(graph.edges())
    )


def _ring_family(
    endpoints: int, concentration: int, lanes: int, name: str
) -> Topology:
    """Shared builder for the four ring variants.

    ``lanes`` is 1 for single rings, 2 for double rings (an extra pair of
    ring links per neighbor, modeled as parallel channels).
    """
    num_routers = endpoints // concentration
    graph = nx.MultiGraph() if lanes > 1 else nx.Graph()
    nodes = [f"r{i}" for i in range(num_routers)]
    graph.add_nodes_from(nodes)
    coords = _ring_positions(num_routers)
    positions = dict(zip(nodes, coords))
    channels = []
    for i in range(num_routers):
        u, v = nodes[i], nodes[(i + 1) % num_routers]
        for _ in range(lanes):
            graph.add_edge(u, v)
            channels.append(Channel(u, v, max(_distance(positions[u], positions[v]), 0.1)))
    radix = 2 * lanes + concentration
    # Uniform-traffic average ring distance ~ n/4 hops.
    avg_hops = num_routers / 4.0
    return Topology(
        name=name,
        endpoints=endpoints,
        graph=graph,
        channels=tuple(channels),
        router_radix=radix,
        concentration=concentration,
        bisection_channels=2 * lanes,
        avg_hops=avg_hops,
    )


def ring(endpoints: int = 64) -> Topology:
    """Simple ring: one router per endpoint."""
    return _ring_family(endpoints, 1, 1, "ring")


def double_ring(endpoints: int = 64) -> Topology:
    """Ring with doubled channels (two lanes per neighbor)."""
    return _ring_family(endpoints, 1, 2, "double_ring")


def concentrated_ring(endpoints: int = 64, concentration: int = 4) -> Topology:
    """Ring of ``endpoints/concentration`` routers, several endpoints each."""
    return _ring_family(endpoints, concentration, 1, "concentrated_ring")


def concentrated_double_ring(endpoints: int = 64, concentration: int = 4) -> Topology:
    """Concentrated ring with doubled channels."""
    return _ring_family(endpoints, concentration, 2, "concentrated_double_ring")


def mesh(endpoints: int = 64) -> Topology:
    """2D mesh, one endpoint per router."""
    side = int(math.isqrt(endpoints))
    if side * side != endpoints:
        raise NautilusError(f"mesh needs a square endpoint count, got {endpoints}")
    graph = nx.Graph()
    grid = _grid_positions(side, side)
    positions = {}
    for r in range(side):
        for c in range(side):
            name = f"r{r}_{c}"
            graph.add_node(name)
            positions[name] = grid[(r, c)]
    for r in range(side):
        for c in range(side):
            if c + 1 < side:
                graph.add_edge(f"r{r}_{c}", f"r{r}_{c + 1}")
            if r + 1 < side:
                graph.add_edge(f"r{r}_{c}", f"r{r + 1}_{c}")
    channels = _edges_to_channels(graph, positions)
    # Average Manhattan distance on a side x side grid is ~2/3 * side.
    avg_hops = 2.0 * side / 3.0
    return Topology(
        name="mesh",
        endpoints=endpoints,
        graph=graph,
        channels=channels,
        router_radix=5,
        concentration=1,
        bisection_channels=side,
        avg_hops=avg_hops,
    )


def torus(endpoints: int = 64) -> Topology:
    """2D folded torus: mesh plus wraparound links."""
    side = int(math.isqrt(endpoints))
    if side * side != endpoints:
        raise NautilusError(f"torus needs a square endpoint count, got {endpoints}")
    base = mesh(endpoints)
    graph = base.graph.copy()
    positions = {}
    grid = _grid_positions(side, side)
    for r in range(side):
        for c in range(side):
            positions[f"r{r}_{c}"] = grid[(r, c)]
    wrap_channels = list(base.channels)
    for r in range(side):
        u, v = f"r{r}_0", f"r{r}_{side - 1}"
        graph.add_edge(u, v)
        # Folded torus wraparounds route across the die in segments.
        wrap_channels.append(Channel(u, v, _DIE_MM))
    for c in range(side):
        u, v = f"r0_{c}", f"r{side - 1}_{c}"
        graph.add_edge(u, v)
        wrap_channels.append(Channel(u, v, _DIE_MM))
    avg_hops = side / 2.0
    return Topology(
        name="torus",
        endpoints=endpoints,
        graph=graph,
        channels=tuple(wrap_channels),
        router_radix=5,
        concentration=1,
        bisection_channels=2 * side,
        avg_hops=avg_hops,
    )


def fat_tree(endpoints: int = 64, arity: int = 4) -> Topology:
    """k-ary n-tree (here 4-ary 3-tree for 64 endpoints).

    Full bisection bandwidth: every level has ``endpoints/arity`` switches
    of radix ``2 * arity``.
    """
    levels = round(math.log(endpoints, arity))
    if arity**levels != endpoints:
        raise NautilusError(
            f"fat tree needs endpoints to be a power of arity; "
            f"got {endpoints} with arity {arity}"
        )
    per_level = endpoints // arity
    graph = nx.MultiGraph()
    positions = {}
    for level in range(levels):
        for s in range(per_level):
            name = f"l{level}_s{s}"
            graph.add_node(name)
            positions[name] = (
                s * _DIE_MM / max(per_level - 1, 1),
                level * _DIE_MM / max(levels - 1, 1),
            )
    channels = []
    for level in range(levels - 1):
        group = arity ** (level + 1)
        for s in range(per_level):
            block = s // group * group
            for a in range(arity):
                upper = block + (s + a * group // arity) % group
                u, v = f"l{level}_s{s}", f"l{level + 1}_s{upper % per_level}"
                graph.add_edge(u, v)
                channels.append(
                    Channel(u, v, max(_distance(positions[u], positions[v]), 0.1))
                )
    avg_hops = 2.0 * (levels - 1) * (1 - 1.0 / arity) + 1.0
    return Topology(
        name="fat_tree",
        endpoints=endpoints,
        graph=graph,
        channels=tuple(channels),
        router_radix=2 * arity,
        concentration=arity,  # leaves attach at the bottom level
        bisection_channels=endpoints // 2,
        avg_hops=avg_hops,
    )


def butterfly(endpoints: int = 64, arity: int = 4) -> Topology:
    """k-ary n-fly unidirectional butterfly.

    Cheapest path diversity of the lot: exactly one route per source
    destination pair, half-bisection relative to the fat tree.
    """
    stages = round(math.log(endpoints, arity))
    if arity**stages != endpoints:
        raise NautilusError(
            f"butterfly needs endpoints to be a power of arity; "
            f"got {endpoints} with arity {arity}"
        )
    per_stage = endpoints // arity
    graph = nx.MultiDiGraph()
    positions = {}
    for stage in range(stages):
        for s in range(per_stage):
            name = f"st{stage}_s{s}"
            graph.add_node(name)
            positions[name] = (
                stage * _DIE_MM / max(stages - 1, 1),
                s * _DIE_MM / max(per_stage - 1, 1),
            )
    channels = []
    for stage in range(stages - 1):
        digit = arity ** (stages - 2 - stage)
        for s in range(per_stage):
            for a in range(arity):
                # Butterfly permutation: replace one radix-digit per stage.
                t = (s - (s // digit % arity) * digit) + a * digit
                u, v = f"st{stage}_s{s}", f"st{stage + 1}_s{t % per_stage}"
                graph.add_edge(u, v)
                channels.append(
                    Channel(u, v, max(_distance(positions[u], positions[v]), 0.1))
                )
    return Topology(
        name="butterfly",
        endpoints=endpoints,
        graph=graph,
        channels=tuple(channels),
        router_radix=2 * arity,
        concentration=arity,
        bisection_channels=endpoints // 4,
        avg_hops=float(stages),
    )


#: Figure 2 legend: family name -> builder.
TOPOLOGY_FAMILIES = {
    "ring": ring,
    "double_ring": double_ring,
    "concentrated_ring": concentrated_ring,
    "concentrated_double_ring": concentrated_double_ring,
    "mesh": mesh,
    "torus": torus,
    "fat_tree": fat_tree,
    "butterfly": butterfly,
}


def build_topology(family: str, endpoints: int = 64) -> Topology:
    """Instantiate a topology family by name."""
    try:
        builder = TOPOLOGY_FAMILIES[family]
    except KeyError:
        raise NautilusError(
            f"unknown topology family {family!r}; "
            f"choose from {sorted(TOPOLOGY_FAMILIES)}"
        ) from None
    return builder(endpoints)
