"""Network-level design space: topology family x router configuration.

The paper's introduction motivates Nautilus with exactly this problem: "an
IP user could pick any of these [64-endpoint NoC configurations] to satisfy
the functional-level connectivity requirements of his or her application" —
thousands of interchangeable networks spanning orders of magnitude in area,
power and performance (Figure 2). This module makes that outer space
searchable: topology family plus the router knobs that matter at network
scale, evaluated through the CONNECT-style generator (and optionally the
cycle-level simulator).
"""

from __future__ import annotations

from typing import Any, Mapping

from ..core.evaluator import CallableEvaluator
from ..core.genome import Genome
from ..core.hints import HintSet, ParamHints
from ..core.params import ChoiceParam, IntParam, PowOfTwoParam
from ..core.space import DesignSpace
from ..synth.flow import SynthesisFlow
from .network import NetworkGenerator
from .topology import TOPOLOGY_FAMILIES

__all__ = [
    "network_space",
    "NetworkEvaluator",
    "network_evaluator",
    "bandwidth_density_hints",
]

#: Topology families ordered by bisection richness (rings -> fat tree); the
#: ordering auxiliary hint below relies on this.
_FAMILIES_BY_BISECTION = (
    "concentrated_ring",
    "ring",
    "concentrated_double_ring",
    "double_ring",
    "mesh",
    "butterfly",
    "torus",
    "fat_tree",
)


def network_space(endpoints: int = 64) -> DesignSpace:
    """The 64-endpoint network configuration space (~1.4k points)."""
    if endpoints != 64:
        # All families support 64; other counts need per-family validation.
        for family in TOPOLOGY_FAMILIES:
            TOPOLOGY_FAMILIES[family](endpoints)  # raises if unsupported
    return DesignSpace(
        f"connect_noc_{endpoints}",
        [
            ChoiceParam("topology", tuple(TOPOLOGY_FAMILIES)),
            PowOfTwoParam("flit_width", 16, 256),
            PowOfTwoParam("num_vcs", 2, 8),
            PowOfTwoParam("buffer_depth", 2, 16),
            IntParam("pipeline_stages", 1, 4),
        ],
    )


class NetworkEvaluator:
    """Evaluator: generate the network and report ASIC-level metrics.

    Metrics include ``area_mm2``, ``power_mw``, ``bisection_gbps``,
    ``avg_latency_ns`` and the densities ``bw_per_mm2`` / ``bw_per_mw`` that
    network architects actually optimize.
    """

    def __init__(self, endpoints: int = 64, flow: SynthesisFlow | None = None):
        self.endpoints = endpoints
        self.generator = NetworkGenerator(flow)

    def evaluate(self, genome: Genome | Mapping[str, Any]) -> dict[str, float]:
        config = genome.as_dict() if isinstance(genome, Genome) else dict(genome)
        family = config.pop("topology")
        report = self.generator.generate(family, self.endpoints, config)
        return report.metrics()


def network_evaluator(
    endpoints: int = 64, flow: SynthesisFlow | None = None
) -> CallableEvaluator:
    """Convenience: a core-API evaluator over the network generator."""
    evaluator = NetworkEvaluator(endpoints, flow)
    return CallableEvaluator(evaluator.evaluate)


def bandwidth_density_hints(confidence: float = 0.7) -> HintSet:
    """Author hints for maximizing bisection bandwidth per mm^2.

    Network-architect knowledge: bandwidth density is won by topologies with
    rich bisections (the ordering auxiliary ranks the families), wide flits
    (wires are cheaper than router area), few VCs and shallow buffers
    (router area without bandwidth), and enough pipeline depth to keep the
    clock high.
    """
    return HintSet(
        {
            "topology": ParamHints(
                importance=90, bias=0.9, ordering=_FAMILIES_BY_BISECTION
            ),
            "num_vcs": ParamHints(importance=60, bias=-0.8),
            "buffer_depth": ParamHints(importance=45, bias=-0.6),
            "pipeline_stages": ParamHints(importance=45, bias=0.7),
            "flit_width": ParamHints(importance=35, bias=0.6),
        },
        confidence=confidence,
        importance_decay=0.04,
    )
