"""NoC substrate: VC router generator and CONNECT-style network generator.

Implements the two NoC systems the paper evaluates on:

* a highly-parameterized virtual-channel router (standing in for the
  Stanford open-source router), with the 9-parameter, ~30k-point design
  space of Section 4.1 (:mod:`repro.noc.router`, :mod:`repro.noc.space`);
* a network generator in the style of CONNECT — topology families, 65nm
  ASIC area/power, peak bisection bandwidth — behind the paper's Figure 2
  (:mod:`repro.noc.topology`, :mod:`repro.noc.network`,
  :mod:`repro.noc.asic`);
* the non-expert hint sets used by the Figure 4/5 experiments
  (:mod:`repro.noc.hints`).
"""

from .router import (
    BUFFER_ORGS,
    CROSSBARS,
    RouterConfig,
    SW_ALLOCATORS,
    VC_ALLOCATORS,
    build_router,
    router_latency_cycles,
)
from .space import RouterEvaluator, router_evaluator, router_space
from .topology import (
    Channel,
    TOPOLOGY_FAMILIES,
    Topology,
    build_topology,
    butterfly,
    concentrated_double_ring,
    concentrated_ring,
    double_ring,
    fat_tree,
    mesh,
    ring,
    torus,
)
from .network import NetworkGenerator, NetworkReport, default_router_config
from .asic import AsicEstimate, asic_estimate, wire_area_mm2, wire_power_mw
from .netspace import (
    NetworkEvaluator,
    bandwidth_density_hints,
    network_evaluator,
    network_space,
)
from .traffic import (
    TRAFFIC_PATTERNS,
    BitComplement,
    Hotspot,
    TrafficPattern,
    Transpose,
    UniformRandom,
    make_pattern,
)
from .simulation import (
    NetworkSimulator,
    SimulationReport,
    saturation_throughput,
    simulate_network,
)
from .hints import (
    STRONG_CONFIDENCE,
    WEAK_CONFIDENCE,
    area_delay_hints,
    estimate_router_hints,
    frequency_hints,
)

__all__ = [
    "RouterConfig",
    "build_router",
    "router_latency_cycles",
    "VC_ALLOCATORS",
    "SW_ALLOCATORS",
    "CROSSBARS",
    "BUFFER_ORGS",
    "router_space",
    "RouterEvaluator",
    "router_evaluator",
    "Topology",
    "Channel",
    "TOPOLOGY_FAMILIES",
    "build_topology",
    "ring",
    "double_ring",
    "concentrated_ring",
    "concentrated_double_ring",
    "mesh",
    "torus",
    "fat_tree",
    "butterfly",
    "NetworkGenerator",
    "NetworkReport",
    "default_router_config",
    "AsicEstimate",
    "asic_estimate",
    "wire_area_mm2",
    "wire_power_mw",
    "network_space",
    "NetworkEvaluator",
    "network_evaluator",
    "bandwidth_density_hints",
    "TrafficPattern",
    "UniformRandom",
    "BitComplement",
    "Transpose",
    "Hotspot",
    "TRAFFIC_PATTERNS",
    "make_pattern",
    "NetworkSimulator",
    "SimulationReport",
    "simulate_network",
    "saturation_throughput",
    "frequency_hints",
    "area_delay_hints",
    "estimate_router_hints",
    "WEAK_CONFIDENCE",
    "STRONG_CONFIDENCE",
]
