"""Synthetic traffic patterns for the NoC simulator.

The standard kernel set from the interconnection-networks literature
(Dally & Towles ch. 3): each pattern maps a source endpoint to a
destination endpoint, possibly randomized per packet. Patterns stress
different aspects of a topology — uniform random spreads load evenly,
bit-complement crosses the bisection on every packet, transpose loads the
diagonal, hotspot concentrates on one victim endpoint.
"""

from __future__ import annotations

import math
import random
from typing import Callable, Protocol

from ..core.errors import NautilusError

__all__ = [
    "TrafficPattern",
    "UniformRandom",
    "BitComplement",
    "Transpose",
    "Hotspot",
    "TRAFFIC_PATTERNS",
    "make_pattern",
]


class TrafficPattern(Protocol):
    """Maps a source endpoint to this packet's destination endpoint."""

    def destination(
        self, source: int, endpoints: int, rng: random.Random
    ) -> int: ...  # pragma: no cover


class UniformRandom:
    """Every packet picks a uniform random destination (not itself)."""

    name = "uniform"

    def destination(self, source: int, endpoints: int, rng: random.Random) -> int:
        destination = rng.randrange(endpoints - 1)
        return destination + 1 if destination >= source else destination


class BitComplement:
    """d = ~s: every packet crosses the network bisection.

    The canonical worst case for rings and meshes, the showcase for fat
    trees.
    """

    name = "bit_complement"

    def destination(self, source: int, endpoints: int, rng: random.Random) -> int:
        bits = max((endpoints - 1).bit_length(), 1)
        destination = (~source) & ((1 << bits) - 1)
        return destination % endpoints


class Transpose:
    """(x, y) -> (y, x) on the sqrt(N) x sqrt(N) endpoint grid."""

    name = "transpose"

    def destination(self, source: int, endpoints: int, rng: random.Random) -> int:
        side = int(math.isqrt(endpoints))
        if side * side != endpoints:
            raise NautilusError(
                f"transpose traffic needs a square endpoint count, got {endpoints}"
            )
        row, col = divmod(source, side)
        return col * side + row


class Hotspot:
    """A fraction of traffic targets one hot endpoint, the rest uniform."""

    name = "hotspot"

    def __init__(self, hot_endpoint: int = 0, fraction: float = 0.2):
        if not 0.0 < fraction <= 1.0:
            raise NautilusError("hotspot fraction must be in (0, 1]")
        self.hot_endpoint = hot_endpoint
        self.fraction = fraction
        self._uniform = UniformRandom()

    def destination(self, source: int, endpoints: int, rng: random.Random) -> int:
        if rng.random() < self.fraction and source != self.hot_endpoint:
            return self.hot_endpoint % endpoints
        return self._uniform.destination(source, endpoints, rng)


#: Registry of pattern factories by name.
TRAFFIC_PATTERNS: dict[str, Callable[[], TrafficPattern]] = {
    "uniform": UniformRandom,
    "bit_complement": BitComplement,
    "transpose": Transpose,
    "hotspot": Hotspot,
}


def make_pattern(name: str) -> TrafficPattern:
    """Instantiate a pattern by registry name."""
    try:
        return TRAFFIC_PATTERNS[name]()
    except KeyError:
        raise NautilusError(
            f"unknown traffic pattern {name!r}; choose from "
            f"{sorted(TRAFFIC_PATTERNS)}"
        ) from None
