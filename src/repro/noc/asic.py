"""FPGA-report to 65nm-ASIC conversion for the network experiments.

The paper's Figure 2 characterizes CONNECT networks "targeting a commercial
65nm technology" in mm^2 and mW. Our synthesis flow reports FPGA resources;
this module converts a :class:`~repro.synth.flow.SynthesisReport` into ASIC
area/power using NAND2-equivalent bookkeeping (see
:class:`~repro.synth.library.AsicLibrary`), and prices wires by bit-length.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..synth.flow import SynthesisReport
from ..synth.library import ASIC65, AsicLibrary

__all__ = ["AsicEstimate", "asic_estimate", "wire_area_mm2", "wire_power_mw"]


@dataclass(frozen=True)
class AsicEstimate:
    """ASIC view of one synthesized block."""

    area_mm2: float
    power_mw: float
    fmax_mhz: float
    gates: float


def asic_estimate(
    report: SynthesisReport, lib: AsicLibrary = ASIC65
) -> AsicEstimate:
    """Convert an FPGA synthesis report to 65nm area/power/frequency."""
    gates = report.luts * lib.gates_per_lut + report.ffs * lib.gates_per_ff
    area_um2 = gates * lib.gate_area_um2 + report.brams * lib.bram_area_um2
    fmax = report.fmax_mhz * lib.asic_speedup
    dynamic_nw = gates * lib.dynamic_nw_per_gate_mhz * fmax
    leakage_nw = gates * lib.leakage_nw_per_gate
    return AsicEstimate(
        area_mm2=area_um2 / 1e6,
        power_mw=(dynamic_nw + leakage_nw) / 1e6,
        fmax_mhz=fmax,
        gates=gates,
    )


def wire_area_mm2(
    bits: int, length_mm: float, lib: AsicLibrary = ASIC65
) -> float:
    """Routing-track area of one channel of ``bits`` wires."""
    return bits * length_mm * lib.wire_area_um2_per_bit_mm / 1e6


def wire_power_mw(
    bits: int, length_mm: float, freq_mhz: float, lib: AsicLibrary = ASIC65
) -> float:
    """Dynamic power of one channel toggling at ``freq_mhz``."""
    return bits * length_mm * freq_mhz * lib.wire_power_nw_per_bit_mhz_mm / 1e6
