"""CONNECT-style network generator: topology + router config -> full NoC.

Reproduces the paper's Figure 2 pipeline: pick a topology family and a
router configuration, synthesize the (per-family radix) router, replicate it
over the topology, add channel wiring, and report network-level metrics
targeting a commercial-65nm-like node:

* ``area_mm2`` — routers plus wire tracks;
* ``power_mw`` — router logic plus channel switching power;
* ``bisection_gbps`` — peak bisection bandwidth: channels crossing the
  bisection x flit width x achieved clock rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from ..synth.flow import SynthesisFlow
from .asic import AsicEstimate, asic_estimate, wire_area_mm2, wire_power_mw
from .router import RouterConfig, build_router, router_latency_cycles
from .topology import Topology, build_topology

__all__ = ["NetworkReport", "NetworkGenerator", "default_router_config"]


@dataclass(frozen=True)
class NetworkReport:
    """Network-level metrics for one (topology, router config) pair."""

    topology: str
    endpoints: int
    num_routers: int
    router_radix: int
    flit_width: int
    fmax_mhz: float
    area_mm2: float
    power_mw: float
    bisection_gbps: float
    avg_latency_ns: float
    router_area_mm2: float
    wire_area_mm2: float

    def metrics(self) -> dict[str, float]:
        """Metrics dict for Nautilus objectives over network spaces."""
        return {
            "fmax_mhz": self.fmax_mhz,
            "area_mm2": self.area_mm2,
            "power_mw": self.power_mw,
            "bisection_gbps": self.bisection_gbps,
            "avg_latency_ns": self.avg_latency_ns,
            "bw_per_mm2": self.bisection_gbps / self.area_mm2,
            "bw_per_mw": self.bisection_gbps / self.power_mw,
        }


def default_router_config(
    radix: int, flit_width: int = 64, num_vcs: int = 2, buffer_depth: int = 8
) -> RouterConfig:
    """A sensible router instantiation for a given topology radix."""
    return RouterConfig(
        num_vcs=num_vcs,
        buffer_depth=buffer_depth,
        flit_width=flit_width,
        vc_allocator="separable_input_first",
        sw_allocator="round_robin",
        pipeline_stages=2,
        crossbar_type="mux",
        speculative=False,
        buffer_org="private",
        num_ports=radix,
    )


class NetworkGenerator:
    """Elaborate and characterize whole networks.

    Args:
        flow: Synthesis flow for the per-router characterization.
        activity: Average channel switching activity factor used in the wire
            power model (0..1).
    """

    def __init__(self, flow: SynthesisFlow | None = None, activity: float = 0.3):
        self.flow = flow or SynthesisFlow()
        self.activity = activity

    def generate(
        self,
        family: str,
        endpoints: int = 64,
        router_overrides: Mapping[str, Any] | None = None,
    ) -> NetworkReport:
        """Build one network and report its area/power/performance."""
        topology = build_topology(family, endpoints)
        base = default_router_config(topology.router_radix)
        kwargs = {
            slot: getattr(base, slot)
            for slot in RouterConfig.__slots__
        }
        kwargs.update(router_overrides or {})
        kwargs["num_ports"] = topology.router_radix
        return self._characterize(topology, RouterConfig(**kwargs))

    def _characterize(
        self, topology: Topology, config: RouterConfig
    ) -> NetworkReport:
        report = self.flow.run(build_router(config))
        router = asic_estimate(report)
        return self._assemble(topology, config, router)

    def _assemble(
        self, topology: Topology, config: RouterConfig, router: AsicEstimate
    ) -> NetworkReport:
        n = topology.num_routers
        router_area = router.area_mm2 * n
        wires_area = sum(
            wire_area_mm2(config.flit_width, ch.length_mm)
            for ch in topology.channels
        )
        freq = router.fmax_mhz
        wire_power = self.activity * sum(
            wire_power_mw(config.flit_width, ch.length_mm, freq)
            for ch in topology.channels
        )
        power = router.power_mw * n + wire_power
        # Peak bisection bandwidth: each crossing channel moves one flit per
        # cycle in each direction.
        bisection_gbps = (
            topology.bisection_channels * config.flit_width * freq * 2 / 1000.0
        )
        hop_cycles = router_latency_cycles(config)
        latency_ns = topology.avg_hops * hop_cycles * 1000.0 / freq
        return NetworkReport(
            topology=topology.name,
            endpoints=topology.endpoints,
            num_routers=n,
            router_radix=topology.router_radix,
            flit_width=config.flit_width,
            fmax_mhz=freq,
            area_mm2=router_area + wires_area,
            power_mw=power,
            bisection_gbps=bisection_gbps,
            avg_latency_ns=latency_ns,
            router_area_mm2=router_area,
            wire_area_mm2=wires_area,
        )
