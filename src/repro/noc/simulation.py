"""Cycle-level NoC simulation — the "and/or simulations" of Section 4.1.

The paper characterizes NoC design points with "FPGA synthesis and/or
simulations" and names throughput among the fitness candidates ("fitness can
correspond to FPGA resource usage, throughput, energy efficiency..."). This
module provides the simulation half: a flit-level, credit-based network
simulator over any :class:`~repro.noc.topology.Topology`, producing the
dynamic metrics (average packet latency, delivered throughput, saturation
point) that synthesis alone cannot.

Model (deliberately classic, Dally & Towles-style):

* one router per topology node; each neighbor link carries one flit per
  cycle per parallel channel (double rings get two);
* input-queued routers with per-input FIFOs of ``buffer_depth * num_vcs``
  flits and credit-based backpressure;
* deterministic shortest-path routing (precomputed with networkx);
* round-robin arbitration per output port;
* per-hop pipeline latency taken from
  :func:`~repro.noc.router.router_latency_cycles`;
* uniform-random single-flit packets injected as a Bernoulli process.

Everything is seeded, so simulated metrics are as reproducible as the
synthesis flow's — a requirement for the offline-dataset methodology.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from typing import Mapping

import networkx as nx

from ..core.errors import NautilusError
from .router import RouterConfig, router_latency_cycles
from .topology import Topology, build_topology
from .traffic import TrafficPattern, UniformRandom

__all__ = [
    "Flit",
    "SimulationReport",
    "NetworkSimulator",
    "simulate_network",
    "saturation_throughput",
]


@dataclass
class Flit:
    """A single-flit packet in flight."""

    source: int
    destination: int
    injected_at: int
    #: Cycle at which the flit becomes eligible for its next hop (models
    #: the router pipeline depth).
    ready_at: int
    hops: int = 0


@dataclass(frozen=True)
class SimulationReport:
    """Outcome of one fixed-rate simulation run."""

    cycles: int
    offered_rate: float
    injected: int
    delivered: int
    avg_latency_cycles: float
    avg_hops: float
    #: Delivered flits per endpoint per cycle.
    delivered_rate: float
    #: Fraction of injection attempts refused by full source queues —
    #: the saturation signature.
    blocked_fraction: float

    def metrics(self) -> dict[str, float]:
        return {
            "sim_latency_cycles": self.avg_latency_cycles,
            "sim_delivered_rate": self.delivered_rate,
            "sim_blocked_fraction": self.blocked_fraction,
            "sim_avg_hops": self.avg_hops,
        }


class NetworkSimulator:
    """Flit-level simulator for one (topology, router config) pair.

    Args:
        topology: The network under test. Endpoints map onto routers
            round-robin according to the topology's concentration.
        config: Router configuration; only ``buffer_depth``, ``num_vcs``
            and the pipeline/speculation knobs (via per-hop latency)
            influence the dynamic behaviour.
        routing: ``"deterministic"`` uses one shortest path per pair (the
            classic oblivious single-path router); ``"diverse"`` randomizes
            per flit among all shortest-path next hops, exploiting the path
            diversity of tori and fat trees (Valiant-lite load balancing).
    """

    def __init__(
        self,
        topology: Topology,
        config: RouterConfig,
        routing: str = "deterministic",
    ):
        if routing not in ("deterministic", "diverse"):
            raise NautilusError(
                f"routing must be 'deterministic' or 'diverse', got {routing!r}"
            )
        self.routing = routing
        self.topology = topology
        self.config = config
        self.hop_latency = router_latency_cycles(config)
        self.queue_capacity = max(config.buffer_depth * config.num_vcs, 1)
        graph = topology.graph
        # Undirected simple view with per-link channel multiplicity.
        self._nodes = list(graph.nodes())
        self._index = {name: i for i, name in enumerate(self._nodes)}
        self._capacity: dict[tuple[int, int], int] = {}
        for u, v in graph.edges():
            a, b = self._index[u], self._index[v]
            for key in ((a, b), (b, a)):
                self._capacity[key] = self._capacity.get(key, 0) + 1
        simple = nx.Graph()
        simple.add_nodes_from(range(len(self._nodes)))
        simple.add_edges_from(
            (a, b) for (a, b) in self._capacity if a < b or (b, a) not in self._capacity
        )
        if not nx.is_connected(simple):
            raise NautilusError(
                f"topology {topology.name!r} is not connected as an "
                "undirected graph; cannot route"
            )
        # next_hops[src][dst] -> all neighbors on *some* shortest path.
        distances = dict(nx.all_pairs_shortest_path_length(simple))
        self._next_hops: list[dict[int, tuple[int, ...]]] = []
        for src in range(len(self._nodes)):
            table: dict[int, tuple[int, ...]] = {}
            for dst, distance in distances[src].items():
                if distance == 0:
                    continue
                options = tuple(
                    nb
                    for nb in simple.neighbors(src)
                    if distances[nb].get(dst, float("inf")) == distance - 1
                )
                table[dst] = options
            self._next_hops.append(table)
        # Endpoint -> attached router (concentration-aware round robin).
        self.endpoints = topology.endpoints
        self._endpoint_router = [
            i % len(self._nodes) for i in range(self.endpoints)
        ]

    # -- simulation --------------------------------------------------------------

    def run(
        self,
        injection_rate: float,
        cycles: int = 2000,
        warmup: int = 200,
        seed: int = 1,
        pattern: TrafficPattern | None = None,
    ) -> SimulationReport:
        """Simulate a synthetic workload at a fixed injection rate.

        Args:
            injection_rate: Probability each endpoint injects a flit per
                cycle (flits/endpoint/cycle offered).
            cycles: Measured cycles (after warmup).
            warmup: Cycles simulated before statistics collection starts.
            seed: Workload RNG seed.
            pattern: Traffic pattern (default uniform random); see
                :mod:`repro.noc.traffic`.
        """
        if not 0.0 < injection_rate <= 1.0:
            raise NautilusError("injection_rate must be in (0, 1]")
        pattern = pattern or UniformRandom()
        rng = random.Random(seed)
        n = len(self._nodes)
        # queues[router][input] where input 0 is the local injection port
        # and inputs 1.. are per-neighbor.
        neighbors: list[list[int]] = [[] for _ in range(n)]
        for (a, b) in self._capacity:
            if b not in neighbors[a]:
                neighbors[a].append(b)
        in_queues: list[dict[int, deque]] = [
            {-1: deque()} | {nb: deque() for nb in neighbors[node]}
            for node in range(n)
        ]
        rr_pointers: list[dict[int, int]] = [
            {out: 0 for out in neighbors[node] + [node]} for node in range(n)
        ]

        injected = delivered = blocked = attempts = 0
        latency_total = 0
        hops_total = 0
        total_cycles = warmup + cycles

        for cycle in range(total_cycles):
            measuring = cycle >= warmup
            # 1. Injection: each endpoint offers a flit with prob rate.
            for endpoint in range(self.endpoints):
                if rng.random() >= injection_rate:
                    continue
                if measuring:
                    attempts += 1
                router = self._endpoint_router[endpoint]
                queue = in_queues[router][-1]
                if len(queue) >= self.queue_capacity:
                    if measuring:
                        blocked += 1
                    continue
                dst_endpoint = pattern.destination(endpoint, self.endpoints, rng)
                if dst_endpoint == endpoint:
                    continue  # self-traffic needs no network
                flit = Flit(
                    source=router,
                    destination=self._endpoint_router[dst_endpoint],
                    injected_at=cycle,
                    ready_at=cycle + 1,
                )
                queue.append(flit)
                if measuring:
                    injected += 1

            # 2. Switching: each router serves each output once per channel.
            moves: list[tuple[int, int, Flit]] = []
            ejects: list[Flit] = []
            for node in range(n):
                queues = in_queues[node]
                input_keys = list(queues.keys())
                # Ejection port: serve flits that have arrived.
                served_eject = 0
                # Per-output grants this cycle.
                for out in neighbors[node] + [node]:
                    capacity = (
                        self._capacity.get((node, out), 0) if out != node else 2
                    )
                    grants = 0
                    pointer = rr_pointers[node][out]
                    for offset in range(len(input_keys)):
                        if grants >= max(capacity, 1):
                            break
                        key = input_keys[(pointer + offset) % len(input_keys)]
                        queue = queues[key]
                        if not queue:
                            continue
                        flit = queue[0]
                        if flit.ready_at > cycle:
                            continue
                        if out == node:
                            if flit.destination != node:
                                continue
                            queue.popleft()
                            ejects.append(flit)
                            grants += 1
                            rr_pointers[node][out] = (
                                (pointer + offset + 1) % len(input_keys)
                            )
                            continue
                        options = self._next_hops[node].get(
                            flit.destination, ()
                        )
                        if self.routing == "deterministic":
                            if not options or options[0] != out:
                                continue
                        else:
                            # Diverse: any minimal next hop is eligible; the
                            # per-output arbitration naturally spreads load.
                            if out not in options:
                                continue
                        # Credit check: space downstream?
                        downstream = in_queues[out][node]
                        pending = sum(1 for (d, k, __) in moves if d == out and k == node)
                        if len(downstream) + pending >= self.queue_capacity:
                            continue
                        queue.popleft()
                        moves.append((out, node, flit))
                        grants += 1
                        rr_pointers[node][out] = (
                            (pointer + offset + 1) % len(input_keys)
                        )

            # 3. Commit movements with per-hop pipeline latency.
            for (dst_node, from_node, flit) in moves:
                flit.hops += 1
                flit.ready_at = cycle + self.hop_latency
                in_queues[dst_node][from_node].append(flit)
            for flit in ejects:
                if flit.injected_at >= warmup:
                    delivered += 1
                    latency_total += cycle - flit.injected_at + 1
                    hops_total += flit.hops

        avg_latency = latency_total / delivered if delivered else float("inf")
        avg_hops = hops_total / delivered if delivered else 0.0
        return SimulationReport(
            cycles=cycles,
            offered_rate=injection_rate,
            injected=injected,
            delivered=delivered,
            avg_latency_cycles=avg_latency,
            avg_hops=avg_hops,
            delivered_rate=delivered / (cycles * self.endpoints),
            blocked_fraction=blocked / attempts if attempts else 0.0,
        )

    def latency_throughput_curve(
        self,
        rates: tuple[float, ...] = (0.02, 0.05, 0.1, 0.2, 0.3, 0.5),
        cycles: int = 1500,
        seed: int = 1,
    ) -> list[SimulationReport]:
        """Sweep injection rates — the classic latency/throughput curve."""
        return [self.run(rate, cycles=cycles, seed=seed) for rate in rates]


def simulate_network(
    family: str,
    config: RouterConfig | Mapping | None = None,
    endpoints: int = 64,
    injection_rate: float = 0.1,
    cycles: int = 2000,
    seed: int = 1,
) -> SimulationReport:
    """One-call simulation of a topology family at a fixed load."""
    from .network import default_router_config

    topology = build_topology(family, endpoints)
    if config is None:
        config = default_router_config(topology.router_radix)
    elif isinstance(config, Mapping):
        config = RouterConfig.from_mapping(config)
    return NetworkSimulator(topology, config).run(
        injection_rate, cycles=cycles, seed=seed
    )


def saturation_throughput(
    simulator: NetworkSimulator,
    cycles: int = 1200,
    seed: int = 1,
    blocked_limit: float = 0.05,
) -> float:
    """Estimate the saturation injection rate by bisection.

    The network is saturated once more than ``blocked_limit`` of injection
    attempts are refused by full source queues. Returns the highest
    sustainable flits/endpoint/cycle found.
    """
    low, high = 0.0, 1.0
    for _ in range(7):
        mid = (low + high) / 2.0
        report = simulator.run(mid, cycles=cycles, seed=seed)
        if report.blocked_fraction <= blocked_limit:
            low = mid
        else:
            high = mid
    return low
