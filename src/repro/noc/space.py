"""The NoC router design space used in the paper's evaluation.

Section 4.1: "approximately 30,000 design instances for the router IP
(varying 9 parameters)". This space varies the same nine microarchitecture
knobs of a virtual-channel router (at least two VCs, as the protocol
requires), for 30,240 design points — matching the paper's "approximately
30,000".
"""

from __future__ import annotations

from typing import Any, Mapping

from ..core.evaluator import CallableEvaluator
from ..core.genome import Genome
from ..core.params import BoolParam, ChoiceParam, IntParam, OrderedParam, PowOfTwoParam
from ..core.space import DesignSpace
from ..synth.flow import SynthesisFlow
from .router import SW_ALLOCATORS, VC_ALLOCATORS, build_router

__all__ = ["router_space", "RouterEvaluator", "router_evaluator"]


def _shared_needs_vcs(config: Mapping[str, Any]) -> bool:
    return config["buffer_org"] != "shared" or config["num_vcs"] >= 2


def router_space() -> DesignSpace:
    """Build the 9-parameter, ~30k-point router design space."""
    return DesignSpace(
        "noc_router",
        [
            PowOfTwoParam("num_vcs", 2, 8),
            PowOfTwoParam("buffer_depth", 1, 64),
            PowOfTwoParam("flit_width", 16, 256),
            OrderedParam("vc_allocator", VC_ALLOCATORS),
            OrderedParam("sw_allocator", SW_ALLOCATORS),
            IntParam("pipeline_stages", 1, 4),
            OrderedParam("crossbar_type", ("mux", "replicated_mux")),
            BoolParam("speculative"),
            ChoiceParam("buffer_org", ("private", "shared")),
        ],
        constraints=[_shared_needs_vcs],
    )


class RouterEvaluator:
    """Evaluator: elaborate the router and synthesize it.

    Produces the metric dict the NoC experiments optimize over —
    ``fmax_mhz``, ``luts``, ``area_delay`` (clock period x LUTs, the Figure 5
    objective) and friends.
    """

    def __init__(self, flow: SynthesisFlow | None = None):
        self.flow = flow or SynthesisFlow()

    def evaluate(self, genome: Genome | Mapping[str, Any]) -> dict[str, float]:
        config = genome.as_dict() if isinstance(genome, Genome) else dict(genome)
        module = build_router(config)
        return self.flow.run(module).metrics()


def router_evaluator(flow: SynthesisFlow | None = None) -> CallableEvaluator:
    """Convenience: a core-API evaluator over the router generator."""
    evaluator = RouterEvaluator(flow)
    return CallableEvaluator(evaluator.evaluate)
