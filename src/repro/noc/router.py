"""Parameterized virtual-channel router generator.

Stands in for the Stanford Open Source NoC Router [4] used in the paper's
NoC experiments: a state-of-the-art input-queued VC router whose
microarchitecture knobs form the search space. :func:`build_router` turns a
configuration into a structural module for the miniature synthesis flow.

Microarchitecture (classic 5-stage VC router, following Becker's thesis and
Dally & Towles):

* per-input-port, per-VC flit buffers (private) or a per-port shared pool
  with linked-list free management;
* route computation per input port;
* VC allocation across ``ports*vcs`` requesters (separable input-first,
  separable output-first, or wavefront);
* switch allocation per output (round-robin, matrix, or wavefront), with
  optional speculative allocation overlapping VA;
* a mux crossbar, either port-granularity or replicated per-VC inputs;
* 1-4 pipeline stages that repartition the same logic, trading FF area and
  per-hop latency for clock frequency.

Every knob changes both the resource vector and the static-timing graph, so
the parameters interact the way the paper's Figure 1 cloud suggests.
"""

from __future__ import annotations

from typing import Any, Mapping

from ..synth.netlist import Module
from ..synth.primitives import (
    Counter,
    Crossbar,
    LogicCloud,
    LutRam,
    MatrixArbiter,
    Mux,
    Register,
    RoundRobinArbiter,
    SeparableAllocator,
    WavefrontAllocator,
)

__all__ = ["RouterConfig", "build_router", "router_latency_cycles"]

#: VC allocator architectures, ordered small/slow-matching to big/good-matching.
VC_ALLOCATORS = ("separable_input_first", "separable_output_first", "wavefront")
#: Switch allocator styles, ordered by matching quality (and size).
SW_ALLOCATORS = ("round_robin", "matrix", "wavefront")
#: Crossbar organizations.
CROSSBARS = ("mux", "replicated_mux")
#: Buffer organizations.
BUFFER_ORGS = ("private", "shared")


class RouterConfig:
    """A validated router configuration (one point of the design space)."""

    __slots__ = (
        "num_ports",
        "num_vcs",
        "buffer_depth",
        "flit_width",
        "vc_allocator",
        "sw_allocator",
        "pipeline_stages",
        "crossbar_type",
        "speculative",
        "buffer_org",
    )

    def __init__(
        self,
        num_vcs: int,
        buffer_depth: int,
        flit_width: int,
        vc_allocator: str,
        sw_allocator: str,
        pipeline_stages: int,
        crossbar_type: str,
        speculative: bool,
        buffer_org: str,
        num_ports: int = 5,
    ):
        if vc_allocator not in VC_ALLOCATORS:
            raise ValueError(f"unknown vc_allocator {vc_allocator!r}")
        if sw_allocator not in SW_ALLOCATORS:
            raise ValueError(f"unknown sw_allocator {sw_allocator!r}")
        if crossbar_type not in CROSSBARS:
            raise ValueError(f"unknown crossbar_type {crossbar_type!r}")
        if buffer_org not in BUFFER_ORGS:
            raise ValueError(f"unknown buffer_org {buffer_org!r}")
        if buffer_org == "shared" and num_vcs < 2:
            raise ValueError("shared buffering requires at least 2 VCs")
        if not 1 <= pipeline_stages <= 4:
            raise ValueError("pipeline_stages must be 1..4")
        self.num_ports = num_ports
        self.num_vcs = num_vcs
        self.buffer_depth = buffer_depth
        self.flit_width = flit_width
        self.vc_allocator = vc_allocator
        self.sw_allocator = sw_allocator
        self.pipeline_stages = pipeline_stages
        self.crossbar_type = crossbar_type
        self.speculative = speculative
        self.buffer_org = buffer_org

    @classmethod
    def from_mapping(cls, config: Mapping[str, Any]) -> "RouterConfig":
        """Build from a genome/config dict (extra keys rejected by name)."""
        return cls(
            num_vcs=config["num_vcs"],
            buffer_depth=config["buffer_depth"],
            flit_width=config["flit_width"],
            vc_allocator=config["vc_allocator"],
            sw_allocator=config["sw_allocator"],
            pipeline_stages=config["pipeline_stages"],
            crossbar_type=config["crossbar_type"],
            speculative=config["speculative"],
            buffer_org=config["buffer_org"],
            num_ports=config.get("num_ports", 5),
        )

    def name(self) -> str:
        """A stable module name encoding the configuration."""
        return (
            f"vc_router_p{self.num_ports}v{self.num_vcs}d{self.buffer_depth}"
            f"w{self.flit_width}_{self.vc_allocator}_{self.sw_allocator}"
            f"_s{self.pipeline_stages}_{self.crossbar_type}"
            f"{'_spec' if self.speculative else ''}_{self.buffer_org}"
        )


def _add_buffers(module: Module, cfg: RouterConfig) -> str:
    """Input buffering; returns the name of the buffer-read timing node."""
    ports, vcs = cfg.num_ports, cfg.num_vcs
    if cfg.buffer_org == "private":
        module.add(
            "flit_buffers",
            LutRam(cfg.buffer_depth, cfg.flit_width),
            replicate=ports * vcs,
        )
    else:
        # One shared pool per port plus linked-list next-pointer storage and
        # free-list management logic.
        pool_depth = cfg.buffer_depth * vcs
        module.add(
            "flit_buffers", LutRam(pool_depth, cfg.flit_width), replicate=ports
        )
        pointer_bits = max(pool_depth - 1, 1).bit_length()
        module.add(
            "buffer_pointers", LutRam(pool_depth, pointer_bits), replicate=ports
        )
        module.add(
            "freelist_mgmt",
            LogicCloud(luts=14 + 3 * vcs, levels=3, ffs=2 * pointer_bits),
            replicate=ports,
        )
        module.connect("buffer_pointers", "freelist_mgmt")
        module.connect("freelist_mgmt", "flit_buffers")
    # Per-VC input state (G/R/O/P/C FSM, credits, route field).
    state_bits = 12 + cfg.num_ports
    module.add("vc_state", Register(state_bits), replicate=ports * vcs)
    module.connect("vc_state", "flit_buffers")
    return "flit_buffers"


def _add_vc_allocator(module: Module, cfg: RouterConfig) -> str:
    """VC allocation stage; returns its timing node name."""
    n = cfg.num_ports * cfg.num_vcs
    if cfg.num_vcs == 1:
        # Degenerates to a bypass: a VC is implicitly granted.
        module.add("vc_alloc", LogicCloud(luts=cfg.num_ports * 2, levels=1))
        return "vc_alloc"
    if cfg.vc_allocator == "wavefront":
        module.add("vc_alloc", WavefrontAllocator(n, n))
    elif cfg.vc_allocator == "separable_input_first":
        module.add("vc_alloc", SeparableAllocator(n, n))
    else:  # separable_output_first: same arbiters, extra request reshuffle.
        module.add("vc_alloc", SeparableAllocator(n, n))
        module.add("vc_alloc_reshuffle", LogicCloud(luts=n, levels=1))
        module.connect("vc_alloc_reshuffle", "vc_alloc")
    return "vc_alloc"


def _add_sw_allocator(module: Module, cfg: RouterConfig) -> str:
    """Switch allocation stage; returns its timing node name."""
    ports, vcs = cfg.num_ports, cfg.num_vcs
    if cfg.sw_allocator == "wavefront":
        module.add("sw_alloc", WavefrontAllocator(ports, ports))
    elif cfg.sw_allocator == "matrix":
        module.add("sw_alloc", MatrixArbiter(ports), replicate=ports)
    else:
        module.add("sw_alloc", RoundRobinArbiter(ports), replicate=ports)
    if vcs > 1:
        # Per-input VC selection feeding the port-level allocation.
        module.add("sw_vc_sel", RoundRobinArbiter(vcs), replicate=ports)
        module.connect("sw_vc_sel", "sw_alloc")
    if cfg.speculative:
        # Speculative switch requests raced against VA, plus kill logic.
        module.add(
            "spec_sw_alloc", RoundRobinArbiter(ports), replicate=ports
        )
        module.add(
            "spec_resolve",
            LogicCloud(luts=3 * ports + vcs, levels=2),
        )
        module.connect("spec_sw_alloc", "spec_resolve")
        module.connect("spec_resolve", "sw_alloc")
    return "sw_alloc"


def _add_crossbar(module: Module, cfg: RouterConfig) -> str:
    """Switch traversal; returns its timing node name."""
    ports = cfg.num_ports
    if cfg.crossbar_type == "replicated_mux":
        inputs = ports * cfg.num_vcs
    else:
        inputs = ports
        if cfg.num_vcs > 1:
            # Port-granularity crossbar needs a VC mux in front of each input.
            module.add("xbar_vc_mux", Mux(cfg.flit_width, cfg.num_vcs), replicate=ports)
    module.add("crossbar", Crossbar(inputs, ports, cfg.flit_width))
    if cfg.crossbar_type == "mux" and cfg.num_vcs > 1:
        module.connect("xbar_vc_mux", "crossbar")
    return "crossbar"


def build_router(config: RouterConfig | Mapping[str, Any]) -> Module:
    """Elaborate a router configuration into a synthesizable module.

    The pipeline_stages parameter repartitions the canonical
    BW -> RC -> VA -> SA -> ST stage sequence into 1..4 physical stages by
    inserting pipeline registers between groups; deeper pipelines pay
    register area (and per-hop latency) for a shorter critical path.
    """
    cfg = (
        config
        if isinstance(config, RouterConfig)
        else RouterConfig.from_mapping(config)
    )
    module = Module(cfg.name())
    module.add_port("flit_in", cfg.flit_width * cfg.num_ports, "in")
    module.add_port("flit_out", cfg.flit_width * cfg.num_ports, "out")
    module.add_port("credits", cfg.num_ports * cfg.num_vcs, "out")

    module.add("input_reg", Register(cfg.flit_width), replicate=cfg.num_ports)
    buffers = _add_buffers(module, cfg)
    module.connect("input_reg", buffers)

    module.add(
        "route_compute",
        LogicCloud(luts=6 + 2 * cfg.num_ports, levels=3),
        replicate=cfg.num_ports,
    )
    module.connect("input_reg", "route_compute")

    va = _add_vc_allocator(module, cfg)
    sa = _add_sw_allocator(module, cfg)
    xbar = _add_crossbar(module, cfg)

    module.add("output_reg", Register(cfg.flit_width), replicate=cfg.num_ports)
    module.add(
        "credit_counters",
        Counter(max(cfg.buffer_depth.bit_length(), 2)),
        replicate=cfg.num_ports * cfg.num_vcs,
    )
    module.connect(sa, "credit_counters")

    # Canonical logic groups in pipeline order. Each entry is the chain of
    # timing nodes inside that group.
    if "xbar_vc_mux" in _names(module):
        traversal_group = ["xbar_vc_mux", xbar]
    else:
        traversal_group = [xbar]
    groups: list[list[str]] = [
        ["route_compute", buffers],
        [va],
        [sa],
        traversal_group,
    ]
    # Wire logic inside each group sequentially.
    for group in groups:
        for a, b in zip(group, group[1:]):
            module.connect(a, b)

    # Partition the 4 canonical groups into the requested physical stages.
    boundaries = _stage_partition(len(groups), cfg.pipeline_stages)
    previous_tail = "input_reg"
    for stage_index, group_slice in enumerate(boundaries):
        head = groups[group_slice[0]][0]
        tail = groups[group_slice[-1]][-1]
        module.connect(previous_tail, head)
        # Link consecutive groups inside this physical stage combinationally.
        for gi, gj in zip(group_slice, group_slice[1:]):
            module.connect(groups[gi][-1], groups[gj][0])
        # Flow-control/state-update logic closes out every physical stage
        # (credit checks, VC state writeback) before the stage boundary.
        fc_name = f"stage_fc_{stage_index}"
        module.add(
            fc_name,
            LogicCloud(luts=4 + cfg.num_vcs + cfg.num_ports, levels=2),
            replicate=cfg.num_ports,
        )
        module.connect(tail, fc_name)
        if stage_index < len(boundaries) - 1:
            reg_name = f"pipe_reg_{stage_index}"
            pipe_width = cfg.flit_width + 4 * cfg.num_vcs + 8
            module.add(reg_name, Register(pipe_width), replicate=cfg.num_ports)
            module.connect(fc_name, reg_name)
            previous_tail = reg_name
        else:
            module.connect(fc_name, "output_reg")
    return module


def _names(module: Module) -> set[str]:
    return {inst.name for inst in module.instances}


def _stage_partition(num_groups: int, stages: int) -> list[list[int]]:
    """Split group indices 0..num_groups-1 into ``stages`` contiguous runs."""
    stages = min(stages, num_groups)
    base = num_groups // stages
    extra = num_groups % stages
    partition: list[list[int]] = []
    start = 0
    for s in range(stages):
        length = base + (1 if s < extra else 0)
        partition.append(list(range(start, start + length)))
        start += length
    return partition


def router_latency_cycles(config: RouterConfig | Mapping[str, Any]) -> int:
    """Zero-load per-hop latency in cycles.

    Speculative allocation overlaps VA and SA, saving a cycle in routers
    with more than one physical stage.
    """
    cfg = (
        config
        if isinstance(config, RouterConfig)
        else RouterConfig.from_mapping(config)
    )
    latency = cfg.pipeline_stages + 1  # +1 for link traversal
    if cfg.speculative and cfg.pipeline_stages > 1:
        latency -= 1
    return latency
