"""Hint sets for the NoC router experiments.

In the paper the NoC hints are *non-expert*: "we estimated hints by
synthesizing 80 designs (less than 0.3% of the design space) and observing
trends; this is equivalent to an IP user ... supplying the hints using
limited empirical knowledge or gut intuition" (Section 4.1).

Two entry points mirror that:

* :func:`estimate_router_hints` runs the actual 80-design sweep through
  :func:`repro.core.estimation.estimate_hints` against a live evaluator —
  the faithful methodology.
* :func:`frequency_hints` / :func:`area_delay_hints` are the *result* of such
  a sweep, written down as static hint vectors, so experiments that want
  deterministic hints (and benches that should not spend their budget on
  estimation) can use them directly.

The Figure 4 "weakly guided" and "strongly guided" variants differ only in
confidence (paper footnote 2): use ``hints.with_confidence(...)``.
"""

from __future__ import annotations

from ..core.estimation import estimate_hints
from ..core.evaluator import Evaluator
from ..core.fitness import Objective, maximize, minimize
from ..core.hints import HintSet, ParamHints
from ..core.space import DesignSpace

__all__ = [
    "frequency_hints",
    "area_delay_hints",
    "estimate_router_hints",
    "WEAK_CONFIDENCE",
    "STRONG_CONFIDENCE",
]

#: Confidence levels for the paper's weakly/strongly guided variants.
WEAK_CONFIDENCE = 0.35
STRONG_CONFIDENCE = 0.80


def frequency_hints(confidence: float = STRONG_CONFIDENCE) -> HintSet:
    """Non-expert hints for maximizing router frequency (Figure 4).

    Trends visible from a small sweep: deeper pipelines and fewer VCs raise
    Fmax sharply; the wavefront allocators are the slowest; wide crossbars
    barely matter for frequency but buffer depth lengthens the distributed
    RAM decode path slightly. The importance decay shifts mutation effort
    from the dominant parameters (pipeline depth, VC count) to the
    fine-tuning ones once the coarse navigation is done — the temporal
    pattern the paper's "importance decay" hint was designed for.
    """
    return HintSet(
        {
            # Values below are the (rounded) output of an 80-design
            # estimate_router_hints sweep — see tests/noc/test_hints.py,
            # which re-derives them and checks the signs agree.
            "pipeline_stages": ParamHints(importance=95, bias=0.95),
            "vc_allocator": ParamHints(importance=80, bias=-1.0),
            "num_vcs": ParamHints(importance=45, bias=-1.0),
            "buffer_depth": ParamHints(importance=20, bias=-0.85),
            "flit_width": ParamHints(importance=12, bias=-0.95),
            "buffer_org": ParamHints(
                importance=10, bias=-0.3, ordering=("private", "shared")
            ),
            "speculative": ParamHints(importance=10, bias=-0.5),
            "crossbar_type": ParamHints(importance=6, bias=-1.0),
        },
        confidence=confidence,
        importance_decay=0.06,
    )


def area_delay_hints(confidence: float = STRONG_CONFIDENCE) -> HintSet:
    """Non-expert hints for minimizing the area-delay product (Figure 5).

    The paper notes this query "also incorporates hints related to the
    importance and bias of IP parameters that affect area, such as
    virtual-channel buffer depth". Biases are stated with respect to the raw
    metric (area x delay): almost everything that grows the router grows the
    product, while deeper pipelines still help by shrinking the clock period
    faster than they add registers (negative bias on pipeline_stages).
    """
    return HintSet(
        {
            # Sweep-derived (80 designs), as for the frequency hints.
            "num_vcs": ParamHints(importance=95, bias=1.0),
            "flit_width": ParamHints(importance=32, bias=1.0),
            "buffer_depth": ParamHints(importance=14, bias=1.0),
            "pipeline_stages": ParamHints(importance=10, bias=-0.9),
            "crossbar_type": ParamHints(importance=9, bias=0.5),
            "vc_allocator": ParamHints(importance=8, bias=0.75),
            "buffer_org": ParamHints(
                importance=5, bias=0.3, ordering=("private", "shared")
            ),
            "speculative": ParamHints(importance=3, bias=0.6),
        },
        confidence=confidence,
        importance_decay=0.04,
    )


def estimate_router_hints(
    space: DesignSpace,
    evaluator: Evaluator,
    objective: Objective | None = None,
    budget: int = 80,
    confidence: float = STRONG_CONFIDENCE,
    seed: int | None = 80,
) -> tuple[HintSet, int]:
    """Run the paper's 80-design sweep and derive hints empirically.

    Returns the hint set and the number of designs actually synthesized.
    """
    objective = objective or maximize("fmax_mhz")
    return estimate_hints(
        space,
        evaluator,
        objective,
        budget=budget,
        confidence=confidence,
        seed=seed,
    )
