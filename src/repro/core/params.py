"""Parameter specifications — the "genes" of an IP design space.

An IP generator exposes a set of named parameters. Each parameter has a
finite domain. Nautilus operates on *ordinal indices* into that domain so a
single guided-mutation implementation can serve integers, powers of two and
categorical options alike:

* :class:`IntParam` — integer range with a step, naturally ordered.
* :class:`PowOfTwoParam` — powers of two (buffer depths, flit widths, ...).
* :class:`OrderedParam` — explicit ordered list of arbitrary values. The
  ordering is meaningful to the metric (the paper's auxiliary "ordering
  relationships among values", Section 3).
* :class:`ChoiceParam` — unordered categorical values. Bias/target hints do
  not apply unless an ordering hint is supplied, which re-ranks the values.
* :class:`BoolParam` — convenience two-valued parameter.

All parameters are immutable value objects; randomness is injected through an
explicit ``random.Random`` instance so every search is reproducible.
"""

from __future__ import annotations

from typing import Any, Iterator, Sequence
import random

from .errors import ParameterError

__all__ = [
    "freeze_value",
    "values_key",
    "Param",
    "IntParam",
    "PowOfTwoParam",
    "OrderedParam",
    "ChoiceParam",
    "BoolParam",
]


def freeze_value(value: Any) -> Any:
    """The canonical hashable form of one domain value.

    Lists freeze to tuples (JSON round-trips tuples as lists, so both spell
    the same domain member). Every layer that keys on values — genome
    identity, the persistent on-disk cache, datasets — must agree on this
    one function, or a design point cached under one spelling would be
    re-synthesized under the other.
    """
    if isinstance(value, list):
        return tuple(value)
    return value


def values_key(values: Sequence[Any]) -> tuple:
    """The canonical frozen key for an ordered run of domain values.

    This is THE values-key format: ``Genome.key[1]``, the persistent
    cache's on-disk row identity, and dataset row keys are all this tuple.
    Changing it silently invalidates every on-disk cache — a test freezes
    the format.
    """
    return tuple(freeze_value(v) for v in values)


class Param:
    """Base class for all parameter kinds.

    Subclasses must populate ``self._values`` (the ordered domain) before
    calling ``super().__init__`` finishes, or override the accessors.

    Attributes:
        name: Unique parameter name within a design space.
        ordered: Whether the domain order is meaningful to metrics. Guided
            value assignment (bias/target hints) only applies to ordered
            parameters, or to unordered ones re-ranked by an ordering hint.
    """

    ordered: bool = True

    def __init__(self, name: str, values: Sequence[Any]):
        if not name or not isinstance(name, str):
            raise ParameterError(f"parameter name must be a non-empty string, got {name!r}")
        if len(values) == 0:
            raise ParameterError(f"parameter {name!r} has an empty domain")
        seen = set()
        for v in values:
            key = self._freeze(v)
            if key in seen:
                raise ParameterError(f"parameter {name!r} has duplicate value {v!r}")
            seen.add(key)
        self.name = name
        self._values = tuple(values)
        self._index = {self._freeze(v): i for i, v in enumerate(self._values)}

    #: Hashable key for a domain value — the canonical :func:`freeze_value`.
    _freeze = staticmethod(freeze_value)

    # -- domain accessors ---------------------------------------------------

    @property
    def values(self) -> tuple:
        """The ordered domain of the parameter."""
        return self._values

    @property
    def cardinality(self) -> int:
        """Number of values in the domain."""
        return len(self._values)

    @property
    def index_map(self) -> dict:
        """``{frozen value: ordinal index}`` over the domain (do not mutate)."""
        return self._index

    def value_at(self, index: int) -> Any:
        """Return the domain value at ordinal ``index``."""
        if not 0 <= index < len(self._values):
            raise ParameterError(
                f"index {index} out of range for parameter {self.name!r} "
                f"(cardinality {self.cardinality})"
            )
        return self._values[index]

    def index_of(self, value: Any) -> int:
        """Return the ordinal index of ``value`` in the domain."""
        try:
            return self._index[self._freeze(value)]
        except KeyError:
            raise ParameterError(
                f"value {value!r} is not in the domain of parameter {self.name!r}"
            ) from None

    def contains(self, value: Any) -> bool:
        """Whether ``value`` belongs to the domain."""
        return self._freeze(value) in self._index

    # -- sampling -----------------------------------------------------------

    def random_value(self, rng: random.Random) -> Any:
        """Draw a value uniformly at random from the domain."""
        return self._values[rng.randrange(len(self._values))]

    def random_other_value(self, current: Any, rng: random.Random) -> Any:
        """Draw a uniform random value different from ``current`` if possible."""
        if self.cardinality == 1:
            return current
        cur = self.index_of(current)
        idx = rng.randrange(len(self._values) - 1)
        if idx >= cur:
            idx += 1
        return self._values[idx]

    def __iter__(self) -> Iterator[Any]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = type(self).__name__
        if self.cardinality <= 8:
            dom = ", ".join(repr(v) for v in self._values)
        else:
            dom = f"{self._values[0]!r}..{self._values[-1]!r} ({self.cardinality} values)"
        return f"{kind}({self.name!r}, [{dom}])"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Param):
            return NotImplemented
        return (
            type(self) is type(other)
            and self.name == other.name
            and self._values == other._values
        )

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.name, self._values))


class IntParam(Param):
    """An integer range parameter ``low .. high`` inclusive, with a step."""

    def __init__(self, name: str, low: int, high: int, step: int = 1):
        if step <= 0:
            raise ParameterError(f"parameter {name!r}: step must be positive, got {step}")
        if high < low:
            raise ParameterError(f"parameter {name!r}: high ({high}) < low ({low})")
        super().__init__(name, tuple(range(low, high + 1, step)))
        self.low = low
        self.high = high
        self.step = step


class PowOfTwoParam(Param):
    """Powers of two between ``low`` and ``high`` inclusive.

    Hardware parameters such as buffer depths, FIFO sizes and flit widths are
    almost always powers of two; the ordinal index is then the exponent
    offset, which makes guided stepping geometric in the raw value — matching
    how such parameters actually affect cost.
    """

    def __init__(self, name: str, low: int, high: int):
        if low <= 0 or high <= 0:
            raise ParameterError(f"parameter {name!r}: bounds must be positive")
        if low & (low - 1) or high & (high - 1):
            raise ParameterError(f"parameter {name!r}: bounds must be powers of two")
        if high < low:
            raise ParameterError(f"parameter {name!r}: high ({high}) < low ({low})")
        values = []
        v = low
        while v <= high:
            values.append(v)
            v *= 2
        super().__init__(name, tuple(values))
        self.low = low
        self.high = high


class OrderedParam(Param):
    """An explicitly ordered categorical parameter.

    The order of ``values`` is meaningful: the IP author asserts that moving
    "up" the list moves a metric consistently (e.g. allocator architectures
    ordered from smallest/slowest to largest/fastest).
    """

    def __init__(self, name: str, values: Sequence[Any]):
        super().__init__(name, values)


class ChoiceParam(Param):
    """An unordered categorical parameter.

    Bias and target hints have no meaning for a :class:`ChoiceParam` unless
    the hint set supplies an ordering (see ``repro.core.hints.ParamHints``),
    which provides the ordinal view used for guided assignment.
    """

    ordered = False

    def __init__(self, name: str, values: Sequence[Any]):
        super().__init__(name, values)


class BoolParam(Param):
    """A two-valued parameter (False, True), ordered False < True."""

    def __init__(self, name: str):
        super().__init__(name, (False, True))
