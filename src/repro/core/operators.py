"""Genetic operators, baseline and hint-guided.

The paper splits the effect of hints over two decisions made during each
genetic operation (Section 3):

1. *Which genes mutate* — importance (decayed over generations) reweights the
   per-gene mutation probability while preserving the expected number of
   mutations per genome, so guided and baseline runs spend comparable
   mutation effort.
2. *Which values mutated genes receive* — bias tilts the direction of the
   step along the parameter's ordinal axis; target pulls samples toward a
   known-good value; both are blended with a uniform draw according to the
   global confidence, preserving the stochastic nature of the GA (footnote 1
   of the paper: hints "are incorporated in a probabilistic manner ... still
   free to explore the full design space").

Crossover is unguided (the paper's hints act on mutation), and both uniform
and single-point variants are provided.
"""

from __future__ import annotations

import math
import random
import time
from typing import Any, Callable, Sequence

from .errors import NautilusError
from .genome import Genome
from .guidance import GuidanceState
from .params import Param
from .space import DesignSpace

__all__ = [
    "GeneticOperators",
    "BreedingPipeline",
    "scalar_score",
    "uniform_crossover",
    "single_point_crossover",
    "two_point_crossover",
]


def scalar_score(individual) -> float:
    """The scalar fitness of an individual, engine-agnostic.

    Single-objective individuals expose ``.score``; multi-objective ones
    expose ``.scores`` (attribution projects onto the first objective,
    matching the kernel's record/curve projection). An individual with
    neither — or an empty ``scores`` tuple — is a caller bug; raising here
    beats silently returning ``NaN``, which would poison every attribution
    delta computed from it downstream.
    """
    score = getattr(individual, "score", None)
    if score is not None:
        return score
    scores = getattr(individual, "scores", None)
    if scores:
        return scores[0]
    raise NautilusError(
        "cannot take a scalar fitness: individual has neither a .score "
        "nor a non-empty .scores"
    )

#: Probability bounds that keep every gene able to mutate (or stay put) no
#: matter how extreme the importance skew is.
_MIN_GENE_RATE = 0.002
_MAX_GENE_RATE = 0.95

#: Effective importance of parameters the guidance state does not mention —
#: both decayed and undecayed paths yield exactly this for unhinted params.
_NEUTRAL_IMPORTANCE = 50.0

#: Geometric tail used when sampling guided step magnitudes and when pulling
#: values toward a target. 0.5 halves the probability per extra index step.
_STEP_TAIL = 0.5


def uniform_crossover(a: Genome, b: Genome, rng: random.Random) -> Genome:
    """Combine two parents gene-by-gene with independent fair coin flips."""
    values = {
        name: (a[name] if rng.random() < 0.5 else b[name])
        for name in a.space.param_names
    }
    return Genome(a.space, values)


def single_point_crossover(a: Genome, b: Genome, rng: random.Random) -> Genome:
    """Take a prefix of genes from one parent and the suffix from the other."""
    names = a.space.param_names
    point = rng.randrange(1, len(names)) if len(names) > 1 else 0
    values = {}
    for i, name in enumerate(names):
        values[name] = a[name] if i < point else b[name]
    return Genome(a.space, values)


def two_point_crossover(a: Genome, b: Genome, rng: random.Random) -> Genome:
    """Take a middle slice of genes from parent ``b``, the rest from ``a``."""
    names = a.space.param_names
    n = len(names)
    if n < 3:
        return uniform_crossover(a, b, rng)
    lo = rng.randrange(0, n - 1)
    hi = rng.randrange(lo + 1, n)
    values = {}
    for i, name in enumerate(names):
        values[name] = b[name] if lo <= i <= hi else a[name]
    return Genome(a.space, values)


class BreedingPipeline:
    """One offspring = select → crossover → mutate, drawn from named streams.

    This is the declarative operator pipeline every generational engine
    passes to the kernel: the engine chooses the parent-selection strategy
    (fitness-proportional for the single-objective GA, rank/crowding
    tournament for NSGA-II) and the pipeline runs the fixed breeding
    sequence, drawing each concern from its named RNG stream
    (``selection`` / ``crossover`` / ``mutation``) and charging per-operator
    wall time into the caller's ``timings`` accumulator (``{operator:
    [calls, seconds]}``) so every run can report where breeding time went.

    The draw order is pinned — parent selection, crossover-rate draw,
    mate selection, up to 8 feasible-crossover attempts, then mutation —
    because with shared RNG streams (the default) it is the sequence the
    engine-parity baseline captures.
    """

    #: Attempts at producing a structurally feasible crossover before
    #: falling back to the (feasible) first parent.
    CROSSOVER_ATTEMPTS = 8

    def __init__(
        self,
        space: DesignSpace,
        operators: GeneticOperators,
        select: Callable,
        crossover: Callable,
        crossover_rate: float,
    ):
        self.space = space
        self.operators = operators
        self.select = select
        self.crossover = crossover
        self.crossover_rate = crossover_rate

    @staticmethod
    def _charge(
        timings: dict[str, list[float]] | None,
        operator: str,
        calls: int,
        seconds: float,
    ) -> None:
        if timings is None:
            return
        entry = timings.setdefault(operator, [0, 0.0])
        entry[0] += calls
        entry[1] += seconds

    def breed(
        self,
        population: Sequence,
        guidance: GuidanceState,
        rngs,
        timings: dict[str, list[float]] | None = None,
    ) -> Genome:
        """Produce one offspring genome under this generation's guidance."""
        observer = self.operators.observer
        t0 = time.perf_counter()
        parent = self.select(population, rngs.selection)
        genome = parent.genome
        t1 = time.perf_counter()
        self._charge(timings, "selection", 1, t1 - t0)
        if observer is not None:
            observer.child_started(scalar_score(parent))
        if rngs.crossover.random() < self.crossover_rate:
            t1 = time.perf_counter()
            other = self.select(population, rngs.selection)
            t2 = time.perf_counter()
            self._charge(timings, "selection", 1, t2 - t1)
            for _ in range(self.CROSSOVER_ATTEMPTS):
                candidate = self.crossover(parent.genome, other.genome, rngs.crossover)
                if self.space.is_feasible(candidate):
                    genome = candidate
                    if observer is not None:
                        observer.crossover_applied()
                    break
            self._charge(timings, "crossover", 1, time.perf_counter() - t2)
        t3 = time.perf_counter()
        mutated = self.operators.mutate_feasible(genome, guidance, rngs.mutation)
        self._charge(timings, "mutation", 1, time.perf_counter() - t3)
        if observer is not None:
            observer.child_finished()
        return mutated


class GeneticOperators:
    """Mutation machinery for a design space, guided per-generation.

    Every guided decision reads a :class:`~repro.core.guidance.GuidanceState`
    — the per-generation snapshot a guidance provider produced. With a
    neutral state (no hints, zero confidence) this degenerates exactly to
    the baseline GA's operators: every gene mutates with probability
    ``mutation_rate`` and mutated genes receive a uniform random new value.

    Hint-vs-space validation happens when the guidance provider binds to
    the engine, not here — the operators trust the states they are handed.

    Args:
        space: The design space being searched.
        mutation_rate: Per-gene mutation probability (paper default 0.1).
    """

    def __init__(self, space: DesignSpace, mutation_rate: float = 0.1):
        if not 0.0 <= mutation_rate <= 1.0:
            raise ValueError(f"mutation_rate must be in [0, 1], got {mutation_rate}")
        self.space = space
        self.mutation_rate = mutation_rate
        #: Optional :class:`repro.obs.attribution.BreedingObserver`. When
        #: set, every mutation reports which params changed and through
        #: which hint channel. Pure bookkeeping — attaching an observer
        #: never consumes RNG draws, so seeded runs are unaffected.
        self.observer = None

    # -- gene selection ---------------------------------------------------------

    def gene_mutation_rates(self, guidance: GuidanceState | None) -> dict[str, float]:
        """Per-gene mutation probabilities under one generation's guidance.

        Importance weights are normalized so the *expected number of
        mutations per genome* equals ``mutation_rate * num_params`` exactly
        as in the baseline; only the distribution over genes changes. The
        guided distribution is then blended with the flat baseline one
        according to the state's confidence.
        """
        names = self.space.param_names
        hints = guidance.hints if guidance is not None else None
        if hints is None or not hints.params:
            return {name: self.mutation_rate for name in names}
        importance = guidance.effective_importance
        weights = [
            max(importance.get(name, _NEUTRAL_IMPORTANCE), 1e-9) for name in names
        ]
        mean_weight = sum(weights) / len(weights)
        confidence = guidance.confidence
        rates = {}
        for name, weight in zip(names, weights):
            guided = self.mutation_rate * weight / mean_weight
            blended = (1.0 - confidence) * self.mutation_rate + confidence * guided
            rates[name] = min(max(blended, _MIN_GENE_RATE), _MAX_GENE_RATE)
        return rates

    # -- value assignment ---------------------------------------------------------

    def _axis(self, param: Param, guidance: GuidanceState | None) -> tuple | None:
        """Ordinal axis for guided assignment, or None when undefined."""
        if guidance is not None and guidance.hints is not None:
            ordering = guidance.hints.for_param(param.name).ordering
            if ordering is not None:
                return ordering
        if param.ordered:
            return param.values
        return None

    def mutate_value(
        self, param: Param, current, guidance: GuidanceState | None, rng: random.Random
    ):
        """Pick a new value for one gene.

        With probability ``confidence`` the guided sampler runs (bias-tilted
        step or target pull); otherwise — and always in the baseline — a
        uniform random different value is drawn.
        """
        return self._mutate_value(param, current, guidance, rng)[0]

    def _mutate_value(
        self, param: Param, current, guidance: GuidanceState | None, rng: random.Random
    ) -> tuple[Any, str]:
        """The value for one gene plus the attribution channel it came from.

        Channels: ``"bias"`` / ``"target"`` (confidence gate passed, guided
        sampler ran), ``"fallback"`` (the param carries directional hints
        but the gate lost — or no ordinal axis exists — so the baseline
        uniform draw ran), ``"uniform"`` (no directional hints for this
        param), ``"noop"`` (cardinality-1 param; nothing can change). The
        draw sequence is identical for every channel outcome.
        """
        if param.cardinality == 1:
            return current, "noop"
        hints = guidance.for_param(param.name) if guidance is not None else None
        confidence = guidance.confidence if guidance is not None else 0.0
        directional = hints is not None and (
            hints.bias != 0.0 or hints.target is not None
        )
        guided = directional and rng.random() < confidence
        if not guided:
            channel = "fallback" if directional else "uniform"
            return param.random_other_value(current, rng), channel
        axis = self._axis(param, guidance)
        if axis is None:
            return param.random_other_value(current, rng), "fallback"
        index = {self._freeze(v): i for i, v in enumerate(axis)}
        cur = index[self._freeze(current)]
        if hints.target is not None:
            new = self._sample_toward_target(cur, index[self._freeze(hints.target)], len(axis), rng)
            return axis[new], "target"
        new = self._sample_biased_step(cur, hints.bias, hints.step, len(axis), rng)
        return axis[new], "bias"

    @staticmethod
    def _freeze(value):
        return tuple(value) if isinstance(value, list) else value

    @staticmethod
    def _sample_toward_target(
        current: int, target: int, size: int, rng: random.Random
    ) -> int:
        """Sample an index with geometric weight decay away from the target.

        Every index keeps nonzero probability, so the search can still move
        away from a misleading target. The sample may land on the current
        index: a guided mutation that re-proposes the value it already holds
        is a *revisit*, which costs nothing under the evaluation cache —
        this is why the paper's Nautilus curves stop earlier on the
        "# designs evaluated" axis as the population converges.
        """
        weights = [_STEP_TAIL ** abs(i - target) for i in range(size)]
        total = sum(weights)
        pick = rng.random() * total
        acc = 0.0
        for i, w in enumerate(weights):
            acc += w
            if pick <= acc:
                return i
        return size - 1

    @staticmethod
    def _sample_biased_step(
        current: int,
        bias: float,
        step_hint: int | None,
        size: int,
        rng: random.Random,
    ) -> int:
        """Take a geometric-magnitude step, direction tilted by the bias.

        ``bias = +1`` makes an upward step (toward higher metric values)
        certain; ``bias = 0`` is a fair coin; the magnitude follows a
        geometric distribution whose expected value tracks the step hint.
        Steps that would leave the axis are *clamped* to the boundary. A
        gene already sitting at the boundary its bias points to therefore
        keeps its value: the converged gene stops generating new design
        points, and the cached evaluator makes the re-proposal free — the
        mechanism behind the paper's observation that guided runs
        synthesize fewer designs for the same number of generations.
        """
        p_up = (1.0 + bias) / 2.0
        direction = 1 if rng.random() < p_up else -1
        if step_hint is None:
            continue_prob = _STEP_TAIL
        else:
            # Geometric with mean ``step_hint``: mean = 1 / (1 - q).
            continue_prob = max(0.0, min(0.9, 1.0 - 1.0 / max(step_hint, 1)))
        magnitude = 1
        while rng.random() < continue_prob and magnitude < size:
            magnitude += 1
        return min(max(current + direction * magnitude, 0), size - 1)

    # -- whole-genome mutation --------------------------------------------------

    def mutate(
        self, genome: Genome, guidance: GuidanceState | None, rng: random.Random
    ) -> Genome:
        """Mutate a genome: each gene flips per its (possibly guided) rate."""
        rates = self.gene_mutation_rates(guidance)
        changes = {}
        channels = [] if self.observer is not None else None
        for param in self.space.params:
            if rng.random() < rates[param.name]:
                value, channel = self._mutate_value(
                    param, genome[param.name], guidance, rng
                )
                changes[param.name] = value
                if channels is not None:
                    channels.append((param.name, channel))
        if channels is not None:
            self.observer.mutation_attempted(channels)
        if not changes:
            return genome
        return genome.replace(**changes)

    def mutate_feasible(
        self,
        genome: Genome,
        guidance: GuidanceState | None,
        rng: random.Random,
        max_attempts: int = 32,
    ) -> Genome:
        """Mutate, retrying until the result satisfies structural constraints.

        Falls back to the (feasible) input genome when every attempt lands in
        an infeasible hole — the operator never manufactures an invalid
        design point.
        """
        for attempt in range(max_attempts):
            mutated = self.mutate(genome, guidance, rng)
            if self.space.is_feasible(mutated):
                if self.observer is not None:
                    self.observer.mutation_committed(attempt + 1, fallback=False)
                return mutated
        if self.observer is not None:
            self.observer.mutation_committed(max_attempts, fallback=True)
        return genome
