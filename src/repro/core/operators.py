"""Genetic operators, baseline and hint-guided.

The paper splits the effect of hints over two decisions made during each
genetic operation (Section 3):

1. *Which genes mutate* — importance (decayed over generations) reweights the
   per-gene mutation probability while preserving the expected number of
   mutations per genome, so guided and baseline runs spend comparable
   mutation effort.
2. *Which values mutated genes receive* — bias tilts the direction of the
   step along the parameter's ordinal axis; target pulls samples toward a
   known-good value; both are blended with a uniform draw according to the
   global confidence, preserving the stochastic nature of the GA (footnote 1
   of the paper: hints "are incorporated in a probabilistic manner ... still
   free to explore the full design space").

Crossover is unguided (the paper's hints act on mutation), and both uniform
and single-point variants are provided.
"""

from __future__ import annotations

import math
import random
import time
from typing import Any, Callable, Sequence

from .errors import NautilusError
from .genome import Genome
from .guidance import GuidanceState
from .params import Param, freeze_value
from .space import DesignSpace

__all__ = [
    "GeneticOperators",
    "BreedingPipeline",
    "scalar_score",
    "uniform_crossover",
    "single_point_crossover",
    "two_point_crossover",
]


def scalar_score(individual) -> float:
    """The scalar fitness of an individual, engine-agnostic.

    Single-objective individuals expose ``.score``; multi-objective ones
    expose ``.scores`` (attribution projects onto the first objective,
    matching the kernel's record/curve projection). An individual with
    neither — or an empty ``scores`` tuple — is a caller bug; raising here
    beats silently returning ``NaN``, which would poison every attribution
    delta computed from it downstream.
    """
    score = getattr(individual, "score", None)
    if score is not None:
        return score
    scores = getattr(individual, "scores", None)
    if scores:
        return scores[0]
    raise NautilusError(
        "cannot take a scalar fitness: individual has neither a .score "
        "nor a non-empty .scores"
    )

#: Probability bounds that keep every gene able to mutate (or stay put) no
#: matter how extreme the importance skew is.
_MIN_GENE_RATE = 0.002
_MAX_GENE_RATE = 0.95

#: Effective importance of parameters the guidance state does not mention —
#: both decayed and undecayed paths yield exactly this for unhinted params.
_NEUTRAL_IMPORTANCE = 50.0

#: Geometric tail used when sampling guided step magnitudes and when pulling
#: values toward a target. 0.5 halves the probability per extra index step.
_STEP_TAIL = 0.5


def _blended_gene_rates(
    names: Sequence[str], guidance: GuidanceState | None, mutation_rate: float
) -> list[float]:
    """Per-gene mutation probabilities, one float per declaration position.

    The single source of the rate arithmetic: both the public
    :meth:`GeneticOperators.gene_mutation_rates` dict view and the resolved
    per-generation tables read from here, so the floats are bit-identical
    no matter which path computes them.
    """
    hints = guidance.hints if guidance is not None else None
    if hints is None or not hints.params:
        return [mutation_rate] * len(names)
    importance = guidance.effective_importance
    weights = [
        max(importance.get(name, _NEUTRAL_IMPORTANCE), 1e-9) for name in names
    ]
    mean_weight = sum(weights) / len(weights)
    confidence = guidance.confidence
    rates = []
    for weight in weights:
        guided = mutation_rate * weight / mean_weight
        blended = (1.0 - confidence) * mutation_rate + confidence * guided
        rates.append(min(max(blended, _MIN_GENE_RATE), _MAX_GENE_RATE))
    return rates


class _GeneGuide:
    """Everything one gene's mutation needs, resolved to codes.

    Built once per (guidance state, mutation rate) by
    :class:`_ResolvedGuidance`; the hot loop then touches only plain
    attribute loads — no hint lookups, no axis dict builds, no weight
    recomputation per offspring.
    """

    __slots__ = (
        "name",
        "rate",
        "cardinality",
        "directional",
        "has_axis",
        "identity_axis",
        "axis_size",
        "code_to_axis",
        "axis_to_code",
        "target_weights",
        "target_total",
        "p_up",
        "continue_prob",
    )


class _ResolvedGuidance:
    """One guidance state, resolved against a space codec.

    Guidance providers emit one fresh :class:`~repro.core.guidance.GuidanceState`
    per generation (even a neutral one), so :class:`GeneticOperators` caches
    the resolution by state identity — the whole generation's breeding reads
    a single resolution.
    """

    __slots__ = ("confidence", "genes")

    def __init__(
        self,
        space: DesignSpace,
        guidance: GuidanceState | None,
        mutation_rate: float,
    ):
        codec = space.codec
        names = codec.names
        self.confidence = guidance.confidence if guidance is not None else 0.0
        rates = _blended_gene_rates(names, guidance, mutation_rate)
        genes = []
        for pos, name in enumerate(names):
            guide = _GeneGuide()
            guide.name = name
            guide.rate = rates[pos]
            card = codec.cardinalities[pos]
            guide.cardinality = card
            hints_p = guidance.for_param(name) if guidance is not None else None
            directional = hints_p is not None and (
                hints_p.bias != 0.0 or hints_p.target is not None
            )
            guide.directional = directional
            guide.has_axis = False
            guide.identity_axis = False
            guide.axis_size = 0
            guide.code_to_axis = None
            guide.axis_to_code = None
            guide.target_weights = None
            guide.target_total = 0.0
            guide.p_up = 0.0
            guide.continue_prob = 0.0
            if directional and card > 1:
                ordering = hints_p.ordering
                if ordering is not None:
                    index_map = codec.index_maps[pos]
                    axis_codes = tuple(
                        index_map[freeze_value(v)] for v in ordering
                    )
                    guide.has_axis = True
                    guide.axis_size = len(axis_codes)
                    guide.axis_to_code = axis_codes
                    guide.code_to_axis = {
                        code: i for i, code in enumerate(axis_codes)
                    }
                elif codec.ordered[pos]:
                    # The domain order is the axis: code == axis position.
                    guide.has_axis = True
                    guide.identity_axis = True
                    guide.axis_size = card
                if guide.has_axis:
                    if hints_p.target is not None:
                        target_code = codec.index_maps[pos][
                            freeze_value(hints_p.target)
                        ]
                        target_axis = (
                            target_code
                            if guide.identity_axis
                            else guide.code_to_axis[target_code]
                        )
                        # Same expressions, same summation order as the
                        # historical per-call computation — the floats (and
                        # therefore every seeded draw consuming them) are
                        # bit-identical.
                        weights = [
                            _STEP_TAIL ** abs(i - target_axis)
                            for i in range(guide.axis_size)
                        ]
                        guide.target_weights = weights
                        guide.target_total = sum(weights)
                    else:
                        guide.p_up = (1.0 + hints_p.bias) / 2.0
                        step_hint = hints_p.step
                        if step_hint is None:
                            guide.continue_prob = _STEP_TAIL
                        else:
                            # Geometric with mean ``step_hint``: mean = 1 / (1 - q).
                            guide.continue_prob = max(
                                0.0, min(0.9, 1.0 - 1.0 / max(step_hint, 1))
                            )
            genes.append(guide)
        self.genes: tuple[_GeneGuide, ...] = tuple(genes)


def _mutate_code(
    guide: _GeneGuide, cur: int, confidence: float, rng: random.Random
) -> tuple[int, str]:
    """New code for one fired gene plus its attribution channel.

    The draw sequence replicates the value-based ``_mutate_value`` exactly:
    a confidence-gate ``random()`` only when the gene is directional, then
    either the uniform different-code draw (one ``randrange``), the target
    scan (one ``random()``), or the biased step (one direction ``random()``
    plus the geometric continuation draws).
    """
    if guide.cardinality == 1:
        return cur, "noop"
    guided = guide.directional and rng.random() < confidence
    if not guided:
        channel = "fallback" if guide.directional else "uniform"
        idx = rng.randrange(guide.cardinality - 1)
        if idx >= cur:
            idx += 1
        return idx, channel
    if not guide.has_axis:
        idx = rng.randrange(guide.cardinality - 1)
        if idx >= cur:
            idx += 1
        return idx, "fallback"
    cur_axis = cur if guide.identity_axis else guide.code_to_axis[cur]
    if guide.target_weights is not None:
        pick = rng.random() * guide.target_total
        acc = 0.0
        new_axis = guide.axis_size - 1
        for i, w in enumerate(guide.target_weights):
            acc += w
            if pick <= acc:
                new_axis = i
                break
        channel = "target"
    else:
        direction = 1 if rng.random() < guide.p_up else -1
        magnitude = 1
        size = guide.axis_size
        while rng.random() < guide.continue_prob and magnitude < size:
            magnitude += 1
        new_axis = min(max(cur_axis + direction * magnitude, 0), size - 1)
        channel = "bias"
    if guide.identity_axis:
        return new_axis, channel
    return guide.axis_to_code[new_axis], channel


def uniform_crossover(a: Genome, b: Genome, rng: random.Random) -> Genome:
    """Combine two parents gene-by-gene with independent fair coin flips.

    Operates on code vectors: one draw per gene (the historical sequence),
    recombined codes wrapped through the trusted fast path — both parents'
    codes are in-domain, so the child needs no re-validation.
    """
    ac, bc = a.codes, b.codes
    codes = tuple(
        ac[i] if rng.random() < 0.5 else bc[i] for i in range(len(ac))
    )
    return Genome.from_codes(a.space, codes)


def single_point_crossover(a: Genome, b: Genome, rng: random.Random) -> Genome:
    """Take a prefix of genes from one parent and the suffix from the other."""
    ac, bc = a.codes, b.codes
    n = len(ac)
    point = rng.randrange(1, n) if n > 1 else 0
    return Genome.from_codes(a.space, ac[:point] + bc[point:])


def two_point_crossover(a: Genome, b: Genome, rng: random.Random) -> Genome:
    """Take a middle slice of genes from parent ``b``, the rest from ``a``."""
    ac, bc = a.codes, b.codes
    n = len(ac)
    if n < 3:
        return uniform_crossover(a, b, rng)
    lo = rng.randrange(0, n - 1)
    hi = rng.randrange(lo + 1, n)
    return Genome.from_codes(a.space, ac[:lo] + bc[lo : hi + 1] + ac[hi + 1:])


class BreedingPipeline:
    """One offspring = select → crossover → mutate, drawn from named streams.

    This is the declarative operator pipeline every generational engine
    passes to the kernel: the engine chooses the parent-selection strategy
    (fitness-proportional for the single-objective GA, rank/crowding
    tournament for NSGA-II) and the pipeline runs the fixed breeding
    sequence, drawing each concern from its named RNG stream
    (``selection`` / ``crossover`` / ``mutation``) and charging per-operator
    wall time into the caller's ``timings`` accumulator (``{operator:
    [calls, seconds]}``) so every run can report where breeding time went.

    The draw order is pinned — parent selection, crossover-rate draw,
    mate selection, up to 8 feasible-crossover attempts, then mutation —
    because with shared RNG streams (the default) it is the sequence the
    engine-parity baseline captures.
    """

    #: Attempts at producing a structurally feasible crossover before
    #: falling back to the (feasible) first parent.
    CROSSOVER_ATTEMPTS = 8

    def __init__(
        self,
        space: DesignSpace,
        operators: GeneticOperators,
        select: Callable,
        crossover: Callable,
        crossover_rate: float,
        clock: Callable[[], float] | None = None,
    ):
        self.space = space
        self.operators = operators
        self.select = select
        self.crossover = crossover
        self.crossover_rate = crossover_rate
        #: Injectable time source for the timed breeding path (engines
        #: pass the kernel's clock; tests pass a FakeClock).
        self.clock = clock if clock is not None else time.perf_counter

    @staticmethod
    def _charge(
        timings: dict[str, list[float]] | None,
        operator: str,
        calls: int,
        seconds: float,
    ) -> None:
        if timings is None:
            return
        entry = timings.setdefault(operator, [0, 0.0])
        entry[0] += calls
        entry[1] += seconds

    def breed(
        self,
        population: Sequence,
        guidance: GuidanceState,
        rngs,
        timings: dict[str, list[float]] | None = None,
    ) -> Genome:
        """Produce one offspring genome under this generation's guidance."""
        observer = self.operators.observer
        if timings is None:
            # Untimed fast path: identical logic and draw order, no
            # perf_counter traffic per offspring.
            parent = self.select(population, rngs.selection)
            genome = parent.genome
            if observer is not None:
                observer.child_started(scalar_score(parent))
            if rngs.crossover.random() < self.crossover_rate:
                other = self.select(population, rngs.selection)
                for _ in range(self.CROSSOVER_ATTEMPTS):
                    candidate = self.crossover(
                        parent.genome, other.genome, rngs.crossover
                    )
                    if self.space.is_feasible(candidate):
                        genome = candidate
                        if observer is not None:
                            observer.crossover_applied()
                        break
            mutated = self.operators.mutate_feasible(genome, guidance, rngs.mutation)
            if observer is not None:
                observer.child_finished()
            return mutated
        clock = self.clock
        t0 = clock()
        parent = self.select(population, rngs.selection)
        genome = parent.genome
        t1 = clock()
        self._charge(timings, "selection", 1, t1 - t0)
        if observer is not None:
            observer.child_started(scalar_score(parent))
        if rngs.crossover.random() < self.crossover_rate:
            t1 = clock()
            other = self.select(population, rngs.selection)
            t2 = clock()
            self._charge(timings, "selection", 1, t2 - t1)
            for _ in range(self.CROSSOVER_ATTEMPTS):
                candidate = self.crossover(parent.genome, other.genome, rngs.crossover)
                if self.space.is_feasible(candidate):
                    genome = candidate
                    if observer is not None:
                        observer.crossover_applied()
                    break
            self._charge(timings, "crossover", 1, clock() - t2)
        t3 = clock()
        mutated = self.operators.mutate_feasible(genome, guidance, rngs.mutation)
        self._charge(timings, "mutation", 1, clock() - t3)
        if observer is not None:
            observer.child_finished()
        return mutated


class GeneticOperators:
    """Mutation machinery for a design space, guided per-generation.

    Every guided decision reads a :class:`~repro.core.guidance.GuidanceState`
    — the per-generation snapshot a guidance provider produced. With a
    neutral state (no hints, zero confidence) this degenerates exactly to
    the baseline GA's operators: every gene mutates with probability
    ``mutation_rate`` and mutated genes receive a uniform random new value.

    Hint-vs-space validation happens when the guidance provider binds to
    the engine, not here — the operators trust the states they are handed.

    Args:
        space: The design space being searched.
        mutation_rate: Per-gene mutation probability (paper default 0.1).
    """

    def __init__(self, space: DesignSpace, mutation_rate: float = 0.1):
        if not 0.0 <= mutation_rate <= 1.0:
            raise ValueError(f"mutation_rate must be in [0, 1], got {mutation_rate}")
        self.space = space
        self.mutation_rate = mutation_rate
        #: Optional :class:`repro.obs.attribution.BreedingObserver`. When
        #: set, every mutation reports which params changed and through
        #: which hint channel. Pure bookkeeping — attaching an observer
        #: never consumes RNG draws, so seeded runs are unaffected.
        self.observer = None
        # Identity-keyed cache of the last resolved guidance state: providers
        # emit one state object per generation, so one resolution serves the
        # whole generation's breeding. Keyed on mutation_rate too, so callers
        # that tweak the rate mid-run get a fresh resolution.
        self._resolved: tuple | None = None

    # -- gene selection ---------------------------------------------------------

    def gene_mutation_rates(self, guidance: GuidanceState | None) -> dict[str, float]:
        """Per-gene mutation probabilities under one generation's guidance.

        Importance weights are normalized so the *expected number of
        mutations per genome* equals ``mutation_rate * num_params`` exactly
        as in the baseline; only the distribution over genes changes. The
        guided distribution is then blended with the flat baseline one
        according to the state's confidence.
        """
        names = self.space.param_names
        return dict(zip(names, _blended_gene_rates(names, guidance, self.mutation_rate)))

    def _resolve(self, guidance: GuidanceState | None) -> _ResolvedGuidance:
        """The codec-resolved form of a guidance state, cached by identity."""
        cached = self._resolved
        if (
            cached is not None
            and cached[0] is guidance
            and cached[1] == self.mutation_rate
        ):
            return cached[2]
        resolved = _ResolvedGuidance(self.space, guidance, self.mutation_rate)
        self._resolved = (guidance, self.mutation_rate, resolved)
        return resolved

    # -- value assignment ---------------------------------------------------------

    def _axis(self, param: Param, guidance: GuidanceState | None) -> tuple | None:
        """Ordinal axis for guided assignment, or None when undefined."""
        if guidance is not None and guidance.hints is not None:
            ordering = guidance.hints.for_param(param.name).ordering
            if ordering is not None:
                return ordering
        if param.ordered:
            return param.values
        return None

    def mutate_value(
        self, param: Param, current, guidance: GuidanceState | None, rng: random.Random
    ):
        """Pick a new value for one gene.

        With probability ``confidence`` the guided sampler runs (bias-tilted
        step or target pull); otherwise — and always in the baseline — a
        uniform random different value is drawn.
        """
        return self._mutate_value(param, current, guidance, rng)[0]

    def _mutate_value(
        self, param: Param, current, guidance: GuidanceState | None, rng: random.Random
    ) -> tuple[Any, str]:
        """The value for one gene plus the attribution channel it came from.

        Channels: ``"bias"`` / ``"target"`` (confidence gate passed, guided
        sampler ran), ``"fallback"`` (the param carries directional hints
        but the gate lost — or no ordinal axis exists — so the baseline
        uniform draw ran), ``"uniform"`` (no directional hints for this
        param), ``"noop"`` (cardinality-1 param; nothing can change). The
        draw sequence is identical for every channel outcome.
        """
        if param.cardinality == 1:
            return current, "noop"
        hints = guidance.for_param(param.name) if guidance is not None else None
        confidence = guidance.confidence if guidance is not None else 0.0
        directional = hints is not None and (
            hints.bias != 0.0 or hints.target is not None
        )
        guided = directional and rng.random() < confidence
        if not guided:
            channel = "fallback" if directional else "uniform"
            return param.random_other_value(current, rng), channel
        axis = self._axis(param, guidance)
        if axis is None:
            return param.random_other_value(current, rng), "fallback"
        index = {self._freeze(v): i for i, v in enumerate(axis)}
        cur = index[self._freeze(current)]
        if hints.target is not None:
            new = self._sample_toward_target(cur, index[self._freeze(hints.target)], len(axis), rng)
            return axis[new], "target"
        new = self._sample_biased_step(cur, hints.bias, hints.step, len(axis), rng)
        return axis[new], "bias"

    @staticmethod
    def _freeze(value):
        return tuple(value) if isinstance(value, list) else value

    @staticmethod
    def _sample_toward_target(
        current: int, target: int, size: int, rng: random.Random
    ) -> int:
        """Sample an index with geometric weight decay away from the target.

        Every index keeps nonzero probability, so the search can still move
        away from a misleading target. The sample may land on the current
        index: a guided mutation that re-proposes the value it already holds
        is a *revisit*, which costs nothing under the evaluation cache —
        this is why the paper's Nautilus curves stop earlier on the
        "# designs evaluated" axis as the population converges.
        """
        weights = [_STEP_TAIL ** abs(i - target) for i in range(size)]
        total = sum(weights)
        pick = rng.random() * total
        acc = 0.0
        for i, w in enumerate(weights):
            acc += w
            if pick <= acc:
                return i
        return size - 1

    @staticmethod
    def _sample_biased_step(
        current: int,
        bias: float,
        step_hint: int | None,
        size: int,
        rng: random.Random,
    ) -> int:
        """Take a geometric-magnitude step, direction tilted by the bias.

        ``bias = +1`` makes an upward step (toward higher metric values)
        certain; ``bias = 0`` is a fair coin; the magnitude follows a
        geometric distribution whose expected value tracks the step hint.
        Steps that would leave the axis are *clamped* to the boundary. A
        gene already sitting at the boundary its bias points to therefore
        keeps its value: the converged gene stops generating new design
        points, and the cached evaluator makes the re-proposal free — the
        mechanism behind the paper's observation that guided runs
        synthesize fewer designs for the same number of generations.
        """
        p_up = (1.0 + bias) / 2.0
        direction = 1 if rng.random() < p_up else -1
        if step_hint is None:
            continue_prob = _STEP_TAIL
        else:
            # Geometric with mean ``step_hint``: mean = 1 / (1 - q).
            continue_prob = max(0.0, min(0.9, 1.0 - 1.0 / max(step_hint, 1)))
        magnitude = 1
        while rng.random() < continue_prob and magnitude < size:
            magnitude += 1
        return min(max(current + direction * magnitude, 0), size - 1)

    # -- whole-genome mutation --------------------------------------------------

    def mutate(
        self, genome: Genome, guidance: GuidanceState | None, rng: random.Random
    ) -> Genome:
        """Mutate a genome: each gene flips per its (possibly guided) rate.

        Runs entirely on the genome's code vector against the resolved
        guidance tables. A fired gene always records a change (even when the
        sampled code equals the current one — the historical ``replace``
        semantics), so the result is a *new* genome whenever any gate fired;
        with no fired genes the input genome is returned unchanged.
        """
        resolved = self._resolve(guidance)
        observer = self.observer
        codes = genome.codes
        new_codes: list[int] | None = None
        channels = [] if observer is not None else None
        confidence = resolved.confidence
        for pos, guide in enumerate(resolved.genes):
            if rng.random() < guide.rate:
                # Fired genes read the *original* code, matching the
                # historical read from the input genome.
                code, channel = _mutate_code(guide, codes[pos], confidence, rng)
                if new_codes is None:
                    new_codes = list(codes)
                new_codes[pos] = code
                if channels is not None:
                    channels.append((guide.name, channel))
        if channels is not None:
            observer.mutation_attempted(channels)
        if new_codes is None:
            return genome
        return Genome.from_codes(genome.space, tuple(new_codes))

    def mutate_feasible(
        self,
        genome: Genome,
        guidance: GuidanceState | None,
        rng: random.Random,
        max_attempts: int = 32,
    ) -> Genome:
        """Mutate, retrying until the result satisfies structural constraints.

        Falls back to the (feasible) input genome when every attempt lands in
        an infeasible hole — the operator never manufactures an invalid
        design point.
        """
        for attempt in range(max_attempts):
            mutated = self.mutate(genome, guidance, rng)
            if self.space.is_feasible(mutated):
                if self.observer is not None:
                    self.observer.mutation_committed(attempt + 1, fallback=False)
                return mutated
        if self.observer is not None:
            self.observer.mutation_committed(max_attempts, fallback=True)
        return genome
