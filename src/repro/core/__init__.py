"""Nautilus core: guided genetic algorithm for IP design space search.

This subpackage is the paper's primary contribution — a generational GA
extended with IP-author hints (importance, importance decay, bias, target,
confidence, plus ordering/stepping auxiliaries) that steer the search toward
profitable regions of an IP generator's parameter space while staying
stochastic enough to recover from imperfect guidance.

Typical usage::

    from repro.core import (
        DesignSpace, PowOfTwoParam, ChoiceParam, GAConfig,
        GeneticSearch, HintSet, ParamHints, maximize,
    )

    space = DesignSpace("my_ip", [...])
    hints = HintSet({"buffer_depth": ParamHints(importance=90, bias=-0.8)},
                    confidence=0.7)
    search = GeneticSearch(space, my_evaluator, maximize("fmax_mhz"),
                           GAConfig(seed=1), hints=hints)
    result = search.run()
    print(result.best_raw, result.best_config)
"""

from .errors import (
    DatasetError,
    EvaluationError,
    GenomeError,
    HintError,
    InfeasibleDesignError,
    NautilusError,
    ParameterError,
    SpaceError,
    SynthesisError,
)
from .params import (
    BoolParam,
    ChoiceParam,
    IntParam,
    OrderedParam,
    Param,
    PowOfTwoParam,
    freeze_value,
    values_key,
)
from .genome import Genome
from .codec import SpaceCodec
from .population import Population
from .space import DesignSpace
from .hints import DEFAULT_IMPORTANCE, HintSet, ParamHints
from .guidance import (
    HINTS_SCHEMA_VERSION,
    AdaptiveConfidence,
    EstimatedHints,
    GuidanceProvider,
    GuidanceState,
    HintSpecError,
    StaticHints,
    hintset_from_json,
    hintset_to_json,
    provider_from_spec,
)
from .operators import (
    BreedingPipeline,
    GeneticOperators,
    scalar_score,
    single_point_crossover,
    two_point_crossover,
    uniform_crossover,
)
from .selection import (
    Individual,
    rank_selection,
    roulette_selection,
    tournament_selection,
)
from .fitness import Metrics, Objective, maximize, minimize
from .evalstack import (
    EvalStats,
    EvaluationStack,
    PersistentCache,
    evaluator_fingerprint,
)
from .evaluator import (
    CallableEvaluator,
    CountingEvaluator,
    DatasetEvaluator,
    Evaluator,
)
from .engine import (
    GAConfig,
    GenerationRecord,
    GeneticSearch,
    RandomSearch,
    SearchResult,
    exhaustive_best,
)
from .kernel import (
    RUN_EVENT_KINDS,
    CappedJsonlTraceSink,
    GenerationalEngine,
    JsonlTraceSink,
    RecordingTraceSink,
    RngStreams,
    RunEvent,
    RunTrace,
    SearchKernel,
    TraceSink,
)
from .estimation import SweepObservation, estimate_hints
from .expressions import (
    ExpressionError,
    objective_from_expression,
    parse_expression,
)
from .adaptive import AdaptiveSearch
from .checkpoint import (
    CheckpointedParetoSearch,
    CheckpointedSearch,
    SearchCheckpoint,
)
from .parallel import BatchEvaluator, ParallelEvaluator, evaluate_batch
from .pareto import (
    ParetoIndividual,
    ParetoResult,
    ParetoSearch,
    crowding_distances,
    dominates,
    hypervolume_2d,
    non_dominated_sort,
)

__all__ = [
    # errors
    "NautilusError",
    "ParameterError",
    "GenomeError",
    "HintError",
    "SpaceError",
    "InfeasibleDesignError",
    "EvaluationError",
    "DatasetError",
    "SynthesisError",
    # parameters / genomes / spaces
    "Param",
    "IntParam",
    "PowOfTwoParam",
    "OrderedParam",
    "ChoiceParam",
    "BoolParam",
    "freeze_value",
    "values_key",
    "Genome",
    "SpaceCodec",
    "Population",
    "DesignSpace",
    # hints
    "ParamHints",
    "HintSet",
    "DEFAULT_IMPORTANCE",
    # guidance stack
    "GuidanceState",
    "GuidanceProvider",
    "StaticHints",
    "AdaptiveConfidence",
    "EstimatedHints",
    "HintSpecError",
    "HINTS_SCHEMA_VERSION",
    "hintset_to_json",
    "hintset_from_json",
    "provider_from_spec",
    # operators / selection
    "GeneticOperators",
    "BreedingPipeline",
    "scalar_score",
    "uniform_crossover",
    "single_point_crossover",
    "two_point_crossover",
    "Individual",
    "rank_selection",
    "tournament_selection",
    "roulette_selection",
    # fitness / evaluation
    "Objective",
    "Metrics",
    "maximize",
    "minimize",
    "Evaluator",
    "CallableEvaluator",
    "CountingEvaluator",
    "DatasetEvaluator",
    # evaluation stack
    "EvalStats",
    "EvaluationStack",
    "PersistentCache",
    "evaluator_fingerprint",
    # engines
    "GAConfig",
    "GenerationRecord",
    "SearchResult",
    "GeneticSearch",
    "RandomSearch",
    "exhaustive_best",
    # search kernel / tracing
    "SearchKernel",
    "GenerationalEngine",
    "RngStreams",
    "RunEvent",
    "RunTrace",
    "RUN_EVENT_KINDS",
    "CappedJsonlTraceSink",
    "TraceSink",
    "RecordingTraceSink",
    "JsonlTraceSink",
    # estimation
    "estimate_hints",
    "SweepObservation",
    # composite-metric expressions
    "parse_expression",
    "objective_from_expression",
    "ExpressionError",
    # adaptive-confidence extension
    "AdaptiveSearch",
    "CheckpointedSearch",
    "CheckpointedParetoSearch",
    "SearchCheckpoint",
    # parallel evaluation
    "BatchEvaluator",
    "ParallelEvaluator",
    "evaluate_batch",
    # multi-objective extension
    "ParetoIndividual",
    "ParetoResult",
    "ParetoSearch",
    "dominates",
    "non_dominated_sort",
    "crowding_distances",
    "hypervolume_2d",
]
