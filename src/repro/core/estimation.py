"""Empirical hint estimation — the paper's non-expert methodology.

Section 3 closes with: "an IP user could try sweeping each IP parameter
independently and then observe how the various metrics of interest respond
to estimate approximate hint values", and Section 4.1 applies exactly that
for the NoC experiments: "we estimated hints by synthesizing 80 designs
(less than 0.3% of the design space) and observing trends".

:func:`estimate_hints` implements the recipe: starting from a base
configuration it sweeps each parameter independently on a small budget,
then derives

* **bias** from the rank correlation (Spearman) between the parameter's
  ordinal index and the observed metric, and
* **importance** from the relative span of the metric over the sweep,
  scaled into the paper's 1..100 range.

Parameters whose sweep shows no signal keep default hints.
"""

from __future__ import annotations

import math
import random
from typing import Sequence

from .errors import InfeasibleDesignError
from .evalstack import EvaluationStack
from .evaluator import Evaluator
from .fitness import Objective
from .genome import Genome
from .hints import HintSet, ParamHints, IMPORTANCE_MAX, IMPORTANCE_MIN
from .space import DesignSpace

__all__ = ["estimate_hints", "SweepObservation"]


class SweepObservation:
    """Raw result of sweeping one parameter: (value, raw metric) pairs."""

    def __init__(self, param_name: str, points: list[tuple[int, float]]):
        self.param_name = param_name
        #: (ordinal index, raw metric) pairs, sorted by index.
        self.points = sorted(points)

    def span(self) -> float:
        """Absolute metric variation over the sweep."""
        values = [m for _, m in self.points]
        return max(values) - min(values) if values else 0.0

    def spearman(self) -> float:
        """Spearman rank correlation of ordinal index vs metric (-1..1)."""
        n = len(self.points)
        if n < 2:
            return 0.0
        metrics = [m for _, m in self.points]
        if len(set(metrics)) == 1:
            return 0.0
        index_ranks = _ranks([i for i, _ in self.points])
        metric_ranks = _ranks(metrics)
        return _pearson(index_ranks, metric_ranks)


def _ranks(values: Sequence[float]) -> list[float]:
    """Fractional ranks (ties get the mean of their positions)."""
    order = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    i = 0
    while i < len(order):
        j = i
        while j + 1 < len(order) and values[order[j + 1]] == values[order[i]]:
            j += 1
        mean_rank = (i + j) / 2.0 + 1.0
        for k in range(i, j + 1):
            ranks[order[k]] = mean_rank
        i = j + 1
    return ranks


def _pearson(xs: Sequence[float], ys: Sequence[float]) -> float:
    n = len(xs)
    mx = sum(xs) / n
    my = sum(ys) / n
    cov = sum((x - mx) * (y - my) for x, y in zip(xs, ys))
    vx = sum((x - mx) ** 2 for x in xs)
    vy = sum((y - my) ** 2 for y in ys)
    if vx <= 0.0 or vy <= 0.0:
        return 0.0
    return cov / math.sqrt(vx * vy)


def _sweep_indices(cardinality: int, budget: int) -> list[int]:
    """Evenly spaced ordinal indices covering a domain within a budget."""
    if cardinality <= budget:
        return list(range(cardinality))
    step = (cardinality - 1) / (budget - 1)
    indices = sorted({round(i * step) for i in range(budget)})
    return indices


def estimate_hints(
    space: DesignSpace,
    evaluator: Evaluator,
    objective: Objective,
    budget: int = 80,
    base: Genome | None = None,
    confidence: float = 0.5,
    seed: int | None = None,
    min_bias: float = 0.2,
    refine: bool = True,
) -> tuple[HintSet, int]:
    """Estimate a hint set from independent per-parameter sweeps.

    Args:
        space: The design space.
        evaluator: Metric source (evaluations are counted; the budget refers
            to distinct design points, matching the paper's "80 designs").
        objective: Metric being optimized; biases are derived with respect to
            its *raw* value (the engine reorients them for minimization).
        budget: Total distinct evaluations allowed for the estimate.
        base: Configuration to hold non-swept parameters at; a random
            feasible point when omitted.
        confidence: Confidence attached to the resulting hint set. Estimated
            hints are the paper's "limited empirical knowledge", so moderate
            values are appropriate.
        seed: RNG seed for the base configuration draw.
        min_bias: Correlations weaker than this are treated as noise and
            left unhinted.
        refine: After the first sweep, re-sweep around the best
            configuration observed so far. Parameters whose effect only
            shows near good regions (e.g. an allocator that is only ever on
            the critical path of deeply pipelined routers) are invisible to
            sweeps around random bases; refining captures them, which is
            what a diligent IP user sweeping by hand would do too.

    Returns:
        The estimated :class:`HintSet` and the number of distinct designs
        actually evaluated.
    """
    rng = random.Random(seed)
    counter = EvaluationStack.wrap(evaluator)
    per_param = max(2, budget // max(len(space.params), 1))

    best_seen: tuple[float, Genome] | None = None

    def sweep_from(base_genome: Genome) -> list[SweepObservation]:
        nonlocal best_seen
        observations = []
        for param in space.params:
            points: list[tuple[int, float]] = []
            for index in _sweep_indices(param.cardinality, per_param):
                candidate = base_genome.replace(
                    **{param.name: param.value_at(index)}
                )
                if not space.is_feasible(candidate):
                    continue
                if counter.distinct_evaluations >= budget and not counter.seen(
                    candidate
                ):
                    continue
                try:
                    metrics = counter.evaluate(candidate)
                except InfeasibleDesignError:
                    continue
                raw = objective.raw(metrics)
                score = objective.score(metrics)
                if best_seen is None or score > best_seen[0]:
                    best_seen = (score, candidate)
                points.append((index, raw))
            observations.append(SweepObservation(param.name, points))
        return observations

    # Sweep around as many base configurations as the budget allows; each
    # base contributes an independent per-parameter trend observation, and
    # the trends are averaged. One sweep touches roughly the sum of domain
    # cardinalities, so an 80-design budget typically buys 2-4 bases.
    all_sweeps: list[list[SweepObservation]] = []
    all_sweeps.append(sweep_from(base if base is not None else space.random_genome(rng)))
    while counter.distinct_evaluations < budget:
        before = counter.distinct_evaluations
        if refine and best_seen is not None:
            next_base = best_seen[1]
        else:
            next_base = space.random_genome(rng)
        all_sweeps.append(sweep_from(next_base))
        if counter.distinct_evaluations == before:
            break  # budget exhausted mid-sweep; no new information

    hints: dict[str, ParamHints] = {}
    # Average per-base span and correlation per parameter.
    param_names = [p.name for p in space.params]
    mean_span: dict[str, float] = {}
    mean_corr: dict[str, float] = {}
    for position, name in enumerate(param_names):
        spans = []
        corrs = []
        for sweep in all_sweeps:
            obs = sweep[position]
            if len(obs.points) >= 2:
                spans.append(obs.span())
                corrs.append(obs.spearman())
        mean_span[name] = sum(spans) / len(spans) if spans else 0.0
        mean_corr[name] = sum(corrs) / len(corrs) if corrs else 0.0
    max_span = max(mean_span.values(), default=0.0)
    for name in param_names:
        if max_span <= 0.0 or mean_span[name] <= 0.0:
            continue
        correlation = mean_corr[name]
        importance = IMPORTANCE_MIN + round(
            (IMPORTANCE_MAX - IMPORTANCE_MIN) * (mean_span[name] / max_span)
        )
        bias = correlation if abs(correlation) >= min_bias else 0.0
        if not space.param(name).ordered:
            bias = 0.0  # no ordering information to act on
        if importance == ParamHints().importance and bias == 0.0:
            continue
        hints[name] = ParamHints(importance=importance, bias=bias)
    return HintSet(hints, confidence=confidence), counter.distinct_evaluations
