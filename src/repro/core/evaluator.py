"""Evaluators — the bridge between genomes and design metrics.

In the paper every fitness evaluation "requires running computationally
expensive CAD tools ... and/or simulations", so the cost of a search is the
number of *distinct* design points evaluated; revisiting an
already-synthesized design is free. That accounting — and every other
evaluation concern (memoization, persistent caching, batching,
instrumentation, parallel backends) — lives in one layered pipeline,
:class:`repro.core.evalstack.EvaluationStack`, which every engine run wraps
around the underlying evaluator.

Three base evaluators are provided:

* :class:`CallableEvaluator` — wraps any ``genome -> metrics`` function
  (e.g. the miniature synthesis flow driven by an IP generator).
* :class:`DatasetEvaluator` — replays an offline-characterized dataset,
  mirroring the paper's methodology (Section 4.1: spaces were synthesized
  offline on a cluster, then searches ran against the datasets).
* :class:`CountingEvaluator` — the historical memoizing/counting wrapper,
  kept as a thin shim over :class:`EvaluationStack` for existing callers
  (see ``docs/evaluation.md``).

Infeasibility semantics are shared: evaluators raise
:class:`~repro.core.errors.InfeasibleDesignError` for unbuildable points
and the engine turns that into ``-inf`` fitness.
"""

from __future__ import annotations

from typing import Callable, Protocol, Sequence, TYPE_CHECKING

from .errors import DatasetError, InfeasibleDesignError
from .fitness import Metrics
from .genome import Genome

if TYPE_CHECKING:  # pragma: no cover
    from ..dataset.dataset import Dataset
    from .evalstack import EvalStats

__all__ = [
    "Evaluator",
    "CallableEvaluator",
    "CountingEvaluator",
    "DatasetEvaluator",
]


class Evaluator(Protocol):
    """Anything that can turn a genome into a metrics dict."""

    def evaluate(self, genome: Genome) -> Metrics:
        """Return the metrics for a design point.

        Raises:
            InfeasibleDesignError: The point cannot be built.
        """
        ...  # pragma: no cover


class CallableEvaluator:
    """Adapt a plain function into an :class:`Evaluator`."""

    def __init__(self, fn: Callable[[Genome], Metrics]):
        self._fn = fn

    def evaluate(self, genome: Genome) -> Metrics:
        return self._fn(genome)


class CountingEvaluator:
    """Memoizing wrapper that counts distinct design evaluations.

    This is the paper's cost model: the x-axes of Figures 4-7 are
    "# Designs Evaluated", i.e. the number of synthesis jobs, and "the GA
    revisits previously-synthesized results as it converges" without paying
    again (Section 4.2). Infeasible results are cached too — a failed
    synthesis attempt still consumed a job.

    Since the evaluation-stack refactor this class is a thin shim over
    :class:`repro.core.evalstack.EvaluationStack` (memo cache + inline
    backend); the public API — ``evaluate``, ``evaluate_many``, ``seen``,
    ``distinct_evaluations``, ``total_requests``, ``cache_hits`` — is
    unchanged. New code should construct a stack directly.
    """

    def __init__(self, inner: Evaluator):
        from .evalstack import EvaluationStack

        self._inner = inner
        self._stack = EvaluationStack(inner)

    @property
    def stack(self):
        """The underlying :class:`EvaluationStack`."""
        return self._stack

    @property
    def distinct_evaluations(self) -> int:
        """Number of unique design points evaluated so far (synthesis jobs)."""
        return self._stack.distinct_evaluations

    @property
    def total_requests(self) -> int:
        """Number of evaluation requests, including cache hits."""
        return self._stack.total_requests

    @property
    def cache_hits(self) -> int:
        """Requests served from the cache."""
        return self._stack.cache_hits

    def stats(self) -> "EvalStats":
        """The stack's full counter/timer snapshot."""
        return self._stack.stats()

    def evaluate(self, genome: Genome) -> Metrics:
        """Evaluate one design, memoized. Cached failures re-raise fresh
        copies (with the original as ``__cause__``) so revisiting an
        infeasible design does not grow its traceback chain."""
        return self._stack.evaluate(genome)

    def seen(self, genome: Genome) -> bool:
        """Whether this design point has already been evaluated."""
        return self._stack.seen(genome)

    def evaluate_many(self, genomes: Sequence[Genome]) -> list:
        """Evaluate a batch, exploiting the inner evaluator's parallelism.

        Duplicates within the batch and already-cached designs are served
        from the cache; only genuinely new designs reach the inner
        evaluator — all at once via its ``evaluate_many`` when it has one
        (see :class:`repro.core.parallel.ParallelEvaluator`). Returns one
        metrics dict or exception per genome, in order.
        """
        return self._stack.evaluate_many(genomes)


class DatasetEvaluator:
    """Serve metrics from an offline-characterized :class:`Dataset`.

    Args:
        dataset: The characterized dataset (see ``repro.dataset``).
        strict: When True (default) a lookup miss raises
            :class:`DatasetError`; a miss means the search space and dataset
            disagree, which is always a setup bug. When False a miss is
            reported as an infeasible design instead — the lenient mode for
            partially-characterized spaces, where an uncharacterized point
            simply cannot be scored.
    """

    def __init__(self, dataset: "Dataset", strict: bool = True):
        self._dataset = dataset
        self._strict = strict

    @property
    def fingerprint(self) -> str:
        """Content fingerprint for the persistent evaluation cache."""
        mode = "strict" if self._strict else "lenient"
        return f"dataset:{self._dataset.content_fingerprint()}:{mode}"

    def evaluate(self, genome: Genome) -> Metrics:
        try:
            return self._dataset.lookup(genome)
        except DatasetError:
            if self._strict:
                raise DatasetError(
                    f"design point {genome.as_dict()!r} not present in "
                    f"dataset {self._dataset.name!r}"
                ) from None
            raise InfeasibleDesignError(
                f"design point {genome.as_dict()!r} not characterized in "
                f"dataset {self._dataset.name!r} (non-strict mode)"
            ) from None
