"""Evaluators — the bridge between genomes and design metrics.

In the paper every fitness evaluation "requires running computationally
expensive CAD tools ... and/or simulations", so the cost of a search is the
number of *distinct* design points evaluated; revisiting an
already-synthesized design is free. :class:`CountingEvaluator` implements
exactly that accounting and is what every engine run wraps around the
underlying evaluator.

Three base evaluators are provided:

* :class:`CallableEvaluator` — wraps any ``genome -> metrics`` function
  (e.g. the miniature synthesis flow driven by an IP generator).
* :class:`DatasetEvaluator` — replays an offline-characterized dataset,
  mirroring the paper's methodology (Section 4.1: spaces were synthesized
  offline on a cluster, then searches ran against the datasets).
* :class:`InfeasibleAwareEvaluator` semantics are shared: evaluators raise
  :class:`~repro.core.errors.InfeasibleDesignError` for unbuildable points
  and the engine turns that into ``-inf`` fitness.
"""

from __future__ import annotations

from typing import Callable, Protocol, TYPE_CHECKING

from .errors import DatasetError
from .fitness import Metrics
from .genome import Genome

if TYPE_CHECKING:  # pragma: no cover
    from ..dataset.dataset import Dataset

__all__ = [
    "Evaluator",
    "CallableEvaluator",
    "CountingEvaluator",
    "DatasetEvaluator",
]


class Evaluator(Protocol):
    """Anything that can turn a genome into a metrics dict."""

    def evaluate(self, genome: Genome) -> Metrics:
        """Return the metrics for a design point.

        Raises:
            InfeasibleDesignError: The point cannot be built.
        """
        ...  # pragma: no cover


class CallableEvaluator:
    """Adapt a plain function into an :class:`Evaluator`."""

    def __init__(self, fn: Callable[[Genome], Metrics]):
        self._fn = fn

    def evaluate(self, genome: Genome) -> Metrics:
        return self._fn(genome)


class CountingEvaluator:
    """Memoizing wrapper that counts distinct design evaluations.

    This is the paper's cost model: the x-axes of Figures 4-7 are
    "# Designs Evaluated", i.e. the number of synthesis jobs, and "the GA
    revisits previously-synthesized results as it converges" without paying
    again (Section 4.2). Infeasible results are cached too — a failed
    synthesis attempt still consumed a job.
    """

    def __init__(self, inner: Evaluator):
        self._inner = inner
        self._cache: dict[tuple, Metrics | Exception] = {}
        self._distinct = 0
        self._total_requests = 0

    @property
    def distinct_evaluations(self) -> int:
        """Number of unique design points evaluated so far (synthesis jobs)."""
        return self._distinct

    @property
    def total_requests(self) -> int:
        """Number of evaluation requests, including cache hits."""
        return self._total_requests

    @property
    def cache_hits(self) -> int:
        """Requests served from the cache."""
        return self._total_requests - self._distinct

    def evaluate(self, genome: Genome) -> Metrics:
        self._total_requests += 1
        key = genome.key
        if key in self._cache:
            cached = self._cache[key]
            if isinstance(cached, Exception):
                raise cached
            return cached
        self._distinct += 1
        try:
            metrics = self._inner.evaluate(genome)
        except Exception as exc:
            self._cache[key] = exc
            raise
        self._cache[key] = metrics
        return metrics

    def seen(self, genome: Genome) -> bool:
        """Whether this design point has already been evaluated."""
        return genome.key in self._cache

    def evaluate_many(self, genomes) -> list:
        """Evaluate a batch, exploiting the inner evaluator's parallelism.

        Duplicates within the batch and already-cached designs are served
        from the cache; only genuinely new designs reach the inner
        evaluator — all at once via its ``evaluate_many`` when it has one
        (see :class:`repro.core.parallel.ParallelEvaluator`). Returns one
        metrics dict or exception per genome, in order.
        """
        from .parallel import evaluate_batch

        fresh: list[Genome] = []
        fresh_keys: set[tuple] = set()
        for genome in genomes:
            if genome.key not in self._cache and genome.key not in fresh_keys:
                fresh.append(genome)
                fresh_keys.add(genome.key)
        if fresh:
            self._distinct += len(fresh)
            for genome, outcome in zip(fresh, evaluate_batch(self._inner, fresh)):
                self._cache[genome.key] = outcome
        results = []
        for genome in genomes:
            self._total_requests += 1
            results.append(self._cache[genome.key])
        return results


class DatasetEvaluator:
    """Serve metrics from an offline-characterized :class:`Dataset`.

    Args:
        dataset: The characterized dataset (see ``repro.dataset``).
        strict: When True (default) a lookup miss raises
            :class:`DatasetError`; a miss means the search space and dataset
            disagree, which is always a setup bug.
    """

    def __init__(self, dataset: "Dataset", strict: bool = True):
        self._dataset = dataset
        self._strict = strict

    def evaluate(self, genome: Genome) -> Metrics:
        metrics = self._dataset.lookup(genome)
        if metrics is None:
            if self._strict:
                raise DatasetError(
                    f"design point {genome.as_dict()!r} not present in "
                    f"dataset {self._dataset.name!r}"
                )
            raise DatasetError("dataset miss in non-strict mode")
        return metrics
