"""Adaptive confidence — an extension beyond the paper.

Section 3 calls balancing "the strength of the author's guidance (which will
be imperfect) and the stochastic nature of the underlying GA" a particularly
important issue, and leaves the confidence knob to the author. This module
closes that loop: :class:`AdaptiveSearch` adjusts the confidence *during*
the run from observed progress.

Policy (deliberately simple and conservative):

* while the best-so-far keeps improving, confidence relaxes back toward the
  author's setting (the hints are earning their trust);
* after ``patience`` generations without improvement, confidence is cut by
  ``backoff`` — the search is likely stuck where the hints point, so it
  hands control back to the baseline GA's unbiased exploration;
* confidence never leaves ``[min_confidence, initial]``.

With good hints the schedule stays near the author's confidence and matches
plain Nautilus; with adversarially wrong hints it decays toward baseline
behaviour instead of staying trapped — see
``benchmarks/bench_ablation_adaptive.py``.
"""

from __future__ import annotations

from .engine import GAConfig, GeneticSearch
from .errors import NautilusError
from .evaluator import Evaluator
from .fitness import Objective
from .hints import HintSet
from .operators import GeneticOperators
from .space import DesignSpace

__all__ = ["AdaptiveSearch"]


class AdaptiveSearch(GeneticSearch):
    """A Nautilus engine whose confidence reacts to search progress.

    Args:
        patience: Generations without best-so-far improvement before the
            confidence is reduced.
        backoff: Multiplicative confidence reduction on each stall.
        recovery: Multiplicative step back toward the author's confidence
            on each improving generation.
        min_confidence: Floor; 0 turns the engine into the baseline GA when
            fully backed off.
    """

    def __init__(
        self,
        space: DesignSpace,
        evaluator: Evaluator,
        objective: Objective,
        config: GAConfig | None = None,
        hints: HintSet | None = None,
        label: str = "",
        patience: int = 6,
        backoff: float = 0.6,
        recovery: float = 1.15,
        min_confidence: float = 0.05,
    ):
        if hints is None:
            raise NautilusError("AdaptiveSearch requires hints to adapt")
        if patience < 1:
            raise NautilusError("patience must be >= 1")
        if not 0.0 < backoff < 1.0:
            raise NautilusError("backoff must be in (0, 1)")
        if recovery < 1.0:
            raise NautilusError("recovery must be >= 1")
        super().__init__(
            space, evaluator, objective, config, hints, label or "nautilus-adaptive"
        )
        self.patience = patience
        self.backoff = backoff
        self.recovery = recovery
        self.min_confidence = min_confidence
        self._author_confidence = self.hints.confidence
        self._stall = 0
        self._last_best = float("-inf")
        #: (generation, confidence) trace for analysis/plots.
        self.confidence_trace: list[tuple[int, float]] = []

    def _set_confidence(self, confidence: float) -> None:
        clamped = min(max(confidence, self.min_confidence), self._author_confidence)
        self.hints = self.hints.with_confidence(clamped)
        observer = self.operators.observer
        self.operators = GeneticOperators(
            self.space, self.config.mutation_rate, self.hints
        )
        # The attribution observer (if any) survives the rebuild — mid-run
        # confidence changes must not silently stop hint telemetry.
        self.operators.observer = observer
        # The breeding pipeline mutates through whatever operators it holds;
        # swap in the reweighted ones so the new confidence takes effect on
        # the very next offspring.
        self.pipeline.operators = self.operators

    def _before_breeding(self, generation: int) -> None:
        # Adapt once per generation, before any offspring is bred (the
        # controller consumes no RNG, so seeded runs are unaffected).
        best = max(ind.score for ind in self._population)
        if best > self._last_best:
            self._last_best = best
            self._stall = 0
            self._set_confidence(self.hints.confidence * self.recovery)
        else:
            self._stall += 1
            if self._stall >= self.patience:
                self._stall = 0
                self._set_confidence(self.hints.confidence * self.backoff)
        self.confidence_trace.append((generation, self.hints.confidence))
