"""Adaptive confidence — an extension beyond the paper.

Section 3 calls balancing "the strength of the author's guidance (which will
be imperfect) and the stochastic nature of the underlying GA" a particularly
important issue, and leaves the confidence knob to the author. This module
closes that loop: :class:`AdaptiveSearch` adjusts the confidence *during*
the run from observed progress.

Policy (deliberately simple and conservative):

* while the best-so-far keeps improving, confidence relaxes back toward the
  author's setting (the hints are earning their trust);
* after ``patience`` generations without improvement, confidence is cut by
  ``backoff`` — the search is likely stuck where the hints point, so it
  hands control back to the baseline GA's unbiased exploration;
* confidence never leaves ``[min_confidence, initial]``.

The policy itself lives in
:class:`~repro.core.guidance.AdaptiveConfidence`, a guidance provider any
generational engine can compose; :class:`AdaptiveSearch` is the thin engine
alias that pairs it with :class:`~repro.core.engine.GeneticSearch`. With
good hints the schedule stays near the author's confidence and matches
plain Nautilus; with adversarially wrong hints it decays toward baseline
behaviour instead of staying trapped — see
``benchmarks/bench_ablation_adaptive.py``.
"""

from __future__ import annotations

from .engine import GAConfig, GeneticSearch
from .errors import NautilusError
from .evaluator import Evaluator
from .fitness import Objective
from .guidance import AdaptiveConfidence
from .hints import HintSet
from .space import DesignSpace

__all__ = ["AdaptiveSearch"]


class AdaptiveSearch(GeneticSearch):
    """A Nautilus engine whose confidence reacts to search progress.

    Composes :class:`~repro.core.guidance.AdaptiveConfidence` with the
    generational GA; the kernel feeds the provider the best population
    score once per generation (the controller consumes no RNG, so seeded
    runs are unaffected by the adaptation bookkeeping).

    Args:
        patience: Generations without best-so-far improvement before the
            confidence is reduced.
        backoff: Multiplicative confidence reduction on each stall.
        recovery: Multiplicative step back toward the author's confidence
            on each improving generation.
        min_confidence: Floor; 0 turns the engine into the baseline GA when
            fully backed off.
    """

    def __init__(
        self,
        space: DesignSpace,
        evaluator: Evaluator,
        objective: Objective,
        config: GAConfig | None = None,
        hints: HintSet | None = None,
        label: str = "",
        patience: int = 6,
        backoff: float = 0.6,
        recovery: float = 1.15,
        min_confidence: float = 0.05,
    ):
        if hints is None:
            raise NautilusError("AdaptiveSearch requires hints to adapt")
        controller = AdaptiveConfidence(
            hints,
            patience=patience,
            backoff=backoff,
            recovery=recovery,
            min_confidence=min_confidence,
        )
        super().__init__(
            space,
            evaluator,
            objective,
            config,
            label=label or "nautilus-adaptive",
            guidance=controller,
        )
        self.patience = patience
        self.backoff = backoff
        self.recovery = recovery
        self.min_confidence = min_confidence

    @property
    def confidence_trace(self) -> list[tuple[int, float]]:
        """(generation, confidence) trace for analysis/plots."""
        return self._guidance.confidence_trace
