"""The search kernel: one lifecycle, one RNG discipline, one trace.

Every engine in this reproduction — the baseline/guided generational GA,
the adaptive-confidence variant, the NSGA-II multi-objective search, and
the random-sampling baseline — is a thin strategy layered on the same
:class:`SearchKernel`. The kernel owns the three things the engines used to
re-implement independently:

* **Lifecycle** — the incremental ``start()`` / ``step()`` protocol the
  service scheduler interleaves, the ``finished`` / ``stop_reason`` state
  machine, and the documented stopping precedence (evaluation *budget*,
  then generation *horizon*, then *stall* patience — checked between
  generations, first match wins).

* **Named RNG streams** — :class:`RngStreams` hands each genetic concern
  (``init`` / ``selection`` / ``crossover`` / ``mutation``) a named
  ``random.Random``. In the default ``"shared"`` mode every name aliases
  one seeded generator, which is bit-identical to the single-RNG engines
  this kernel replaced (and to the paper's PyEvolve lineage); ``"split"``
  mode derives an independent stream per name from the one seed, so adding
  draws to one operator never perturbs another's sequence. Checkpoints
  capture every stream either way.

* **Structured trace** — every run emits :class:`RunEvent` records
  (``generation-start`` / ``eval-batch`` / ``operator-applied`` /
  ``best-improved`` / ``generation-end`` / ``stop``) through pluggable
  :class:`TraceSink`\\ s. The trace is the source of truth for run history:
  the per-generation :class:`GenerationRecord` list is a *derived view*
  over the ``generation-end`` events, and the service persists the same
  events per campaign as a JSONL log.

:class:`GenerationalEngine` specializes the kernel for population-based
searches (propose → evaluate → select survivors → record); concrete
engines only declare their operator pipeline and survivor rule.
"""

from __future__ import annotations

import json
import math
import random
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Sequence

from ..obs.attribution import summarize_generation
from ..obs.clock import DEFAULT_CLOCK
from ..obs.health import population_health
from ..obs.tracing import SpanRecorder
from .errors import NautilusError
from .evalstack import EvalStats, EvaluationStack
from .fitness import Objective
from .genome import Genome
from .guidance import GuidanceProvider, GuidanceState
from .selection import Individual

__all__ = [
    "RUN_EVENT_KINDS",
    "RunEvent",
    "TraceSink",
    "RecordingTraceSink",
    "JsonlTraceSink",
    "CappedJsonlTraceSink",
    "RunTrace",
    "RngStreams",
    "GenerationRecord",
    "SearchResult",
    "SearchKernel",
    "GenerationalEngine",
]

#: The event vocabulary every engine speaks. ``hint-attribution`` and
#: ``health`` are observability events (see :mod:`repro.obs`): emitted
#: once per generation when observability is enabled, derived purely from
#: already-computed state, and never consuming RNG draws.
RUN_EVENT_KINDS = (
    "generation-start",
    "generation-end",
    "eval-batch",
    "best-improved",
    "operator-applied",
    "hint-attribution",
    "health",
    "phase-budget",
    "stop",
)

#: Window (generations) over which the health event's convergence
#: velocity is measured.
_HEALTH_WINDOW = 8


# ---------------------------------------------------------------------------
# trace events and sinks
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RunEvent:
    """One structured trace event; ``payload`` is always JSON-serializable."""

    seq: int
    kind: str
    generation: int
    payload: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        return {
            "seq": self.seq,
            "kind": self.kind,
            "generation": self.generation,
            **self.payload,
        }


class TraceSink:
    """Receives every emitted :class:`RunEvent`; subclass and override."""

    def emit(self, event: RunEvent) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def close(self) -> None:
        """Release any resources; emitting after close is a no-op."""


class RecordingTraceSink(TraceSink):
    """Keeps the last ``limit`` events in memory (None keeps everything)."""

    def __init__(self, limit: int | None = 100):
        self.limit = limit
        self._events: list[RunEvent] = []

    def emit(self, event: RunEvent) -> None:
        self._events.append(event)
        if self.limit is not None and len(self._events) > self.limit:
            del self._events[: len(self._events) - self.limit]

    def events(self, kind: str | None = None) -> list[RunEvent]:
        if kind is None:
            return list(self._events)
        return [e for e in self._events if e.kind == kind]


class JsonlTraceSink(TraceSink):
    """Appends one JSON line per event — the service's per-campaign log.

    The file is opened lazily and appended to (a resumed campaign continues
    the log it left behind); every line is flushed so a killed daemon loses
    at most the event being written.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._handle = None
        self._closed = False

    def emit(self, event: RunEvent) -> None:
        if self._closed:
            return
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("a", encoding="utf-8")
        self._handle.write(json.dumps(event.as_dict()) + "\n")
        self._handle.flush()

    def close(self) -> None:
        self._closed = True
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class CappedJsonlTraceSink(JsonlTraceSink):
    """A :class:`JsonlTraceSink` that bounds the file's event count.

    Long campaigns would otherwise grow ``events.jsonl`` without bound.
    When the line count exceeds ``max_events`` (plus a small slack that
    amortizes the rewrite), the file is compacted to the first
    ``max_events // 2`` and last ``max_events - max_events // 2`` events
    with a marker line between them::

        {"kind": "trace-truncated", "generation": <g>, "dropped": <k>}

    ``dropped`` accumulates across compactions, so the marker always
    reports the total number of events removed from the middle. The
    marker's kind is deliberately *not* part of :data:`RUN_EVENT_KINDS` —
    it exists only in persisted logs, never in a live trace.
    """

    MARKER_KIND = "trace-truncated"

    def __init__(self, path: str | Path, max_events: int):
        super().__init__(path)
        if max_events < 4:
            raise NautilusError("trace_max_events must be >= 4")
        self.max_events = max_events
        self._slack = max(max_events // 4, 8)
        self._lines: int | None = None

    def emit(self, event: RunEvent) -> None:
        if self._closed:
            return
        if self._lines is None:
            self._lines = self._count_existing()
        super().emit(event)
        self._lines += 1
        if self._lines > self.max_events + self._slack:
            self._compact()

    def _count_existing(self) -> int:
        try:
            with self.path.open("r", encoding="utf-8") as handle:
                return sum(1 for _ in handle)
        except FileNotFoundError:
            return 0

    def _compact(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        rows = []
        prior_dropped = 0
        for line in self.path.read_text(encoding="utf-8").splitlines():
            try:
                payload = json.loads(line)
            except ValueError:
                continue  # torn final line from a killed writer
            if payload.get("kind") == self.MARKER_KIND:
                prior_dropped += int(payload.get("dropped", 0))
                continue
            rows.append(line)
        head_n = self.max_events // 2
        tail_n = self.max_events - head_n
        if len(rows) <= head_n + tail_n:
            # Nothing new to drop (e.g. torn lines inflated the count);
            # keep what we have, preserving any accumulated marker.
            if prior_dropped:
                marker = json.dumps(
                    {"kind": self.MARKER_KIND, "generation": 0,
                     "dropped": prior_dropped}
                )
                rows = [*rows[:head_n], marker, *rows[head_n:]]
            self._lines = len(rows)
            tmp = self.path.with_name(self.path.name + ".tmp")
            tmp.write_text("\n".join(rows) + "\n", encoding="utf-8")
            tmp.replace(self.path)
            return
        head, tail = rows[:head_n], rows[len(rows) - tail_n:]
        dropped = prior_dropped + max(len(rows) - len(head) - len(tail), 0)
        try:
            marker_generation = json.loads(tail[0]).get("generation", 0)
        except (ValueError, IndexError):
            marker_generation = 0
        marker = json.dumps(
            {
                "kind": self.MARKER_KIND,
                "generation": marker_generation,
                "dropped": dropped,
            }
        )
        tmp = self.path.with_name(self.path.name + ".tmp")
        tmp.write_text("\n".join([*head, marker, *tail]) + "\n", encoding="utf-8")
        tmp.replace(self.path)
        self._lines = len(head) + 1 + len(tail)


class RunTrace:
    """The in-memory event stream of one search run.

    Owns the monotonically increasing sequence numbers, fans events out to
    attached sinks, and aggregates per-operator call counts and wall time
    from ``operator-applied`` events (surfaced by ``/metrics`` and
    ``nautilus status``).
    """

    def __init__(self, sinks: Sequence[TraceSink] = ()):
        self.events: list[RunEvent] = []
        self._sinks: list[TraceSink] = list(sinks)
        self._seq = 0
        self._operators: dict[str, dict[str, float]] = {}

    def attach(self, sink: TraceSink) -> None:
        self._sinks.append(sink)

    def emit(
        self,
        kind: str,
        generation: int,
        payload: dict[str, Any] | None = None,
        notify: bool = True,
    ) -> RunEvent:
        """Record one event; ``notify=False`` keeps replays out of sinks."""
        if kind not in RUN_EVENT_KINDS:
            raise NautilusError(f"unknown run-event kind {kind!r}")
        event = RunEvent(self._seq, kind, generation, dict(payload or {}))
        self._seq += 1
        self.events.append(event)
        if kind == "operator-applied":
            totals = self._operators.setdefault(
                str(event.payload.get("operator", "?")),
                {"calls": 0, "time_s": 0.0},
            )
            totals["calls"] += int(event.payload.get("calls", 0))
            totals["time_s"] += float(event.payload.get("time_s", 0.0))
        if notify:
            for sink in self._sinks:
                sink.emit(event)
        return event

    def operator_timings(self) -> dict[str, dict[str, float]]:
        """Cumulative {operator: {calls, time_s}} over the whole run."""
        return {name: dict(totals) for name, totals in self._operators.items()}


# ---------------------------------------------------------------------------
# named RNG streams
# ---------------------------------------------------------------------------


def _rng_state_to_json(state) -> list:
    version, internal, gauss = state
    return [version, list(internal), gauss]


def _rng_state_from_json(payload) -> tuple:
    version, internal, gauss = payload
    return (version, tuple(internal), gauss)


class RngStreams:
    """Named ``random.Random`` streams for the genetic concerns of a search.

    ``"shared"`` mode (the default): every name aliases one generator seeded
    with the configured seed — the draw sequence is bit-identical to the
    single-RNG engines the kernel replaced, which is what the engine-parity
    CI job pins. ``"split"`` mode derives an independent stream per name
    from the same seed (``Random(f"{seed}:{name}")``), so an operator that
    starts consuming more randomness never shifts another operator's
    sequence. A seed of ``0`` is a real seed in both modes — only ``None``
    draws from the entropy pool.
    """

    NAMES = ("init", "selection", "crossover", "mutation")

    def __init__(self, seed: int | None = None, split: bool = False):
        self.split = split
        if split:
            self._streams = {
                name: random.Random(None if seed is None else f"{seed}:{name}")
                for name in self.NAMES
            }
        else:
            master = random.Random(seed)
            self._streams = {name: master for name in self.NAMES}

    # -- access -----------------------------------------------------------------

    def stream(self, name: str) -> random.Random:
        try:
            return self._streams[name]
        except KeyError:
            raise NautilusError(f"unknown RNG stream {name!r}") from None

    @property
    def init(self) -> random.Random:
        return self._streams["init"]

    @property
    def selection(self) -> random.Random:
        return self._streams["selection"]

    @property
    def crossover(self) -> random.Random:
        return self._streams["crossover"]

    @property
    def mutation(self) -> random.Random:
        return self._streams["mutation"]

    # -- checkpointing ----------------------------------------------------------

    def getstate(self) -> dict[str, Any]:
        """JSON-serializable snapshot of every stream."""
        if self.split:
            streams = {
                name: _rng_state_to_json(rng.getstate())
                for name, rng in self._streams.items()
            }
            return {"mode": "split", "streams": streams}
        return {
            "mode": "shared",
            "streams": {
                "shared": _rng_state_to_json(self._streams["init"].getstate())
            },
        }

    def setstate(self, payload: dict[str, Any]) -> None:
        mode = payload.get("mode")
        if mode not in ("shared", "split"):
            raise NautilusError(f"unknown RNG-stream mode {mode!r}")
        if (mode == "split") != self.split:
            raise NautilusError(
                f"checkpoint was taken in {mode!r} RNG mode, this search is "
                f"configured for {'split' if self.split else 'shared'!r}"
            )
        if self.split:
            for name in self.NAMES:
                self._streams[name].setstate(
                    _rng_state_from_json(payload["streams"][name])
                )
        else:
            self._streams["init"].setstate(
                _rng_state_from_json(payload["streams"]["shared"])
            )

    @classmethod
    def from_state(cls, payload: dict[str, Any]) -> "RngStreams":
        streams = cls(seed=0, split=payload.get("mode") == "split")
        streams.setstate(payload)
        return streams


# ---------------------------------------------------------------------------
# run history: records derived from the trace
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GenerationRecord:
    """Snapshot of the search state after one generation.

    Records are a derived view: the kernel emits a ``generation-end`` trace
    event per generation and :attr:`SearchKernel.records` projects these
    fields back out of the event payloads.
    """

    generation: int
    best_raw: float
    best_score: float
    mean_score: float
    distinct_evaluations: int
    best_config: dict[str, Any] = field(repr=False, default_factory=dict)


_RECORD_FIELDS = (
    "generation",
    "best_raw",
    "best_score",
    "mean_score",
    "distinct_evaluations",
    "best_config",
)


class SearchResult:
    """The outcome of one search run.

    The result exposes the two quantities the paper evaluates on (Section 2,
    "Evaluating GAs"): quality of results (best raw metric) and runtime
    measured as the number of distinct designs evaluated.

    ``stop_reason`` records why the search ended: ``"horizon"`` (configured
    generations exhausted), ``"budget"`` (``max_evaluations`` reached),
    ``"stall"`` (``stall_generations`` without improvement), ``"exhausted"``
    (random search ran out of unseen feasible points), or ``"cancelled"``
    (an incremental search was finalized before any cutoff fired).
    """

    def __init__(
        self,
        objective: Objective,
        records: Sequence[GenerationRecord],
        best: Individual,
        distinct_evaluations: int,
        label: str = "",
        stop_reason: str = "horizon",
        eval_stats: EvalStats | None = None,
        events: Sequence[RunEvent] | None = None,
    ):
        self.objective = objective
        self.records = list(records)
        self.best = best
        self.distinct_evaluations = distinct_evaluations
        self.label = label
        self.stop_reason = stop_reason
        #: Full evaluation-pipeline counters/timers at result time (cache
        #: hits by layer, batch sizes, backend wall time, infeasible rate).
        self.eval_stats = eval_stats or EvalStats()
        #: The structured trace of the run (empty for hand-built results).
        self.events = list(events or ())

    @property
    def best_raw(self) -> float:
        """Best raw objective value found."""
        return self.best.raw

    @property
    def best_config(self) -> dict[str, Any]:
        """Parameter assignment of the best design found."""
        return self.best.genome.as_dict()

    def curve(self) -> list[tuple[int, float]]:
        """(distinct evals, best raw so far) after each generation."""
        return [(r.distinct_evaluations, r.best_raw) for r in self.records]

    def generation_curve(self) -> list[tuple[int, float]]:
        """(generation, best raw so far) pairs."""
        return [(r.generation, r.best_raw) for r in self.records]

    def operator_timings(self) -> dict[str, dict[str, float]]:
        """{operator: {calls, time_s}} aggregated from the run's trace."""
        totals: dict[str, dict[str, float]] = {}
        for event in self.events:
            if event.kind != "operator-applied":
                continue
            entry = totals.setdefault(
                str(event.payload.get("operator", "?")),
                {"calls": 0, "time_s": 0.0},
            )
            entry["calls"] += int(event.payload.get("calls", 0))
            entry["time_s"] += float(event.payload.get("time_s", 0.0))
        return totals

    def evals_to_reach(self, threshold: float) -> int | None:
        """Distinct evaluations needed to first reach a raw-metric threshold.

        Returns ``None`` if the run never reached it. Direction comes from
        the objective (>= threshold for max, <= for min).
        """
        for record in self.records:
            if math.isnan(record.best_raw):
                continue
            reached = (
                record.best_raw >= threshold
                if self.objective.maximizing
                else record.best_raw <= threshold
            )
            if reached:
                return record.distinct_evaluations
        return None

    def generations_to_reach(self, threshold: float) -> int | None:
        """Generations needed to first reach a raw-metric threshold."""
        for record in self.records:
            if math.isnan(record.best_raw):
                continue
            reached = (
                record.best_raw >= threshold
                if self.objective.maximizing
                else record.best_raw <= threshold
            )
            if reached:
                return record.generation
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SearchResult({self.label or self.objective.name}: "
            f"best={self.best_raw:.4g} after {self.distinct_evaluations} evals)"
        )


# ---------------------------------------------------------------------------
# the kernel
# ---------------------------------------------------------------------------


class SearchKernel:
    """Shared lifecycle, RNG streams, and trace for every search engine.

    Subclasses implement :meth:`_do_start` and :meth:`_do_step`; the kernel
    wraps them with the start/step guards, the stopping-cutoff precedence
    (budget → horizon → stall, checked between generations), stop-reason
    bookkeeping, and trace emission. Cutoffs a subclass leaves as ``None``
    never fire, so an engine with its own stopping rule (the random
    baseline's draw budget) simply finishes itself via :meth:`_finish`.
    """

    def __init__(
        self,
        space,
        evaluator,
        objective: Objective,
        label: str = "",
        seed: int | None = None,
        max_evaluations: int | None = None,
        horizon: int | None = None,
        stall_generations: int | None = None,
        split_rngs: bool = False,
        sinks: Sequence[TraceSink] = (),
        observability: bool = True,
        tracing: bool = False,
        clock: Callable[[], float] | None = None,
    ):
        self.space = space
        self.objective = objective
        self.label = label
        self.seed = seed
        self.max_evaluations = max_evaluations
        self.horizon = horizon
        self.stall_generations = stall_generations
        self.split_rngs = split_rngs
        #: Whether the kernel emits ``hint-attribution`` / ``health``
        #: events. Purely additive telemetry: enabling it consumes no RNG
        #: draws, so seeded runs are bit-identical either way (the
        #: engine-parity CI job asserts this).
        self.observability = observability
        #: Whether the kernel records a span tree (see
        #: :mod:`repro.obs.tracing`). Same contract as observability:
        #: tracing consumes zero RNG draws (span ids are counters), so
        #: seeded runs stay bit-identical with it on or off.
        self.tracing = tracing
        #: The injectable time source every timed path below shares —
        #: operator timing, span boundaries, eval wall-clock. Tests pass
        #: a FakeClock; production uses DEFAULT_CLOCK (perf_counter).
        self._clock = clock if clock is not None else DEFAULT_CLOCK
        self._tracer = SpanRecorder(clock=self._clock) if tracing else None
        self._run_span = None
        self._eval_phase = None
        #: The most recent ``health`` event payload (``None`` until one
        #: is emitted); surfaced by campaign status and ``nautilus top``.
        self.latest_health: dict[str, Any] | None = None
        self._counter = EvaluationStack.wrap(evaluator)
        self._trace = RunTrace(sinks)
        #: The guidance provider steering this search (None for unguided
        #: engines) and the per-generation state it last produced. The
        #: kernel owns the provider's lifecycle: ``start()`` at generation
        #: 0, one ``advance()`` per subsequent generation, and checkpoint
        #: save/restore of its mutable state.
        self._guidance: GuidanceProvider | None = None
        self._guidance_state: GuidanceState | None = None
        self._rngs: RngStreams | None = None
        self._population: list = []
        self._best = None
        self._generation = 0
        self._stalled_generations = 0
        self._stop_reason: str | None = None
        self._best_window: deque[float] = deque(maxlen=_HEALTH_WINDOW)
        self._last_batch: tuple[int, int] = (0, 0)

    # -- shared state surface ----------------------------------------------------

    @property
    def started(self) -> bool:
        """Whether :meth:`start` has been called."""
        return self._rngs is not None

    @property
    def finished(self) -> bool:
        """Whether a stopping cutoff has fired (see :meth:`step`)."""
        return self._stop_reason is not None

    @property
    def stop_reason(self) -> str | None:
        """Why the search stopped, or ``None`` while it can still step."""
        return self._stop_reason

    @property
    def generation(self) -> int:
        """Index of the last completed generation (0 after :meth:`start`)."""
        return self._generation

    @property
    def distinct_evaluations(self) -> int:
        """Distinct designs evaluated so far (synthesis jobs paid)."""
        return self._counter.distinct_evaluations

    @property
    def best_score(self) -> float | None:
        """Best internal score so far, or ``None`` before any evaluation."""
        if self._best is None:
            return None
        return self._best.score

    @property
    def stack(self) -> EvaluationStack:
        """The evaluation stack this search charges its synthesis jobs to."""
        return self._counter

    def eval_stats(self) -> EvalStats:
        """Snapshot of the evaluation pipeline's counters and timers."""
        return self._counter.stats()

    @property
    def guidance(self) -> GuidanceProvider | None:
        """The guidance provider steering this search, if any."""
        return self._guidance

    @property
    def guidance_state(self) -> GuidanceState | None:
        """The guidance state in force for the current generation."""
        return self._guidance_state

    @property
    def rngs(self) -> RngStreams:
        """The named RNG streams (available once started)."""
        if self._rngs is None:
            raise NautilusError("search has not started")
        return self._rngs

    @property
    def records(self) -> list[GenerationRecord]:
        """Per-generation records, derived from ``generation-end`` events."""
        return [
            GenerationRecord(**{f: e.payload[f] for f in _RECORD_FIELDS})
            for e in self._trace.events
            if e.kind == "generation-end"
        ]

    @property
    def trace_events(self) -> list[RunEvent]:
        """Every event emitted so far (copy)."""
        return list(self._trace.events)

    def attach_sink(self, sink: TraceSink) -> None:
        """Subscribe a sink to every event emitted from now on."""
        self._trace.attach(sink)

    def operator_timings(self) -> dict[str, dict[str, float]]:
        """Cumulative per-operator call counts and wall time."""
        return self._trace.operator_timings()

    @property
    def tracer(self) -> SpanRecorder | None:
        """The span recorder, or ``None`` when tracing is off."""
        return self._tracer

    def spans(self) -> list[dict[str, Any]]:
        """Every span recorded so far as JSON-ready dicts (empty when
        tracing is off)."""
        if self._tracer is None:
            return []
        return self._tracer.export()

    # -- lifecycle ---------------------------------------------------------------

    def start(self):
        """Initialize the run; returns the generation-0 record (or ``None``
        for engines without one, like the random baseline)."""
        if self.started:
            raise NautilusError("search already started")
        self._rngs = RngStreams(self.seed, split=self.split_rngs)
        if self._tracer is not None:
            self._run_span = self._tracer.begin(
                "run", label=self.label, seed=self.seed
            )
        return self._do_start()

    def step(self):
        """Advance one generation; return its record, or ``None`` when done.

        Cutoffs are checked on entry, in the documented precedence order
        (budget, horizon, stall): the step *after* the generation that
        triggered a cutoff returns ``None`` and pins :attr:`stop_reason`.
        """
        if not self.started:
            raise NautilusError("call start() before step()")
        if self.finished:
            return None
        reason = self._cutoff()
        if reason is not None:
            self._finish(reason)
            return None
        return self._do_step()

    def run(self) -> SearchResult:
        """Run until a cutoff fires and return the result.

        Thin loop over :meth:`start` / :meth:`step` — stepping incrementally
        yields exactly this result.
        """
        if not self.started:
            self.start()
        while self.step() is not None:
            pass
        return self.result()

    def stop(self, reason: str = "cancelled") -> None:
        """Pin a terminal stop reason (no-op if a cutoff already fired)."""
        if not self.finished:
            self._finish(reason)

    def result(self) -> SearchResult:
        """Package the search state reached so far into a :class:`SearchResult`.

        Callable at any point after :meth:`start` — a scheduler that cancels
        a campaign mid-flight still gets the best-so-far and its curve. A
        result taken before any cutoff fired reports ``"cancelled"``.
        """
        if self._best is None:
            raise NautilusError("search has not started")
        return SearchResult(
            self.objective,
            self.records,
            self._best,
            self._counter.distinct_evaluations,
            label=self.label,
            stop_reason=self._stop_reason or "cancelled",
            eval_stats=self._counter.stats(),
            events=self.trace_events,
        )

    # -- kernel plumbing ---------------------------------------------------------

    def _cutoff(self) -> str | None:
        """First stopping cutoff due, in the documented precedence order."""
        if (
            self.max_evaluations is not None
            and self._counter.distinct_evaluations >= self.max_evaluations
        ):
            return "budget"
        if self.horizon is not None and self._generation >= self.horizon:
            return "horizon"
        if (
            self.stall_generations is not None
            and self._stalled_generations >= self.stall_generations
        ):
            return "stall"
        return None

    def _finish(self, reason: str) -> None:
        self._stop_reason = reason
        self._trace.emit("stop", self._generation, {"reason": reason})
        if self._tracer is not None and self._run_span is not None:
            self._tracer.end(
                self._run_span, generations=self._generation, stop_reason=reason
            )
        self._on_finish(reason)

    def _push_record(self, record: GenerationRecord) -> GenerationRecord:
        """Emit the generation-end event the record is derived from."""
        self._trace.emit(
            "generation-end",
            record.generation,
            {f: getattr(record, f) for f in _RECORD_FIELDS},
        )
        return record

    def _replay_record(self, payload: dict[str, Any]) -> None:
        """Re-seed the trace with a checkpointed generation (sinks skipped)."""
        self._trace.emit(
            "generation-end",
            int(payload["generation"]),
            {f: payload[f] for f in _RECORD_FIELDS},
            notify=False,
        )

    # -- engine hooks ------------------------------------------------------------

    def _do_start(self):  # pragma: no cover - abstract
        raise NotImplementedError

    def _do_step(self):  # pragma: no cover - abstract
        raise NotImplementedError

    def _after_generation(self, record: GenerationRecord) -> None:
        """Hook invoked after each completed generation (subclass seam)."""

    def _on_finish(self, reason: str) -> None:
        """Hook invoked exactly once when a stopping cutoff fires."""


class GenerationalEngine(SearchKernel):
    """A kernel specialization for population-based generational searches.

    The loop is fixed — propose offspring through an operator pipeline,
    evaluate them as one batch, pick survivors, observe progress, record —
    and each stage is a hook: :meth:`_initial_genomes`,
    :meth:`_propose`, :meth:`_to_individuals`, :meth:`_survivors`,
    :meth:`_observe_start` / :meth:`_observe`, and :meth:`_make_record`.
    """

    def _do_start(self) -> GenerationRecord:
        tr = self._tracer
        gen_span = (
            tr.begin("generation", parent=self._run_span, generation=0)
            if tr is not None
            else None
        )
        self._trace.emit("generation-start", 0)
        self._guidance_state = (
            self._guidance.start()
            if self._guidance is not None
            else GuidanceState.neutral(0)
        )
        t0 = self._clock()
        genomes = self._initial_genomes()
        t1 = self._clock()
        self._trace.emit(
            "operator-applied",
            0,
            {"operator": "init", "calls": len(genomes), "time_s": t1 - t0},
        )
        if tr is not None:
            # Phase spans tile the generation window edge to edge via
            # shared boundary timestamps, so the phase budget covers the
            # wall-clock by construction (the "init" segment absorbs
            # guidance start and event emission alongside sampling).
            tr.record("phase", gen_span.start_s, t1, parent=gen_span, phase="init")
            self._eval_phase = tr.begin(
                "phase", parent=gen_span, at=t1, phase="evaluate"
            )
        self._population = self._assess_population(genomes, 0)
        if tr is not None:
            b2 = self._clock()
            tr.end(self._eval_phase, at=b2)
            self._eval_phase = None
        self._generation = 0
        self._observe_start()
        record = self._make_record(0)
        self._best_window.append(record.best_score)
        self._emit_health(0)
        self._push_record(record)
        if tr is not None:
            b3 = self._clock()
            tr.record("phase", b2, b3, parent=gen_span, phase="observe")
            tr.end(gen_span, at=b3)
            self._emit_phase_budget(0, gen_span)
        return record

    def _do_step(self) -> GenerationRecord:
        generation = self._generation + 1
        tr = self._tracer
        gen_span = (
            tr.begin("generation", parent=self._run_span, generation=generation)
            if tr is not None
            else None
        )
        self._trace.emit("generation-start", generation)
        # The kernel — not the engines — advances guidance: exactly one
        # provider step per generation, fed the population's best score
        # before breeding (what the adaptive controller watches).
        self._guidance_state = (
            self._guidance.advance(generation, self._guidance_feedback())
            if self._guidance is not None
            else GuidanceState.neutral(generation)
        )
        timings: dict[str, list[float]] = {}
        genomes = self._propose(generation, timings)
        for operator, (calls, time_s) in timings.items():
            self._trace.emit(
                "operator-applied",
                generation,
                {"operator": operator, "calls": int(calls), "time_s": time_s},
            )
        if tr is not None:
            b1 = self._clock()
            self._record_breed_phases(gen_span, gen_span.start_s, b1, timings)
            self._eval_phase = tr.begin(
                "phase", parent=gen_span, at=b1, phase="evaluate"
            )
        offspring = self._assess_population(genomes, generation)
        if tr is not None:
            b2 = self._clock()
            tr.end(self._eval_phase, at=b2)
            self._eval_phase = None
        self._emit_attribution(generation, offspring)
        self._population = self._survivors(offspring)
        improved = self._observe(generation)
        if improved:
            self._stalled_generations = 0
        else:
            self._stalled_generations += 1
        self._generation = generation
        record = self._make_record(generation)
        if improved:
            self._trace.emit(
                "best-improved",
                generation,
                {"best_raw": record.best_raw, "best_score": record.best_score},
            )
        self._best_window.append(record.best_score)
        self._emit_health(generation)
        self._push_record(record)
        if tr is not None:
            b3 = self._clock()
            tr.record("phase", b2, b3, parent=gen_span, phase="observe")
        self._after_generation(record)
        if tr is not None:
            b4 = self._clock()
            tr.record("phase", b3, b4, parent=gen_span, phase="checkpoint")
            tr.end(gen_span, at=b4)
            self._emit_phase_budget(generation, gen_span)
        return record

    def _assess_population(self, genomes: Sequence[Genome], generation: int):
        """Score a whole generation through the stack's batch primitive.

        When the evaluator exposes a parallel backend the generation's new
        designs are evaluated concurrently — the population-sized
        parallelism the paper's Section 2 discusses. Results are identical
        to the sequential path. Emits one ``eval-batch`` event per batch;
        with tracing on, also one ``eval-batch`` span (under the evaluate
        phase) carrying per-task child spans stitched from the fleet.
        """
        tr = self._tracer
        batch_span = None
        if tr is not None:
            batch_span = tr.begin(
                "eval-batch", parent=self._eval_phase, size=len(genomes)
            )
            # Hand the span context to the evaluation stack so the fleet
            # backend can propagate it through the protocol frames (local
            # backends have no hook and simply ignore it).
            push = getattr(self._counter, "push_trace_context", None)
            if push is not None:
                push({"trace": tr.trace_id, "parent": batch_span.span_id})
        before = self._counter.stats()
        outcomes = self._counter.evaluate_many(genomes)
        delta = self._counter.stats().minus(before)
        self._last_batch = (len(genomes), delta.infeasible)
        payload = {
            "size": len(genomes),
            "distinct": delta.distinct,
            "cache_hits": delta.cache_hits,
            "infeasible": delta.infeasible,
            "wall_time_s": delta.wall_time_s,
        }
        # Backend-specific annotations (e.g. which fleet workers served the
        # batch); local backends return None and the payload is unchanged.
        annotate = getattr(self._counter, "pop_annotations", None)
        if annotate is not None:
            extra = annotate()
            if extra:
                payload.update(extra)
        self._trace.emit("eval-batch", generation, payload)
        if tr is not None:
            tr.end(
                batch_span,
                distinct=delta.distinct,
                cache_hits=delta.cache_hits,
                infeasible=delta.infeasible,
            )
            self._materialize_eval_spans(batch_span)
        return self._to_individuals(genomes, outcomes)

    # -- tracing (see repro.obs.tracing; zero RNG draws by construction) ---------

    #: Trace phase label per operator-timing key.
    _PHASE_LABELS = {
        "selection": "select",
        "crossover": "crossover",
        "mutation": "mutate",
    }

    def _record_breed_phases(
        self,
        gen_span,
        start_s: float,
        end_s: float,
        timings: dict[str, list[float]],
    ) -> None:
        """Tile the breeding window into select/crossover/mutate phases.

        The window (generation start → evaluation start) also contains
        guidance advance and event emission; the operator timings say how
        breeding time split between operators, so the window is divided
        *proportionally* to those measurements. This keeps the phase
        partition gap-free (coverage stays ~1.0) while still reflecting
        the measured operator balance.
        """
        weights = [
            (self._PHASE_LABELS.get(op, op), max(float(t[1]), 0.0))
            for op, t in sorted(timings.items())
        ]
        total = sum(w for _, w in weights)
        window = end_s - start_s
        if total <= 0 or window <= 0:
            self._tracer.record(
                "phase", start_s, end_s, parent=gen_span, phase="select"
            )
            return
        edge = start_s
        for i, (label, weight) in enumerate(weights):
            nxt = end_s if i == len(weights) - 1 else edge + window * (weight / total)
            self._tracer.record("phase", edge, nxt, parent=gen_span, phase=label)
            edge = nxt

    def _emit_phase_budget(self, generation: int, gen_span) -> None:
        """One ``phase-budget`` event (and Prometheus observation) per
        generation: where its wall-clock went, by phase."""
        phases: dict[str, float] = {}
        for span in self._tracer.spans():
            if span.parent_id == gen_span.span_id and span.name == "phase":
                label = str(span.attrs.get("phase", "?"))
                phases[label] = phases.get(label, 0.0) + (span.duration_s or 0.0)
        wall = gen_span.duration_s or 0.0
        payload = {
            "phases": phases,
            "wall_time_s": wall,
            "coverage": (sum(phases.values()) / wall) if wall > 0 else 1.0,
        }
        self._trace.emit("phase-budget", generation, payload)
        registry = getattr(self._counter, "registry", None)
        if registry is not None:
            histogram = registry.histogram(
                "nautilus_phase_seconds",
                "Wall-clock seconds per generation phase.",
                labelnames=("phase",),
            )
            for label, seconds in phases.items():
                histogram.observe(seconds, phase=label)

    def _materialize_eval_spans(self, batch_span) -> None:
        """Stitch fleet task timelines and cache writes into the batch span.

        The coordinator reports each task's dispatch/retry/completion as
        *offsets relative to batch submission* (worker and coordinator
        clocks share no epoch with ours); anchoring those offsets at the
        batch span's start and clamping into its window guarantees child
        durations never exceed their parent. Retries and first-result-wins
        duplicates become children/attributes of the one owning task span.
        """
        tr = self._tracer
        lo, hi = batch_span.start_s, batch_span.end_s

        def _at(offset) -> float:
            return min(max(lo + float(offset), lo), hi)

        pop_traces = getattr(self._counter, "pop_task_traces", None)
        for trace in pop_traces() if pop_traces is not None else ():
            events = trace.get("events") or []
            first = events[0]["offset_s"] if events else 0.0
            last = events[-1]["offset_s"] if events else 0.0
            task_span = tr.record(
                "task",
                _at(first),
                _at(last),
                parent=batch_span,
                task=trace.get("task", ""),
                worker=trace.get("worker", ""),
                attempts=int(trace.get("attempts", 1)),
                duplicate_results=int(trace.get("duplicates", 0)),
            )
            for i, event in enumerate(events):
                kind = event.get("event")
                start = _at(event.get("offset_s", 0.0))
                nxt = (
                    _at(events[i + 1].get("offset_s", 0.0))
                    if i + 1 < len(events)
                    else task_span.end_s
                )
                if kind == "dispatch":
                    tr.record(
                        "dispatch", start, nxt, parent=task_span,
                        worker=event.get("worker", ""),
                    )
                elif kind == "retry":
                    tr.record(
                        "retry", start, nxt, parent=task_span,
                        worker=event.get("worker", ""),
                        reason=event.get("reason", ""),
                    )
                elif kind == "done":
                    exec_s = float(event.get("exec_s", 0.0))
                    tr.record(
                        "worker-exec",
                        max(start - exec_s, lo),
                        start,
                        parent=task_span,
                        worker=event.get("worker", ""),
                        queue_s=float(event.get("queue_s", 0.0)),
                        exec_s=exec_s,
                    )
        pop_writes = getattr(self._counter, "pop_cache_writes", None)
        for write in pop_writes() if pop_writes is not None else ():
            duration = max(float(write.get("duration_s", 0.0)), 0.0)
            tr.record(
                "cache-write",
                max(hi - duration, lo),
                hi,
                parent=batch_span,
                entries=int(write.get("entries", 0)),
            )

    # -- observability (see repro.obs; read-only w.r.t. the RNG streams) ---------

    def _emit_attribution(self, generation: int, offspring: Sequence[Any]) -> None:
        """One ``hint-attribution`` event joining breeding provenance with
        the offspring's freshly computed scores."""
        observer = self._breeding_observer()
        if observer is None or not self.observability:
            return
        children = observer.drain()
        confidence, hinted, importance = self._attribution_context(generation)
        payload = summarize_generation(
            children,
            self._offspring_attribution(offspring),
            confidence=confidence,
            hinted=hinted,
            effective_importance=importance,
        )
        if payload is not None:
            self._trace.emit("hint-attribution", generation, payload)

    def _emit_health(self, generation: int) -> None:
        """One ``health`` event summarizing the surviving population."""
        if not self.observability or not self._population:
            return
        batch_size, batch_infeasible = self._last_batch
        payload = population_health(
            [getattr(ind, "genome", ind) for ind in self._population],
            cardinalities={p.name: p.cardinality for p in self.space.params},
            best_history=list(self._best_window),
            stalled_generations=self._stalled_generations,
            stall_patience=self.stall_generations,
            batch_size=batch_size,
            batch_infeasible=batch_infeasible,
        )
        self.latest_health = payload
        self._trace.emit("health", generation, payload)

    def _breeding_observer(self):
        """The engine's breeding observer, when attribution is wired up."""
        operators = getattr(self, "operators", None)
        return getattr(operators, "observer", None)

    def _offspring_attribution(
        self, offspring: Sequence[Any]
    ) -> list[tuple[float, bool]]:
        """Aligned ``(score, feasible)`` per *bred* child, breeding order."""
        return []

    def _attribution_context(
        self, generation: int
    ) -> tuple[float, bool, dict[str, float]]:
        """(confidence, hinted, effective importance) for the event.

        Read straight off the generation's :class:`GuidanceState` — the
        same channel provenance the operators acted on — rather than
        recomputed from a hint set.
        """
        state = self._guidance_state
        if state is None or state.hints is None:
            return 0.0, False, {}
        return state.confidence, True, dict(state.effective_importance)

    # -- hooks -------------------------------------------------------------------

    def _guidance_feedback(self) -> float | None:
        """Best score of the incoming population, fed to the provider's
        ``advance``; None when the engine has no scalar notion of best."""
        return None

    def _initial_genomes(self) -> list[Genome]:
        """The generation-0 population (draws from the ``init`` stream)."""
        raise NotImplementedError  # pragma: no cover - abstract

    def _propose(
        self, generation: int, timings: dict[str, list[float]]
    ) -> list[Genome]:
        """Breed the next generation's genomes (per-operator timings out)."""
        raise NotImplementedError  # pragma: no cover - abstract

    def _to_individuals(self, genomes: Sequence[Genome], outcomes: Sequence[Any]):
        """Convert raw evaluation outcomes into the engine's individuals.

        Engines may return any sequence; single-objective engines return a
        columnar :class:`~repro.core.population.Population` so the selection
        strategies can read cached score columns in the breeding hot loop.
        """
        raise NotImplementedError  # pragma: no cover - abstract

    def _survivors(self, offspring):
        """Environmental selection: the population after this generation."""
        return offspring

    def _observe_start(self) -> None:
        """Initialize best-so-far tracking from the initial population."""
        raise NotImplementedError  # pragma: no cover - abstract

    def _observe(self, generation: int) -> bool:
        """Update best-so-far from the new population; True if improved."""
        raise NotImplementedError  # pragma: no cover - abstract

    def _make_record(self, generation: int) -> GenerationRecord:
        """Summarize the current population into a record."""
        raise NotImplementedError  # pragma: no cover - abstract
