"""Genomes — concrete design points in an IP design space.

A :class:`Genome` is an immutable assignment of one domain value per
parameter of a :class:`~repro.core.space.DesignSpace`. Genomes are hashable
so evaluation caches can count *distinct* design points — the cost metric
the paper reports on every x-axis ("# designs evaluated").
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping, TYPE_CHECKING

from .errors import GenomeError

if TYPE_CHECKING:  # pragma: no cover
    from .space import DesignSpace

__all__ = ["Genome"]


class Genome(Mapping[str, Any]):
    """An immutable mapping of parameter name to value, bound to a space."""

    __slots__ = ("_space", "_values", "_key")

    def __init__(self, space: "DesignSpace", values: Mapping[str, Any]):
        extra = set(values) - set(space.param_names)
        if extra:
            raise GenomeError(f"unknown parameters in genome: {sorted(extra)}")
        missing = set(space.param_names) - set(values)
        if missing:
            raise GenomeError(f"genome missing parameters: {sorted(missing)}")
        frozen = []
        for param in space.params:
            value = values[param.name]
            if not param.contains(value):
                raise GenomeError(
                    f"value {value!r} not in domain of parameter {param.name!r}"
                )
            frozen.append(value)
        self._space = space
        self._values = tuple(frozen)
        self._key = (space.name, self._values_key())

    def _values_key(self) -> tuple:
        return tuple(
            tuple(v) if isinstance(v, list) else v for v in self._values
        )

    # -- Mapping interface ---------------------------------------------------

    def __getitem__(self, name: str) -> Any:
        try:
            return self._values[self._space.param_index(name)]
        except KeyError:
            raise KeyError(name) from None

    def __iter__(self) -> Iterator[str]:
        return iter(self._space.param_names)

    def __len__(self) -> int:
        return len(self._values)

    # -- identity ------------------------------------------------------------

    @property
    def space(self) -> "DesignSpace":
        """The design space this genome belongs to."""
        return self._space

    @property
    def key(self) -> tuple:
        """A hashable identity usable as a cache key across equal spaces."""
        return self._key

    def __hash__(self) -> int:
        return hash(self._key)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Genome):
            return NotImplemented
        return self._key == other._key

    # -- derivation ----------------------------------------------------------

    def replace(self, **changes: Any) -> "Genome":
        """Return a new genome with some parameter values changed."""
        values = dict(self.as_dict())
        values.update(changes)
        return Genome(self._space, values)

    def as_dict(self) -> dict[str, Any]:
        """Return the genome as a plain ``{name: value}`` dict."""
        return dict(zip(self._space.param_names, self._values))

    def index_vector(self) -> tuple[int, ...]:
        """Return the genome as ordinal indices into each parameter domain."""
        return tuple(
            param.index_of(value)
            for param, value in zip(self._space.params, self._values)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        assigns = ", ".join(f"{k}={v!r}" for k, v in self.as_dict().items())
        return f"Genome({assigns})"
