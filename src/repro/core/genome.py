"""Genomes — concrete design points in an IP design space.

A :class:`Genome` is an immutable assignment of one domain value per
parameter of a :class:`~repro.core.space.DesignSpace`. Genomes are hashable
so evaluation caches can count *distinct* design points — the cost metric
the paper reports on every x-axis ("# designs evaluated").

Internally a genome is a *code vector*: one ordinal domain index per
parameter, encoded through the space's
:class:`~repro.core.codec.SpaceCodec`. Values, the mapping interface and the
cache key are lazily-decoded views over the codes. Two construction paths:

* ``Genome(space, values)`` — the validating boundary: encodes a
  ``{name: value}`` mapping, raising :class:`GenomeError` for unknown /
  missing parameters and out-of-domain values.
* :meth:`Genome.from_codes` — the trusted fast path the genetic operators
  use: a code vector produced by the codec (crossover recombines codes,
  mutation steps them) is in-domain by construction, so no re-validation
  happens. Never hand this untrusted indices; range-check them first
  (see :meth:`~repro.core.space.DesignSpace.genome_from_indices`).
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping, TYPE_CHECKING

from .errors import GenomeError  # noqa: F401  (re-exported for callers)

if TYPE_CHECKING:  # pragma: no cover
    from .space import DesignSpace

__all__ = ["Genome"]


class Genome(Mapping[str, Any]):
    """An immutable mapping of parameter name to value, bound to a space."""

    __slots__ = ("_space", "_codes", "_values", "_key")

    def __init__(self, space: "DesignSpace", values: Mapping[str, Any]):
        self._space = space
        self._codes = space.codec.encode_mapping(values)
        self._values = None
        self._key = None

    @classmethod
    def from_codes(cls, space: "DesignSpace", codes: tuple[int, ...]) -> "Genome":
        """Trusted fast path: wrap an already-valid code vector, unvalidated."""
        genome = object.__new__(cls)
        genome._space = space
        genome._codes = codes
        genome._values = None
        genome._key = None
        return genome

    # -- lazy decode ---------------------------------------------------------

    def _decoded(self) -> tuple:
        values = self._values
        if values is None:
            values = self._values = self._space.codec.decode(self._codes)
        return values

    def _values_key(self) -> tuple:
        # The codec's frozen tables yield exactly the canonical
        # repro.core.params.values_key of the decoded values.
        return self._space.codec.values_key(self._codes)

    # -- Mapping interface ---------------------------------------------------

    def __getitem__(self, name: str) -> Any:
        try:
            pos = self._space.codec.positions[name]
        except KeyError:
            raise KeyError(name) from None
        values = self._values
        if values is None:
            values = self._decoded()
        return values[pos]

    def __iter__(self) -> Iterator[str]:
        return iter(self._space.codec.names)

    def __len__(self) -> int:
        return len(self._codes)

    # -- identity ------------------------------------------------------------

    @property
    def space(self) -> "DesignSpace":
        """The design space this genome belongs to."""
        return self._space

    @property
    def codes(self) -> tuple[int, ...]:
        """The ordinal code vector (one domain index per parameter)."""
        return self._codes

    @property
    def key(self) -> tuple:
        """A hashable identity usable as a cache key across equal spaces."""
        key = self._key
        if key is None:
            key = self._key = (
                self._space.name,
                self._space.codec.values_key(self._codes),
            )
        return key

    def __hash__(self) -> int:
        return hash(self.key)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Genome):
            return NotImplemented
        if self._space is other._space:
            return self._codes == other._codes
        return self.key == other.key

    # -- derivation ----------------------------------------------------------

    def replace(self, **changes: Any) -> "Genome":
        """Return a new genome with some parameter values changed.

        Only the changed parameters are validated/encoded; the untouched
        genes keep their codes without re-validation.
        """
        return Genome.from_codes(
            self._space, self._space.codec.recode(self._codes, changes)
        )

    def as_dict(self) -> dict[str, Any]:
        """Return the genome as a plain ``{name: value}`` dict."""
        return dict(zip(self._space.codec.names, self._decoded()))

    def index_vector(self) -> tuple[int, ...]:
        """Return the genome as ordinal indices into each parameter domain."""
        return self._codes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        assigns = ", ".join(f"{k}={v!r}" for k, v in self.as_dict().items())
        return f"Genome({assigns})"
