"""Design spaces — the cartesian product of an IP generator's parameters.

A :class:`DesignSpace` owns an ordered list of :class:`~repro.core.params.Param`
objects plus optional *structural constraints* (predicates over a config dict)
that carve infeasible combinations out of the product space. The paper's
Section 3 notes Nautilus must stay robust under "sparsely populated design
spaces that include infeasible points or regions"; constraints here model the
statically-known part of that sparsity, while evaluators may still raise
:class:`~repro.core.errors.InfeasibleDesignError` for points only discovered
to be unbuildable at generation time.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

from .codec import SpaceCodec
from .errors import SpaceError
from .genome import Genome
from .params import Param

__all__ = ["DesignSpace", "Constraint"]

#: A structural constraint: returns True when the configuration is feasible.
Constraint = Callable[[Mapping[str, Any]], bool]

_MAX_SAMPLING_ATTEMPTS = 10_000


class DesignSpace:
    """An ordered collection of parameters with optional constraints.

    Args:
        name: A short identifier used in genome cache keys and datasets.
        params: The parameters, in a stable order.
        constraints: Structural feasibility predicates. A genome is feasible
            only if *all* predicates return True on its config dict.
    """

    def __init__(
        self,
        name: str,
        params: Sequence[Param],
        constraints: Iterable[Constraint] = (),
    ):
        if not params:
            raise SpaceError(f"design space {name!r} has no parameters")
        names = [p.name for p in params]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise SpaceError(f"design space {name!r} has duplicate parameters: {dupes}")
        self.name = name
        self.params: tuple[Param, ...] = tuple(params)
        self.constraints: tuple[Constraint, ...] = tuple(constraints)
        self._name_to_pos = {p.name: i for i, p in enumerate(self.params)}
        #: Precomputed ordinal encode/decode tables (see repro.core.codec).
        #: Built eagerly — params and constraints are immutable after this
        #: point, so the codec shares the space's lifetime.
        self.codec = SpaceCodec(self)

    # -- parameter lookup -----------------------------------------------------

    @property
    def param_names(self) -> tuple[str, ...]:
        """Parameter names in declaration order."""
        return tuple(p.name for p in self.params)

    def param(self, name: str) -> Param:
        """Return the parameter named ``name``."""
        try:
            return self.params[self._name_to_pos[name]]
        except KeyError:
            raise SpaceError(f"no parameter {name!r} in design space {self.name!r}") from None

    def param_index(self, name: str) -> int:
        """Return the declaration position of parameter ``name``."""
        try:
            return self._name_to_pos[name]
        except KeyError:
            raise KeyError(name) from None

    def __contains__(self, name: object) -> bool:
        return name in self._name_to_pos

    # -- size -------------------------------------------------------------------

    def size(self) -> int:
        """Total number of points in the *unconstrained* product space."""
        total = 1
        for p in self.params:
            total *= p.cardinality
        return total

    def feasible_size(self) -> int:
        """Number of structurally feasible points (enumerates the space)."""
        if not self.constraints:
            return self.size()
        return sum(1 for _ in self.iter_genomes())

    # -- construction of genomes -------------------------------------------------

    def genome(self, values: Mapping[str, Any] | None = None, **kwargs: Any) -> Genome:
        """Build a genome from a mapping and/or keyword arguments."""
        merged: dict[str, Any] = dict(values or {})
        merged.update(kwargs)
        return Genome(self, merged)

    def genome_from_indices(self, indices: Sequence[int]) -> Genome:
        """Build a genome from ordinal indices into each parameter domain.

        Indices are range-checked (this is a trust boundary — checkpoints
        and external callers come through here), then wrapped via the
        codec's trusted fast path.
        """
        if len(indices) != len(self.params):
            raise SpaceError(
                f"expected {len(self.params)} indices, got {len(indices)}"
            )
        for p, i in zip(self.params, indices):
            p.value_at(i)  # raises ParameterError on out-of-range indices
        return Genome.from_codes(self, tuple(int(i) for i in indices))

    def is_feasible(self, genome: Genome | Mapping[str, Any]) -> bool:
        """Whether a config satisfies all structural constraints.

        A :class:`Genome` is passed to the constraint predicates directly
        (it is a Mapping; values decode lazily) — no intermediate dict.
        """
        if not self.constraints:
            return True
        config = genome if isinstance(genome, Genome) else dict(genome)
        return all(constraint(config) for constraint in self.constraints)

    def random_genome(self, rng: random.Random) -> Genome:
        """Draw a uniform random *feasible* genome by rejection sampling."""
        codec = self.codec
        for _ in range(_MAX_SAMPLING_ATTEMPTS):
            # One randrange per parameter — the same draws (count, order,
            # arguments) Param.random_value consumed historically.
            codes = codec.random_codes(rng)
            if codec.is_feasible_codes(codes):
                return Genome.from_codes(self, codes)
        raise SpaceError(
            f"could not sample a feasible point from {self.name!r} after "
            f"{_MAX_SAMPLING_ATTEMPTS} attempts; the space may be empty"
        )

    def random_population(self, count: int, rng: random.Random) -> list[Genome]:
        """Draw ``count`` feasible genomes, distinct when the space allows it."""
        population: list[Genome] = []
        seen: set[tuple] = set()
        attempts = 0
        while len(population) < count and attempts < _MAX_SAMPLING_ATTEMPTS:
            attempts += 1
            genome = self.random_genome(rng)
            if genome.codes in seen:
                continue
            seen.add(genome.codes)
            population.append(genome)
        while len(population) < count:
            # The space is smaller than the population; allow duplicates.
            population.append(self.random_genome(rng))
        return population

    # -- enumeration -------------------------------------------------------------

    def iter_genomes(self) -> Iterator[Genome]:
        """Yield every structurally feasible genome (in lexicographic order)."""
        codec = self.codec
        for codes in codec.iter_codes():
            if codec.is_feasible_codes(codes):
                yield Genome.from_codes(self, codes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DesignSpace({self.name!r}, {len(self.params)} params, "
            f"{self.size()} points)"
        )
