"""Composite-metric expressions: ``"throughput_msps / luts"`` as a fitness.

The paper stresses that fitness can be "a custom-defined composite function
that can combine these metrics in arbitrary ways" (Section 2). This module
gives that power to CLI users and config files through a tiny, safe
arithmetic language over metric names:

* numbers, metric identifiers, ``+ - * /``, unary minus, parentheses;
* no function calls, no attribute access, no Python evaluation — a
  hand-rolled recursive-descent parser over a strict token set, so a hint
  file can never smuggle code;
* unknown metrics fail at *evaluation* time with the metric name in the
  error (evaluators differ in what they produce).

Example::

    objective = objective_from_expression("fmax_mhz / (luts + 2 * dsps)", "max")
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable

from .errors import EvaluationError
from .fitness import Metrics, Objective

__all__ = ["parse_expression", "objective_from_expression", "ExpressionError"]


class ExpressionError(EvaluationError):
    """The expression text is malformed."""


_TOKEN = re.compile(
    r"\s*(?:(?P<number>\d+(?:\.\d+)?)|(?P<name>[A-Za-z_][A-Za-z0-9_]*)"
    r"|(?P<op>[-+*/()]))"
)


def _tokenize(text: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    position = 0
    while position < len(text):
        match = _TOKEN.match(text, position)
        if match is None or match.end() == position:
            raise ExpressionError(
                f"unexpected character {text[position]!r} at column {position}"
            )
        position = match.end()
        for kind in ("number", "name", "op"):
            value = match.group(kind)
            if value is not None:
                tokens.append((kind, value))
                break
    return tokens


@dataclass(frozen=True)
class _Node:
    kind: str  # "num" | "name" | "binop" | "neg"
    value: float | str = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None


class _Parser:
    """Recursive descent: expr := term (('+'|'-') term)*; term := factor
    (('*'|'/') factor)*; factor := number | name | '-' factor | '(' expr ')'."""

    def __init__(self, tokens: list[tuple[str, str]]):
        self.tokens = tokens
        self.position = 0

    def peek(self) -> tuple[str, str] | None:
        if self.position < len(self.tokens):
            return self.tokens[self.position]
        return None

    def take(self) -> tuple[str, str]:
        token = self.peek()
        if token is None:
            raise ExpressionError("unexpected end of expression")
        self.position += 1
        return token

    def parse(self) -> _Node:
        node = self.expr()
        if self.peek() is not None:
            raise ExpressionError(
                f"unexpected trailing token {self.peek()[1]!r}"
            )
        return node

    def expr(self) -> _Node:
        node = self.term()
        while self.peek() and self.peek()[1] in ("+", "-"):
            op = self.take()[1]
            node = _Node("binop", op, node, self.term())
        return node

    def term(self) -> _Node:
        node = self.factor()
        while self.peek() and self.peek()[1] in ("*", "/"):
            op = self.take()[1]
            node = _Node("binop", op, node, self.factor())
        return node

    def factor(self) -> _Node:
        kind, value = self.take()
        if kind == "number":
            return _Node("num", float(value))
        if kind == "name":
            return _Node("name", value)
        if value == "-":
            return _Node("neg", left=self.factor())
        if value == "(":
            node = self.expr()
            closing = self.take()
            if closing[1] != ")":
                raise ExpressionError(f"expected ')', got {closing[1]!r}")
            return node
        raise ExpressionError(f"unexpected token {value!r}")


def _evaluate(node: _Node, metrics: Metrics) -> float:
    if node.kind == "num":
        return float(node.value)
    if node.kind == "name":
        try:
            return float(metrics[node.value])
        except KeyError:
            raise EvaluationError(
                f"expression refers to unknown metric {node.value!r}; "
                f"available: {sorted(metrics)}"
            ) from None
    if node.kind == "neg":
        return -_evaluate(node.left, metrics)
    left = _evaluate(node.left, metrics)
    right = _evaluate(node.right, metrics)
    if node.value == "+":
        return left + right
    if node.value == "-":
        return left - right
    if node.value == "*":
        return left * right
    if right == 0.0:
        raise EvaluationError(
            "composite expression divided by zero (metric value was 0)"
        )
    return left / right


def parse_expression(text: str) -> Callable[[Metrics], float]:
    """Compile an expression into a ``metrics -> float`` callable."""
    if not text or not text.strip():
        raise ExpressionError("empty expression")
    tree = _Parser(_tokenize(text)).parse()
    return lambda metrics: _evaluate(tree, metrics)


def objective_from_expression(
    text: str, direction: str = "max", name: str | None = None
) -> Objective:
    """Build an :class:`Objective` from an expression string.

    Plain metric names pass straight through (cheap lookup path); anything
    with operators compiles through the parser.
    """
    stripped = text.strip()
    if re.fullmatch(r"[A-Za-z_][A-Za-z0-9_]*", stripped):
        return Objective(stripped, direction, name=name)
    return Objective(
        parse_expression(stripped), direction, name=name or stripped
    )
