"""Search engines: the baseline generational GA, the Nautilus guided GA, and
a random-sampling baseline.

The two GAs share one implementation — :class:`GeneticSearch` — because the
paper's Nautilus *is* the baseline GA with hint-aware operators swapped in;
passing ``hints=None`` yields exactly the baseline behaviour. Configuration
defaults follow Section 4.1: population 10, per-gene mutation rate 0.1,
80 generations.

Both engines are thin strategies over the shared
:class:`~repro.core.kernel.SearchKernel`: the kernel owns lifecycle
(start/step/finished/stop_reason with the budget → horizon → stall
precedence), the named RNG streams, and the structured
:class:`~repro.core.kernel.RunEvent` trace; :class:`GeneticSearch` only
declares its operator pipeline (select → crossover → mutate) and survivor
rule, and :class:`RandomSearch` its draw loop.

Cost accounting: every engine pulls evaluations through an
:class:`~repro.core.evalstack.EvaluationStack`, so result curves are
expressed in *distinct designs evaluated* (synthesis jobs) — the x-axis of
Figures 4-7. Passing a pre-built stack as the ``evaluator`` lets callers
share layers across runs (the service shares a persistent on-disk cache
between campaigns this way); a bare evaluator is wrapped in a fresh
memo-only stack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ..obs.attribution import BreedingObserver
from .errors import InfeasibleDesignError, NautilusError
from .evaluator import Evaluator
from .fitness import Objective
from .genome import Genome
from .guidance import GuidanceProvider, StaticHints
from .hints import HintSet
from .kernel import (
    GenerationalEngine,
    GenerationRecord,
    SearchKernel,
    SearchResult,
)
from .operators import (
    BreedingPipeline,
    GeneticOperators,
    single_point_crossover,
    two_point_crossover,
    uniform_crossover,
)
from .population import Population
from .selection import SELECTION_STRATEGIES, Individual
from .space import DesignSpace

__all__ = [
    "GAConfig",
    "GenerationRecord",
    "SearchResult",
    "GeneticSearch",
    "RandomSearch",
    "exhaustive_best",
]

_CROSSOVERS = {
    "uniform": uniform_crossover,
    "single_point": single_point_crossover,
    "two_point": two_point_crossover,
}

_RNG_STREAM_MODES = ("shared", "split")


@dataclass(frozen=True)
class GAConfig:
    """Hyper-parameters of the generational GA (paper Section 4.1 defaults).

    Attributes:
        population_size: Individuals per generation (paper: 10).
        generations: Number of generations to run (paper: 80).
        mutation_rate: Per-gene mutation probability (paper: 0.1).
        crossover_rate: Probability an offspring is bred from two parents
            rather than cloned from one.
        crossover: ``"uniform"``, ``"single_point"`` or ``"two_point"``.
            Default follows the PyEvolve defaults the paper built on.
        selection: ``"rank"``, ``"tournament"`` or ``"roulette"``
            (PyEvolve-style default).
        elitism: Number of top individuals copied unchanged into the next
            generation (keeps the best-of-population curve monotone).
        seed: RNG seed; ``None`` draws from the global entropy pool.
            ``0`` is a real seed.
        max_evaluations: Optional hard budget of *distinct* designs
            evaluated (synthesis jobs). The run stops at the end of the
            first generation that exhausts it — the natural stopping rule
            when each evaluation costs CAD-tool hours.
        stall_generations: Optional early-stopping patience: stop after
            this many consecutive generations without best-so-far
            improvement. ``None`` (default) always runs the full horizon,
            as the paper's experiments do.
        rng_streams: ``"shared"`` (default) draws init/selection/crossover/
            mutation from one seeded generator — bit-identical to the
            historical single-RNG engines, which is what the engine-parity
            CI baseline pins. ``"split"`` derives an independent named
            stream per concern from the same seed, so adding draws to one
            operator never perturbs another's sequence (at the cost of
            changing seeded curves relative to the shared mode).
        observability: Emit per-generation ``hint-attribution`` and
            ``health`` trace events (see :mod:`repro.obs`). On by default;
            the telemetry is derived from already-computed state and
            consumes no RNG draws, so seeded curves are identical with it
            on or off — disabling merely slims the trace.
        tracing: Record a span tree for the run (see
            :mod:`repro.obs.tracing`): run → generation → phase →
            eval-batch → task, plus a per-generation ``phase-budget``
            event. Off by default. Same guarantee as observability: span
            ids come from counters, not RNG, so seeded curves are
            bit-identical with tracing on or off.
        warm_start: Known-good configurations (``{param: value}``
            mappings, best first — typically
            :meth:`~repro.archive.DesignArchive.warm_start_configs`)
            injected into the initial population. The full random
            population is drawn exactly as without seeds and the seeds
            then *replace* a prefix of it, so RNG consumption is
            identical either way: an empty tuple is bit-identical to
            today's engine-parity baseline. Seeds go through the
            validating codec path; infeasible or duplicate entries are
            dropped. At most ``population_size`` seeds (leave slack below
            that to retain random diversity).

    Stopping precedence: cutoffs are evaluated between generations, in a
    fixed order — evaluation budget, then generation horizon, then stall
    patience. When several cutoffs trigger on the same generation the first
    in that order wins and becomes ``SearchResult.stop_reason`` (so a run
    that exhausts ``max_evaluations`` on the exact generation its stall
    patience runs out always reports ``"budget"``, deterministically). The
    produced records are identical regardless of which cutoff fired.
    """

    population_size: int = 10
    generations: int = 80
    mutation_rate: float = 0.1
    crossover_rate: float = 0.9
    crossover: str = "single_point"
    selection: str = "roulette"
    elitism: int = 1
    seed: int | None = None
    max_evaluations: int | None = None
    stall_generations: int | None = None
    rng_streams: str = "shared"
    observability: bool = True
    tracing: bool = False
    warm_start: tuple = ()

    def __post_init__(self) -> None:
        if self.population_size < 2:
            raise NautilusError("population_size must be >= 2")
        if self.generations < 1:
            raise NautilusError("generations must be >= 1")
        if not 0.0 <= self.crossover_rate <= 1.0:
            raise NautilusError("crossover_rate must be in [0, 1]")
        if self.elitism < 0 or self.elitism >= self.population_size:
            raise NautilusError("elitism must be in [0, population_size)")
        if self.crossover not in _CROSSOVERS:
            raise NautilusError(f"unknown crossover {self.crossover!r}")
        if self.selection not in SELECTION_STRATEGIES:
            raise NautilusError(f"unknown selection {self.selection!r}")
        if self.max_evaluations is not None and self.max_evaluations < 1:
            raise NautilusError("max_evaluations must be >= 1")
        if self.stall_generations is not None and self.stall_generations < 1:
            raise NautilusError("stall_generations must be >= 1")
        if self.rng_streams not in _RNG_STREAM_MODES:
            raise NautilusError(f"unknown rng_streams mode {self.rng_streams!r}")
        if self.warm_start:
            seeds = []
            for entry in self.warm_start:
                if not isinstance(entry, Mapping):
                    raise NautilusError(
                        "warm_start entries must be {param: value} mappings"
                    )
                seeds.append(dict(entry))
            if len(seeds) > self.population_size:
                raise NautilusError(
                    "warm_start cannot carry more seeds than population_size"
                )
            object.__setattr__(self, "warm_start", tuple(seeds))
        elif self.warm_start != ():
            object.__setattr__(self, "warm_start", ())


class GeneticSearch(GenerationalEngine):
    """The generational GA engine (baseline when ``hints is None``).

    The engine exposes an *incremental* API so external schedulers (see
    :mod:`repro.service`) can interleave generations from many concurrent
    searches: :meth:`start` evaluates the initial population and returns the
    generation-0 record, each :meth:`step` advances exactly one generation
    and returns its record (or ``None`` once a cutoff fires), and
    :meth:`result` packages the state reached so far. :meth:`run` is a thin
    loop over those three calls, so stepping a search one generation at a
    time — even interleaved with other searches — produces bit-identical
    results to a blocking ``run()``.

    Args:
        space: Design space to search.
        evaluator: Metric source for design points — either a bare
            :class:`~repro.core.evaluator.Evaluator` (wrapped in a fresh
            :class:`~repro.core.evalstack.EvaluationStack` internally) or a
            pre-built stack to share caches/backends with other runs.
        objective: What to optimize.
        config: GA hyper-parameters.
        hints: IP-author hints; ``None`` gives the paper's baseline GA.
            Shorthand for ``guidance=StaticHints(hints)``.
        label: Free-form label carried into the result (for plots).
        guidance: A :class:`~repro.core.guidance.GuidanceProvider` steering
            the operators generation by generation. Mutually exclusive with
            ``hints``.
    """

    def __init__(
        self,
        space: DesignSpace,
        evaluator: Evaluator,
        objective: Objective,
        config: GAConfig | None = None,
        hints: HintSet | None = None,
        label: str = "",
        guidance: GuidanceProvider | None = None,
        clock=None,
    ):
        if hints is not None and guidance is not None:
            raise NautilusError(
                "pass either hints or a guidance provider, not both"
            )
        self.config = config or GAConfig()
        guided = hints is not None or guidance is not None
        super().__init__(
            space,
            evaluator,
            objective,
            label=label or ("nautilus" if guided else "baseline"),
            seed=self.config.seed,
            max_evaluations=self.config.max_evaluations,
            horizon=self.config.generations,
            stall_generations=self.config.stall_generations,
            split_rngs=self.config.rng_streams == "split",
            observability=self.config.observability,
            tracing=self.config.tracing,
            clock=clock,
        )
        provider = guidance if guidance is not None else (
            StaticHints(hints) if hints is not None else None
        )
        if provider is not None:
            # Binding validates the hints against the space and orients
            # author biases (stated w.r.t. the raw metric) for minimization.
            provider.bind(space, objective, self._counter)
        self._guidance = provider
        #: Archived seeds actually injected into generation 0 (stays 0 on a
        #: cold start *and* on a checkpoint resume, which never re-seeds).
        self.warm_start_seeds = 0
        self.operators = GeneticOperators(space, self.config.mutation_rate)
        if self.config.observability:
            self.operators.observer = BreedingObserver()
        self.pipeline = BreedingPipeline(
            space,
            self.operators,
            SELECTION_STRATEGIES[self.config.selection],
            _CROSSOVERS[self.config.crossover],
            self.config.crossover_rate,
            clock=self._clock,
        )

    @property
    def hints(self) -> HintSet | None:
        """The oriented hint set in force, or None on an unguided run."""
        return self._guidance.hints if self._guidance is not None else None

    # -- scoring ------------------------------------------------------------------

    def _assess(self, genome: Genome) -> Individual:
        try:
            metrics = self._counter.evaluate(genome)
        except InfeasibleDesignError:
            return Individual(genome, float("-inf"), float("nan"))
        return Individual(
            genome, self.objective.score(metrics), self.objective.raw(metrics)
        )

    def _assess_all(self, genomes: Sequence[Genome]) -> Population[Individual]:
        """Score genomes as one batch, outside the kernel's traced path."""
        return self._to_individuals(genomes, self._counter.evaluate_many(genomes))

    def _to_individuals(
        self, genomes: Sequence[Genome], outcomes: Sequence
    ) -> Population[Individual]:
        individuals = []
        for genome, outcome in zip(genomes, outcomes):
            if isinstance(outcome, InfeasibleDesignError):
                individuals.append(Individual(genome, float("-inf"), float("nan")))
            elif isinstance(outcome, Exception):
                raise outcome
            else:
                individuals.append(
                    Individual(
                        genome,
                        self.objective.score(outcome),
                        self.objective.raw(outcome),
                    )
                )
        # Columnar wrapper: selection strategies read the cached score
        # column; every list-style consumer (elites, records, checkpoints)
        # sees an unchanged Sequence.
        return Population(individuals)

    # -- kernel hooks --------------------------------------------------------------

    def _initial_genomes(self) -> list[Genome]:
        genomes = self.space.random_population(
            self.config.population_size, self.rngs.init
        )
        # Warm-start seeds replace a prefix *after* the full random draw,
        # so RNG consumption is identical with or without seeds — an empty
        # warm_start stays bit-identical to the engine-parity baseline.
        seeds = self._warm_start_genomes()
        for position, seed in enumerate(seeds):
            genomes[position] = seed
        self.warm_start_seeds = len(seeds)
        return genomes

    def _warm_start_genomes(self) -> list[Genome]:
        seeds: list[Genome] = []
        seen: set[tuple[int, ...]] = set()
        for config in self.config.warm_start:
            genome = self.space.genome(config)  # validating codec path
            if genome.codes in seen or not self.space.is_feasible(genome):
                continue
            seen.add(genome.codes)
            seeds.append(genome)
        return seeds

    def _guidance_feedback(self) -> float | None:
        if not self._population:
            return None
        return max(ind.score for ind in self._population)

    def _propose(
        self, generation: int, timings: dict[str, list[float]]
    ) -> list[Genome]:
        cfg = self.config
        elites = sorted(self._population, key=lambda i: i.score, reverse=True)
        genomes = [e.genome for e in elites[: cfg.elitism]]
        while len(genomes) < cfg.population_size:
            genomes.append(
                self.pipeline.breed(
                    self._population, self._guidance_state, self.rngs, timings
                )
            )
        return genomes

    def _offspring_attribution(self, offspring) -> list:
        # The first ``elitism`` offspring are copied elites, not bred —
        # attribution aligns with the children the pipeline produced.
        bred = offspring[self.config.elitism:]
        return [
            (ind.score, ind.score != float("-inf")) for ind in bred
        ]

    def _observe_start(self) -> None:
        self._best = max(self._population, key=lambda ind: ind.score)

    def _observe(self, generation: int) -> bool:
        gen_best = max(self._population, key=lambda ind: ind.score)
        if gen_best.score > self._best.score:
            self._best = gen_best
            return True
        return False

    def _make_record(self, generation: int) -> GenerationRecord:
        finite = [i.score for i in self._population if i.score != float("-inf")]
        mean_score = sum(finite) / len(finite) if finite else float("-inf")
        return GenerationRecord(
            generation=generation,
            best_raw=self._best.raw,
            best_score=self._best.score,
            mean_score=mean_score,
            distinct_evaluations=self._counter.distinct_evaluations,
            best_config=self._best.genome.as_dict(),
        )


class RandomSearch(SearchKernel):
    """Uniform random sampling baseline (paper footnote 3).

    Samples feasible points without replacement until the budget is spent,
    recording the best-so-far curve with the same bookkeeping as the GA so
    the two are directly comparable.

    Exposes the same incremental surface as :class:`GeneticSearch`
    (:meth:`start` / :meth:`step` / :meth:`result`), where one step is one
    budget-consuming draw, so the service scheduler can interleave random
    baselines with GA campaigns.
    """

    def __init__(
        self,
        space: DesignSpace,
        evaluator: Evaluator,
        objective: Objective,
        budget: int,
        seed: int | None = None,
        label: str = "random",
        tracing: bool = False,
        clock=None,
    ):
        if budget < 1:
            raise NautilusError("budget must be >= 1")
        super().__init__(
            space, evaluator, objective, label=label, seed=seed,
            tracing=tracing, clock=clock,
        )
        self.budget = budget
        self._draws = 0
        self._attempts = 0
        self._max_attempts = budget * 50

    @property
    def generation(self) -> int:
        """Budget-consuming draws so far (the random analogue of a generation)."""
        return self._draws

    def _do_start(self) -> None:
        """Initialize the RNG stream; random search has no generation 0."""
        return None

    def _do_step(self) -> GenerationRecord | None:
        """Consume budget until one feasible draw lands; return its record.

        Infeasible draws consume budget (the synthesis attempt was paid
        for) but produce no record; the step keeps drawing until a feasible
        design is found or a cutoff fires (``None``: budget spent, or the
        rejection-sampling attempt cap was hit on a near-exhausted space).
        """
        rng = self.rngs.init
        while self._draws < self.budget and self._attempts < self._max_attempts:
            self._attempts += 1
            genome = self.space.random_genome(rng)
            if self._counter.seen(genome):
                continue
            try:
                metrics = self._counter.evaluate(genome)
                individual = Individual(
                    genome,
                    self.objective.score(metrics),
                    self.objective.raw(metrics),
                )
            except InfeasibleDesignError:
                self._draws += 1
                continue
            self._draws += 1
            improved = self._best is None or individual.score > self._best.score
            if improved:
                self._best = individual
            record = GenerationRecord(
                generation=self._draws,
                best_raw=self._best.raw,
                best_score=self._best.score,
                mean_score=self._best.score,
                distinct_evaluations=self._counter.distinct_evaluations,
                best_config=self._best.genome.as_dict(),
            )
            if improved:
                self._trace.emit(
                    "best-improved",
                    self._draws,
                    {"best_raw": record.best_raw, "best_score": record.best_score},
                )
            self._push_record(record)
            return record
        self._finish("budget" if self._draws >= self.budget else "exhausted")
        return None

    def result(self) -> SearchResult:
        if self._best is None:
            raise NautilusError("random search evaluated no feasible design")
        return super().result()


def exhaustive_best(
    space: DesignSpace, evaluator: Evaluator, objective: Objective
) -> Individual:
    """Brute-force the whole space; reference optimum for quality-of-results.

    Only tractable because our substrates replace hours-long synthesis with a
    fast analytical flow; the paper used a 200+ core cluster for the same
    preparatory step.
    """
    best: Individual | None = None
    for genome in space.iter_genomes():
        try:
            metrics = evaluator.evaluate(genome)
        except InfeasibleDesignError:
            continue
        individual = Individual(
            genome, objective.score(metrics), objective.raw(metrics)
        )
        if best is None or individual.score > best.score:
            best = individual
    if best is None:
        raise NautilusError(f"space {space.name!r} has no feasible design")
    return best
