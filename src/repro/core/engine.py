"""Search engines: the baseline generational GA, the Nautilus guided GA, and
a random-sampling baseline.

The two GAs share one implementation — :class:`GeneticSearch` — because the
paper's Nautilus *is* the baseline GA with hint-aware operators swapped in;
passing ``hints=None`` yields exactly the baseline behaviour. Configuration
defaults follow Section 4.1: population 10, per-gene mutation rate 0.1,
80 generations.

Cost accounting: every engine pulls evaluations through an
:class:`~repro.core.evalstack.EvaluationStack`, so result curves are
expressed in *distinct designs evaluated* (synthesis jobs) — the x-axis of
Figures 4-7. Passing a pre-built stack as the ``evaluator`` lets callers
share layers across runs (the service shares a persistent on-disk cache
between campaigns this way); a bare evaluator is wrapped in a fresh
memo-only stack.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Any, Sequence

from .errors import InfeasibleDesignError, NautilusError
from .evalstack import EvalStats, EvaluationStack
from .evaluator import Evaluator
from .fitness import Objective
from .genome import Genome
from .hints import HintSet
from .operators import (
    GeneticOperators,
    single_point_crossover,
    two_point_crossover,
    uniform_crossover,
)
from .selection import SELECTION_STRATEGIES, Individual
from .space import DesignSpace

__all__ = [
    "GAConfig",
    "GenerationRecord",
    "SearchResult",
    "GeneticSearch",
    "RandomSearch",
    "exhaustive_best",
]

_CROSSOVERS = {
    "uniform": uniform_crossover,
    "single_point": single_point_crossover,
    "two_point": two_point_crossover,
}


@dataclass(frozen=True)
class GAConfig:
    """Hyper-parameters of the generational GA (paper Section 4.1 defaults).

    Attributes:
        population_size: Individuals per generation (paper: 10).
        generations: Number of generations to run (paper: 80).
        mutation_rate: Per-gene mutation probability (paper: 0.1).
        crossover_rate: Probability an offspring is bred from two parents
            rather than cloned from one.
        crossover: ``"uniform"``, ``"single_point"`` or ``"two_point"``.
            Default follows the PyEvolve defaults the paper built on.
        selection: ``"rank"``, ``"tournament"`` or ``"roulette"``
            (PyEvolve-style default).
        elitism: Number of top individuals copied unchanged into the next
            generation (keeps the best-of-population curve monotone).
        seed: RNG seed; ``None`` draws from the global entropy pool.
        max_evaluations: Optional hard budget of *distinct* designs
            evaluated (synthesis jobs). The run stops at the end of the
            first generation that exhausts it — the natural stopping rule
            when each evaluation costs CAD-tool hours.
        stall_generations: Optional early-stopping patience: stop after
            this many consecutive generations without best-so-far
            improvement. ``None`` (default) always runs the full horizon,
            as the paper's experiments do.

    Stopping precedence: cutoffs are evaluated between generations, in a
    fixed order — evaluation budget, then generation horizon, then stall
    patience. When several cutoffs trigger on the same generation the first
    in that order wins and becomes ``SearchResult.stop_reason`` (so a run
    that exhausts ``max_evaluations`` on the exact generation its stall
    patience runs out always reports ``"budget"``, deterministically). The
    produced records are identical regardless of which cutoff fired.
    """

    population_size: int = 10
    generations: int = 80
    mutation_rate: float = 0.1
    crossover_rate: float = 0.9
    crossover: str = "single_point"
    selection: str = "roulette"
    elitism: int = 1
    seed: int | None = None
    max_evaluations: int | None = None
    stall_generations: int | None = None

    def __post_init__(self) -> None:
        if self.population_size < 2:
            raise NautilusError("population_size must be >= 2")
        if self.generations < 1:
            raise NautilusError("generations must be >= 1")
        if not 0.0 <= self.crossover_rate <= 1.0:
            raise NautilusError("crossover_rate must be in [0, 1]")
        if self.elitism < 0 or self.elitism >= self.population_size:
            raise NautilusError("elitism must be in [0, population_size)")
        if self.crossover not in _CROSSOVERS:
            raise NautilusError(f"unknown crossover {self.crossover!r}")
        if self.selection not in SELECTION_STRATEGIES:
            raise NautilusError(f"unknown selection {self.selection!r}")
        if self.max_evaluations is not None and self.max_evaluations < 1:
            raise NautilusError("max_evaluations must be >= 1")
        if self.stall_generations is not None and self.stall_generations < 1:
            raise NautilusError("stall_generations must be >= 1")


@dataclass(frozen=True)
class GenerationRecord:
    """Snapshot of the search state after one generation."""

    generation: int
    best_raw: float
    best_score: float
    mean_score: float
    distinct_evaluations: int
    best_config: dict[str, Any] = field(repr=False, default_factory=dict)


class SearchResult:
    """The outcome of one search run.

    The result exposes the two quantities the paper evaluates on (Section 2,
    "Evaluating GAs"): quality of results (best raw metric) and runtime
    measured as the number of distinct designs evaluated.

    ``stop_reason`` records why the search ended: ``"horizon"`` (configured
    generations exhausted), ``"budget"`` (``max_evaluations`` reached),
    ``"stall"`` (``stall_generations`` without improvement), ``"exhausted"``
    (random search ran out of unseen feasible points), or ``"cancelled"``
    (an incremental search was finalized before any cutoff fired).
    """

    def __init__(
        self,
        objective: Objective,
        records: Sequence[GenerationRecord],
        best: Individual,
        distinct_evaluations: int,
        label: str = "",
        stop_reason: str = "horizon",
        eval_stats: EvalStats | None = None,
    ):
        self.objective = objective
        self.records = list(records)
        self.best = best
        self.distinct_evaluations = distinct_evaluations
        self.label = label
        self.stop_reason = stop_reason
        #: Full evaluation-pipeline counters/timers at result time (cache
        #: hits by layer, batch sizes, backend wall time, infeasible rate).
        self.eval_stats = eval_stats or EvalStats()

    @property
    def best_raw(self) -> float:
        """Best raw objective value found."""
        return self.best.raw

    @property
    def best_config(self) -> dict[str, Any]:
        """Parameter assignment of the best design found."""
        return self.best.genome.as_dict()

    def curve(self) -> list[tuple[int, float]]:
        """(distinct evals, best raw so far) after each generation."""
        return [(r.distinct_evaluations, r.best_raw) for r in self.records]

    def generation_curve(self) -> list[tuple[int, float]]:
        """(generation, best raw so far) pairs."""
        return [(r.generation, r.best_raw) for r in self.records]

    def evals_to_reach(self, threshold: float) -> int | None:
        """Distinct evaluations needed to first reach a raw-metric threshold.

        Returns ``None`` if the run never reached it. Direction comes from
        the objective (>= threshold for max, <= for min).
        """
        for record in self.records:
            if math.isnan(record.best_raw):
                continue
            reached = (
                record.best_raw >= threshold
                if self.objective.maximizing
                else record.best_raw <= threshold
            )
            if reached:
                return record.distinct_evaluations
        return None

    def generations_to_reach(self, threshold: float) -> int | None:
        """Generations needed to first reach a raw-metric threshold."""
        for record in self.records:
            if math.isnan(record.best_raw):
                continue
            reached = (
                record.best_raw >= threshold
                if self.objective.maximizing
                else record.best_raw <= threshold
            )
            if reached:
                return record.generation
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SearchResult({self.label or self.objective.name}: "
            f"best={self.best_raw:.4g} after {self.distinct_evaluations} evals)"
        )


class GeneticSearch:
    """The generational GA engine (baseline when ``hints is None``).

    The engine exposes an *incremental* API so external schedulers (see
    :mod:`repro.service`) can interleave generations from many concurrent
    searches: :meth:`start` evaluates the initial population and returns the
    generation-0 record, each :meth:`step` advances exactly one generation
    and returns its record (or ``None`` once a cutoff fires), and
    :meth:`result` packages the state reached so far. :meth:`run` is a thin
    loop over those three calls, so stepping a search one generation at a
    time — even interleaved with other searches — produces bit-identical
    results to a blocking ``run()``.

    Args:
        space: Design space to search.
        evaluator: Metric source for design points — either a bare
            :class:`~repro.core.evaluator.Evaluator` (wrapped in a fresh
            :class:`~repro.core.evalstack.EvaluationStack` internally) or a
            pre-built stack to share caches/backends with other runs.
        objective: What to optimize.
        config: GA hyper-parameters.
        hints: IP-author hints; ``None`` gives the paper's baseline GA.
        label: Free-form label carried into the result (for plots).
    """

    def __init__(
        self,
        space: DesignSpace,
        evaluator: Evaluator,
        objective: Objective,
        config: GAConfig | None = None,
        hints: HintSet | None = None,
        label: str = "",
    ):
        self.space = space
        self.objective = objective
        self.config = config or GAConfig()
        self.label = label or ("nautilus" if hints else "baseline")
        self._counter = EvaluationStack.wrap(evaluator)
        oriented = hints
        if oriented is not None and not objective.maximizing:
            # Authors state bias w.r.t. the raw metric; flip for minimization.
            oriented = oriented.for_minimization()
        self.hints = oriented
        self.operators = GeneticOperators(
            space, self.config.mutation_rate, self.hints
        )
        self._select = SELECTION_STRATEGIES[self.config.selection]
        self._crossover = _CROSSOVERS[self.config.crossover]
        # Incremental-search state (populated by start()/step()).
        self._rng: random.Random | None = None
        self._population: list[Individual] = []
        self._records: list[GenerationRecord] = []
        self._best: Individual | None = None
        self._generation = 0
        self._stalled_generations = 0
        self._stop_reason: str | None = None

    # -- scoring ------------------------------------------------------------------

    def _assess(self, genome: Genome) -> Individual:
        try:
            metrics = self._counter.evaluate(genome)
        except InfeasibleDesignError:
            return Individual(genome, float("-inf"), float("nan"))
        return Individual(
            genome, self.objective.score(metrics), self.objective.raw(metrics)
        )

    def _assess_all(self, genomes: Sequence[Genome]) -> list[Individual]:
        """Score a whole generation, batching fresh designs.

        When the evaluator exposes ``evaluate_many`` (e.g.
        :class:`~repro.core.parallel.ParallelEvaluator`), the generation's
        new designs are evaluated concurrently — the population-sized
        parallelism the paper's Section 2 discusses. Results are identical
        to the sequential path.
        """
        outcomes = self._counter.evaluate_many(genomes)
        individuals = []
        for genome, outcome in zip(genomes, outcomes):
            if isinstance(outcome, InfeasibleDesignError):
                individuals.append(Individual(genome, float("-inf"), float("nan")))
            elif isinstance(outcome, Exception):
                raise outcome
            else:
                individuals.append(
                    Individual(
                        genome,
                        self.objective.score(outcome),
                        self.objective.raw(outcome),
                    )
                )
        return individuals

    # -- breeding ------------------------------------------------------------------

    def _breed(
        self,
        population: list[Individual],
        generation: int,
        rng: random.Random,
    ) -> Genome:
        parent = self._select(population, rng)
        genome = parent.genome
        if rng.random() < self.config.crossover_rate:
            other = self._select(population, rng)
            for _ in range(8):
                candidate = self._crossover(parent.genome, other.genome, rng)
                if self.space.is_feasible(candidate):
                    genome = candidate
                    break
        return self.operators.mutate_feasible(genome, generation, rng)

    # -- incremental API -----------------------------------------------------------

    @property
    def started(self) -> bool:
        """Whether :meth:`start` has been called."""
        return self._rng is not None

    @property
    def finished(self) -> bool:
        """Whether a stopping cutoff has fired (see :meth:`step`)."""
        return self._stop_reason is not None

    @property
    def stop_reason(self) -> str | None:
        """Why the search stopped, or ``None`` while it can still step."""
        return self._stop_reason

    @property
    def generation(self) -> int:
        """Index of the last completed generation (0 after :meth:`start`)."""
        return self._generation

    @property
    def distinct_evaluations(self) -> int:
        """Distinct designs evaluated so far (synthesis jobs paid)."""
        return self._counter.distinct_evaluations

    @property
    def stack(self) -> EvaluationStack:
        """The evaluation stack this search charges its synthesis jobs to."""
        return self._counter

    def eval_stats(self) -> EvalStats:
        """Snapshot of the evaluation pipeline's counters and timers."""
        return self._counter.stats()

    @property
    def records(self) -> list[GenerationRecord]:
        """Per-generation records accumulated so far (copy)."""
        return list(self._records)

    def start(self) -> GenerationRecord:
        """Evaluate the initial population; returns the generation-0 record."""
        if self.started:
            raise NautilusError("search already started")
        self._rng = random.Random(self.config.seed)
        self._population = self._assess_all(
            self.space.random_population(self.config.population_size, self._rng)
        )
        self._best = max(self._population, key=lambda ind: ind.score)
        self._generation = 0
        record = self._record(0, self._population, self._best)
        self._records.append(record)
        return record

    def step(self) -> GenerationRecord | None:
        """Advance one generation; return its record, or ``None`` when done.

        Cutoffs are checked on entry, in the documented precedence order
        (budget, horizon, stall — see :class:`GAConfig`): the step *after*
        the generation that triggered a cutoff returns ``None`` and pins
        :attr:`stop_reason`.
        """
        if not self.started:
            raise NautilusError("call start() before step()")
        if self.finished:
            return None
        cfg = self.config
        if (
            cfg.max_evaluations is not None
            and self._counter.distinct_evaluations >= cfg.max_evaluations
        ):
            self._finish("budget")
            return None
        if self._generation >= cfg.generations:
            self._finish("horizon")
            return None
        if (
            cfg.stall_generations is not None
            and self._stalled_generations >= cfg.stall_generations
        ):
            self._finish("stall")
            return None
        generation = self._generation + 1
        elites = sorted(self._population, key=lambda i: i.score, reverse=True)
        next_genomes = [e.genome for e in elites[: cfg.elitism]]
        while len(next_genomes) < cfg.population_size:
            next_genomes.append(self._breed(self._population, generation, self._rng))
        self._population = self._assess_all(next_genomes)
        gen_best = max(self._population, key=lambda ind: ind.score)
        if gen_best.score > self._best.score:
            self._best = gen_best
            self._stalled_generations = 0
        else:
            self._stalled_generations += 1
        self._generation = generation
        record = self._record(generation, self._population, self._best)
        self._records.append(record)
        self._after_generation(record)
        return record

    def result(self) -> SearchResult:
        """Package the search state reached so far into a :class:`SearchResult`.

        Callable at any point after :meth:`start` — a scheduler that cancels
        a campaign mid-flight still gets the best-so-far and its curve. A
        result taken before any cutoff fired reports ``"cancelled"``.
        """
        if self._best is None:
            raise NautilusError("search has not started")
        return SearchResult(
            self.objective,
            self._records,
            self._best,
            self._counter.distinct_evaluations,
            label=self.label,
            stop_reason=self._stop_reason or "cancelled",
            eval_stats=self._counter.stats(),
        )

    def _finish(self, reason: str) -> None:
        self._stop_reason = reason
        self._on_finish(reason)

    def _after_generation(self, record: GenerationRecord) -> None:
        """Hook invoked after each completed generation (subclass seam)."""

    def _on_finish(self, reason: str) -> None:
        """Hook invoked exactly once when a stopping cutoff fires."""

    # -- main loop -----------------------------------------------------------------

    def run(self) -> SearchResult:
        """Run the configured number of generations and return the result.

        Thin loop over :meth:`start` / :meth:`step` — stepping incrementally
        yields exactly this result.
        """
        if not self.started:
            self.start()
        while self.step() is not None:
            pass
        return self.result()

    def _record(
        self, generation: int, population: list[Individual], best: Individual
    ) -> GenerationRecord:
        finite = [i.score for i in population if i.score != float("-inf")]
        mean_score = sum(finite) / len(finite) if finite else float("-inf")
        return GenerationRecord(
            generation=generation,
            best_raw=best.raw,
            best_score=best.score,
            mean_score=mean_score,
            distinct_evaluations=self._counter.distinct_evaluations,
            best_config=best.genome.as_dict(),
        )


class RandomSearch:
    """Uniform random sampling baseline (paper footnote 3).

    Samples feasible points without replacement until the budget is spent,
    recording the best-so-far curve with the same bookkeeping as the GA so
    the two are directly comparable.

    Exposes the same incremental surface as :class:`GeneticSearch`
    (:meth:`start` / :meth:`step` / :meth:`result`), where one step is one
    budget-consuming draw, so the service scheduler can interleave random
    baselines with GA campaigns.
    """

    def __init__(
        self,
        space: DesignSpace,
        evaluator: Evaluator,
        objective: Objective,
        budget: int,
        seed: int | None = None,
        label: str = "random",
    ):
        if budget < 1:
            raise NautilusError("budget must be >= 1")
        self.space = space
        self.objective = objective
        self.budget = budget
        self.seed = seed
        self.label = label
        self._counter = EvaluationStack.wrap(evaluator)
        self._rng: random.Random | None = None
        self._best: Individual | None = None
        self._records: list[GenerationRecord] = []
        self._draws = 0
        self._attempts = 0
        self._max_attempts = budget * 50
        self._stop_reason: str | None = None

    @property
    def started(self) -> bool:
        return self._rng is not None

    @property
    def finished(self) -> bool:
        return self._stop_reason is not None

    @property
    def stop_reason(self) -> str | None:
        return self._stop_reason

    @property
    def generation(self) -> int:
        """Budget-consuming draws so far (the random analogue of a generation)."""
        return self._draws

    @property
    def distinct_evaluations(self) -> int:
        return self._counter.distinct_evaluations

    @property
    def stack(self) -> EvaluationStack:
        """The evaluation stack this search charges its draws to."""
        return self._counter

    def eval_stats(self) -> EvalStats:
        """Snapshot of the evaluation pipeline's counters and timers."""
        return self._counter.stats()

    @property
    def records(self) -> list[GenerationRecord]:
        """Per-draw records accumulated so far (copy)."""
        return list(self._records)

    def start(self) -> GenerationRecord | None:
        """Initialize the RNG stream; random search has no generation 0."""
        if self.started:
            raise NautilusError("search already started")
        self._rng = random.Random(self.seed)
        return None

    def step(self) -> GenerationRecord | None:
        """Consume budget until one feasible draw lands; return its record.

        Infeasible draws consume budget (the synthesis attempt was paid
        for) but produce no record; the step keeps drawing until a feasible
        design is found or a cutoff fires (``None``: budget spent, or the
        rejection-sampling attempt cap was hit on a near-exhausted space).
        """
        if not self.started:
            raise NautilusError("call start() before step()")
        if self.finished:
            return None
        while self._draws < self.budget and self._attempts < self._max_attempts:
            self._attempts += 1
            genome = self.space.random_genome(self._rng)
            if self._counter.seen(genome):
                continue
            try:
                metrics = self._counter.evaluate(genome)
                individual = Individual(
                    genome,
                    self.objective.score(metrics),
                    self.objective.raw(metrics),
                )
            except InfeasibleDesignError:
                self._draws += 1
                continue
            self._draws += 1
            if self._best is None or individual.score > self._best.score:
                self._best = individual
            record = GenerationRecord(
                generation=self._draws,
                best_raw=self._best.raw,
                best_score=self._best.score,
                mean_score=self._best.score,
                distinct_evaluations=self._counter.distinct_evaluations,
                best_config=self._best.genome.as_dict(),
            )
            self._records.append(record)
            return record
        self._stop_reason = "budget" if self._draws >= self.budget else "exhausted"
        return None

    def result(self) -> SearchResult:
        if self._best is None:
            raise NautilusError("random search evaluated no feasible design")
        return SearchResult(
            self.objective,
            self._records,
            self._best,
            self._counter.distinct_evaluations,
            label=self.label,
            stop_reason=self._stop_reason or "cancelled",
            eval_stats=self._counter.stats(),
        )

    def run(self) -> SearchResult:
        if not self.started:
            self.start()
        while self.step() is not None:
            pass
        return self.result()


def exhaustive_best(
    space: DesignSpace, evaluator: Evaluator, objective: Objective
) -> Individual:
    """Brute-force the whole space; reference optimum for quality-of-results.

    Only tractable because our substrates replace hours-long synthesis with a
    fast analytical flow; the paper used a 200+ core cluster for the same
    preparatory step.
    """
    best: Individual | None = None
    for genome in space.iter_genomes():
        try:
            metrics = evaluator.evaluate(genome)
        except InfeasibleDesignError:
            continue
        individual = Individual(
            genome, objective.score(metrics), objective.raw(metrics)
        )
        if best is None or individual.score > best.score:
            best = individual
    if best is None:
        raise NautilusError(f"space {space.name!r} has no feasible design")
    return best
