"""IP-author hints — the central Nautilus contribution (paper Section 3).

The paper defines a taxonomy of hints an IP author attaches to a generator,
*per metric of interest and per IP parameter*:

* **Importance** (1..100): how drastically a parameter affects the metric.
  Skews *which* genes get picked for mutation.
* **Importance decay** (0..1): per-generation decay of importance
  *differences*, so the search focuses on important parameters early (coarse
  navigation) and spreads to the rest later (local fine-tuning).
* **Bias** (-1..1): correlation between the parameter and the metric. Skews
  the *direction* of newly assigned values.
* **Target** (a domain value): good solutions cluster around this value;
  newly assigned values are pulled toward it. Bias and target are mutually
  exclusive per parameter.
* **Confidence** (0..1): global trust knob. 0 reduces Nautilus to the
  baseline GA; 1 makes it strongly directed (gradient-descent-like).

Auxiliary settings (paper Section 3, last paragraph):

* **Ordering**: a ranking of an unordered categorical parameter's values
  with respect to the metric, so bias/target have an axis to act on.
* **Step**: mutation step granularity for ordinal parameters.

All hints are *probabilistic* — they reweight the stochastic operators but
never forbid any region of the space (footnote 1 of the paper), which is what
lets the GA recover from wrong hints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from .errors import HintError
from .params import Param
from .space import DesignSpace

__all__ = [
    "ParamHints",
    "HintSet",
    "DEFAULT_IMPORTANCE",
    "IMPORTANCE_MIN",
    "IMPORTANCE_MAX",
]

IMPORTANCE_MIN = 1
IMPORTANCE_MAX = 100
#: Importance assumed for parameters the author said nothing about. With all
#: parameters at the default the gene-selection distribution is uniform,
#: which matches the baseline GA.
DEFAULT_IMPORTANCE = 50


@dataclass(frozen=True)
class ParamHints:
    """Hints for one (parameter, metric) pair.

    Attributes:
        importance: 1..100, how strongly this parameter moves the metric.
        bias: -1..1 correlation of parameter (in its ordinal axis) with the
            metric being *maximized by the engine's internal score*. Callers
            express bias with respect to the raw metric; the engine flips the
            sign for minimization objectives.
        target: A domain value good solutions cluster around. Mutually
            exclusive with ``bias``.
        ordering: For unordered categorical parameters only — the parameter's
            values ranked from "low" to "high" with respect to the metric.
        step: Typical mutation step in ordinal index units (>= 1). ``None``
            lets the operator pick a geometric default.
    """

    importance: int = DEFAULT_IMPORTANCE
    bias: float = 0.0
    target: Any = None
    ordering: tuple | None = None
    step: int | None = None

    def __post_init__(self) -> None:
        if not IMPORTANCE_MIN <= self.importance <= IMPORTANCE_MAX:
            raise HintError(
                f"importance must be in [{IMPORTANCE_MIN}, {IMPORTANCE_MAX}], "
                f"got {self.importance}"
            )
        if not -1.0 <= self.bias <= 1.0:
            raise HintError(f"bias must be in [-1, 1], got {self.bias}")
        if self.target is not None and self.bias != 0.0:
            raise HintError(
                "bias and target are mutually exclusive for a parameter "
                "(paper Section 3)"
            )
        if self.step is not None and self.step < 1:
            raise HintError(f"step must be >= 1, got {self.step}")
        if self.ordering is not None:
            object.__setattr__(self, "ordering", tuple(self.ordering))

    def with_flipped_bias(self) -> "ParamHints":
        """Return a copy with the bias sign flipped (min/max conversion)."""
        if self.bias == 0.0:
            return self
        return ParamHints(
            importance=self.importance,
            bias=-self.bias,
            target=self.target,
            ordering=self.ordering,
            step=self.step,
        )


class HintSet:
    """All author hints for one metric of interest.

    Args:
        params: Mapping of parameter name to :class:`ParamHints`. Parameters
            absent from the mapping fall back to defaults (uniform
            importance, no bias/target) — the paper allows authors to supply
            "as many or few hints as desired".
        confidence: Global trust in the hints, 0..1.
        importance_decay: Per-generation decay rate of importance
            differences, 0..1. At generation ``g`` the effective importance
            is ``mean + (importance - mean) * (1 - decay) ** g`` where
            ``mean`` is the default importance, i.e. differences shrink
            geometrically toward the uniform baseline.
    """

    def __init__(
        self,
        params: Mapping[str, ParamHints] | None = None,
        confidence: float = 0.5,
        importance_decay: float = 0.0,
    ):
        if not 0.0 <= confidence <= 1.0:
            raise HintError(f"confidence must be in [0, 1], got {confidence}")
        if not 0.0 <= importance_decay <= 1.0:
            raise HintError(
                f"importance_decay must be in [0, 1], got {importance_decay}"
            )
        self.params: dict[str, ParamHints] = dict(params or {})
        self.confidence = confidence
        self.importance_decay = importance_decay

    # -- access -----------------------------------------------------------------

    def for_param(self, name: str) -> ParamHints:
        """Hints for one parameter, defaulting when the author gave none."""
        return self.params.get(name, ParamHints())

    def hinted_params(self) -> tuple[str, ...]:
        """Names of parameters with explicit hints."""
        return tuple(sorted(self.params))

    # -- derivation ---------------------------------------------------------------

    def with_confidence(self, confidence: float) -> "HintSet":
        """Return a copy with a different global confidence.

        The paper's "weakly guided" vs "strongly guided" Nautilus variants
        "differ only in the confidence hint" (footnote 2), which this method
        makes a one-liner.
        """
        return HintSet(self.params, confidence, self.importance_decay)

    def with_decay(self, importance_decay: float) -> "HintSet":
        """Return a copy with a different importance decay rate."""
        return HintSet(self.params, self.confidence, importance_decay)

    def for_minimization(self) -> "HintSet":
        """Return a copy with all bias signs flipped.

        Authors state bias with respect to the raw metric ("increasing the
        parameter increases the metric"); when the engine minimizes, the
        internal score is the negated metric, so biases flip.
        """
        flipped = {name: h.with_flipped_bias() for name, h in self.params.items()}
        return HintSet(flipped, self.confidence, self.importance_decay)

    def restricted_to(self, names: Sequence[str]) -> "HintSet":
        """Return a copy keeping hints only for the given parameters.

        Used by Figure-3-style experiments ("Nautilus w/ 1 bias hint",
        "w/ 2 bias hints") that feed the engine a truncated hint vector.
        """
        kept = {n: h for n, h in self.params.items() if n in set(names)}
        return HintSet(kept, self.confidence, self.importance_decay)

    # -- validation ---------------------------------------------------------------

    def validate(self, space: DesignSpace) -> None:
        """Check the hint set against a design space; raise HintError if bad."""
        for name, hints in self.params.items():
            if name not in space:
                raise HintError(
                    f"hint refers to unknown parameter {name!r} "
                    f"(space {space.name!r} has {list(space.param_names)})"
                )
            param = space.param(name)
            self._validate_param(param, hints)

    @staticmethod
    def _validate_param(param: Param, hints: ParamHints) -> None:
        if hints.target is not None and not param.contains(hints.target):
            raise HintError(
                f"target {hints.target!r} is not in the domain of "
                f"parameter {param.name!r}"
            )
        if hints.ordering is not None:
            ordering = hints.ordering
            # Each ordering entry must be an actual member of the domain
            # (same value AND same type — ``1`` is not ``True``), and the
            # entries must cover every domain index exactly once. Comparing
            # reprs, as an earlier version did, wrongly accepted foreign
            # values whose repr collides with a domain member's.
            positions: set[int] = set()
            valid = len(ordering) == param.cardinality
            if valid:
                for value in ordering:
                    if not param.contains(value):
                        valid = False
                        break
                    position = param.index_of(value)
                    if position in positions or type(param.values[position]) is not type(value):
                        valid = False
                        break
                    positions.add(position)
            if not valid:
                raise HintError(
                    f"ordering hint for {param.name!r} must be a permutation "
                    f"of its domain; got {ordering!r}"
                )
        if not param.ordered and hints.ordering is None and (
            hints.bias != 0.0 or hints.target is not None
        ):
            raise HintError(
                f"parameter {param.name!r} is unordered: bias/target hints "
                f"require an ordering hint to define the axis"
            )

    # -- effective importance --------------------------------------------------------

    def effective_importance(self, name: str, generation: int) -> float:
        """Importance of a parameter at a given generation, after decay."""
        base = float(self.for_param(name).importance)
        if self.importance_decay == 0.0 or generation <= 0:
            return base
        shrink = (1.0 - self.importance_decay) ** generation
        return DEFAULT_IMPORTANCE + (base - DEFAULT_IMPORTANCE) * shrink

    def __eq__(self, other: object) -> bool:
        """Structural equality — what JSON round-tripping must preserve."""
        if not isinstance(other, HintSet):
            return NotImplemented
        return (
            self.params == other.params
            and self.confidence == other.confidence
            and self.importance_decay == other.importance_decay
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"HintSet({len(self.params)} hinted params, "
            f"confidence={self.confidence}, decay={self.importance_decay})"
        )
