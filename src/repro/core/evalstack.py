"""The unified evaluation stack — every fitness score flows through here.

The paper's entire cost model is the evaluation: each fitness score
"requires running computationally expensive CAD tools ... and/or
simulations", so a search is judged by the number of distinct synthesis
jobs it pays for. This module makes that critical path *one* composable
pipeline instead of four divergent implementations::

    EvaluationStack.evaluate_many(genomes)
        │
        ▼
    MemoCache          in-memory key → outcome; revisits are free
        │ misses
        ▼
    ArchiveTap         optional pure observer feeding the cross-campaign
        │              design archive (repro.archive) — see every memo miss
        ▼
    PersistentCache    optional on-disk JSON-lines, shared across
        │ misses       campaigns/processes/daemon restarts
        ▼
    Batcher            coalesces duplicate keys within one batch
        │ unique
        ▼
    Instrumentation    charges distinct evaluations, times the backend,
        │              counts infeasible results and batch sizes
        ▼
    Backend            inline | thread pool | process pool — the layer
                       that actually runs the inner evaluator

``evaluate_many`` is the primitive; ``evaluate`` is a batch of one. Every
layer preserves submission order and returns one outcome (a metrics dict or
the exception the evaluation raised) per genome, so batch and serial paths
are bit-identical — the engines rely on this for seeded reproducibility.

Accounting invariant, kept for compatibility with the old
:class:`~repro.core.evaluator.CountingEvaluator`::

    total_requests == distinct_evaluations + memo_hits
                      + persistent_hits + batch_dedup_hits

``cache_hits`` (requests that did not pay for a backend execution) is the
derived ``total_requests - distinct_evaluations``.
"""

from __future__ import annotations

import copy
import hashlib
import json
import threading
import time
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Any, Iterator, Sequence, TYPE_CHECKING

from .errors import InfeasibleDesignError, NautilusError
from .fitness import Metrics
from .genome import Genome
from .params import values_key

if TYPE_CHECKING:  # pragma: no cover
    from .evaluator import Evaluator
    from .space import DesignSpace

__all__ = [
    "EvalStats",
    "EvaluationStack",
    "PersistentCache",
    "evaluator_fingerprint",
    "run_backend_batch",
]

#: An evaluation outcome: the metrics dict, or the exception the run raised.
Outcome = Any

_BACKENDS = ("auto", "inline", "thread", "process", "fleet")


# ---------------------------------------------------------------------------
# stats
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class EvalStats:
    """One consistent snapshot of every counter/timer in a stack.

    All counters are cumulative since stack construction; subtract two
    snapshots with :meth:`minus` to get the delta over an interval (the
    service scheduler does this once per generation step).
    """

    requests: int = 0
    distinct: int = 0
    memo_hits: int = 0
    persistent_hits: int = 0
    batch_dedup_hits: int = 0
    batches: int = 0
    max_batch: int = 0
    infeasible: int = 0
    errors: int = 0
    backend_time_s: float = 0.0
    wall_time_s: float = 0.0

    @property
    def cache_hits(self) -> int:
        """Requests that did not pay for a backend execution."""
        return self.requests - self.distinct

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / self.requests if self.requests else 0.0

    @property
    def persistent_hit_rate(self) -> float:
        return self.persistent_hits / self.requests if self.requests else 0.0

    @property
    def mean_batch(self) -> float:
        return self.distinct / self.batches if self.batches else 0.0

    @property
    def infeasible_rate(self) -> float:
        """Fraction of paid evaluations that came back unbuildable."""
        return self.infeasible / self.distinct if self.distinct else 0.0

    def minus(self, other: "EvalStats") -> "EvalStats":
        """Per-field delta ``self - other`` (``max_batch`` keeps the max)."""
        values = {
            f.name: getattr(self, f.name) - getattr(other, f.name)
            for f in fields(self)
        }
        values["max_batch"] = self.max_batch
        return EvalStats(**values)

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready view including the derived rates."""
        payload = {f.name: getattr(self, f.name) for f in fields(self)}
        payload["cache_hits"] = self.cache_hits
        payload["hit_rate"] = self.hit_rate
        payload["persistent_hit_rate"] = self.persistent_hit_rate
        payload["mean_batch"] = self.mean_batch
        payload["infeasible_rate"] = self.infeasible_rate
        return payload


class _Counters:
    """Mutable counter block shared by the layers of one stack."""

    __slots__ = [f.name for f in fields(EvalStats)]

    def __init__(self) -> None:
        for name in self.__slots__:
            setattr(self, name, 0.0 if name.endswith("_s") else 0)

    def snapshot(self) -> EvalStats:
        return EvalStats(**{name: getattr(self, name) for name in self.__slots__})


# ---------------------------------------------------------------------------
# fingerprints
# ---------------------------------------------------------------------------


def evaluator_fingerprint(evaluator: Any) -> str:
    """A stable identity string for an evaluator's *content*.

    The persistent cache keys rows by genome key **and** this fingerprint,
    so two evaluators that would score designs differently never share
    cached metrics. Evaluators may expose a ``fingerprint`` attribute or
    method (e.g. :class:`~repro.core.evaluator.DatasetEvaluator` hashes its
    dataset's rows); anything else falls back to its qualified class name.
    """
    fp = getattr(evaluator, "fingerprint", None)
    if callable(fp):
        fp = fp()
    if fp:
        return str(fp)
    cls = type(evaluator)
    return f"{cls.__module__}.{cls.__qualname__}"


# ---------------------------------------------------------------------------
# backend layers
# ---------------------------------------------------------------------------


class _InlineBackend:
    """Run the inner evaluator directly, one design at a time.

    When the inner evaluator exposes its own ``evaluate_many`` (a legacy
    :class:`~repro.core.parallel.ParallelEvaluator`, say), the whole batch
    is delegated so existing parallel evaluators keep their fan-out.
    """

    def __init__(self, inner: "Evaluator", delegate_batches: bool = True):
        self.inner = inner
        self._delegate = delegate_batches

    def evaluate_many(self, genomes: Sequence[Genome]) -> list[Outcome]:
        if self._delegate:
            many = getattr(self.inner, "evaluate_many", None)
            if many is not None:
                return list(many(genomes))
        results: list[Outcome] = []
        for genome in genomes:
            try:
                results.append(self.inner.evaluate(genome))
            except Exception as exc:
                results.append(exc)
        return results


class _PoolBackend:
    """Fan a batch out to a thread or process pool, preserving order.

    Per-design exceptions are captured and returned in place rather than
    aborting the batch — exactly how a cluster of synthesis jobs behaves
    when one run fails.
    """

    def __init__(self, inner: "Evaluator", workers: int, kind: str):
        from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

        if workers < 1:
            raise NautilusError("workers must be >= 1")
        self.inner = inner
        self.workers = workers
        self.kind = kind
        self._executor_cls = (
            ProcessPoolExecutor if kind == "process" else ThreadPoolExecutor
        )

    def evaluate_many(self, genomes: Sequence[Genome]) -> list[Outcome]:
        if not genomes:
            return []
        with self._executor_cls(max_workers=self.workers) as pool:
            futures = [pool.submit(self.inner.evaluate, g) for g in genomes]
            results: list[Outcome] = []
            for future in futures:
                try:
                    results.append(future.result())
                except Exception as exc:
                    results.append(exc)
            return results


def run_backend_batch(
    evaluator: "Evaluator", genomes: Sequence[Genome]
) -> list[Outcome]:
    """Evaluate a batch through a bare inline backend (no caching layers).

    This is the engine-room behind the legacy
    :func:`repro.core.parallel.evaluate_batch` helper.
    """
    return _InlineBackend(evaluator).evaluate_many(genomes)


# ---------------------------------------------------------------------------
# mid-stack layers
# ---------------------------------------------------------------------------


class _Instrumentation:
    """Charge distinct evaluations and time the backend per batch."""

    def __init__(self, next_layer, counters: _Counters, clock=time.perf_counter):
        self.next = next_layer
        self._counters = counters
        self._clock = clock

    def evaluate_many(self, genomes: Sequence[Genome]) -> list[Outcome]:
        counters = self._counters
        counters.batches += 1
        counters.distinct += len(genomes)
        counters.max_batch = max(counters.max_batch, len(genomes))
        started = self._clock()
        outcomes = self.next.evaluate_many(genomes)
        counters.backend_time_s += self._clock() - started
        for outcome in outcomes:
            if isinstance(outcome, InfeasibleDesignError):
                counters.infeasible += 1
            elif isinstance(outcome, Exception):
                counters.errors += 1
        return outcomes


class _Batcher:
    """Coalesce duplicate keys within one batch; optionally chunk huge ones.

    Duplicates cost nothing extra — a generation that breeds the same
    genome twice pays for one synthesis job, as the old
    ``CountingEvaluator.evaluate_many`` guaranteed.
    """

    def __init__(self, next_layer, counters: _Counters, batch_size: int | None = None):
        if batch_size is not None and batch_size < 1:
            raise NautilusError("batch_size must be >= 1")
        self.next = next_layer
        self._counters = counters
        self._batch_size = batch_size

    def evaluate_many(self, genomes: Sequence[Genome]) -> list[Outcome]:
        unique: list[Genome] = []
        index: dict[tuple, int] = {}
        for genome in genomes:
            if genome.key not in index:
                index[genome.key] = len(unique)
                unique.append(genome)
        self._counters.batch_dedup_hits += len(genomes) - len(unique)
        outcomes: list[Outcome] = []
        if self._batch_size is None:
            if unique:
                outcomes = self.next.evaluate_many(unique)
        else:
            for start in range(0, len(unique), self._batch_size):
                outcomes.extend(
                    self.next.evaluate_many(unique[start : start + self._batch_size])
                )
        return [outcomes[index[g.key]] for g in genomes]


class _PersistentLayer:
    """Serve misses from the shared on-disk cache; write back fresh results."""

    def __init__(
        self,
        next_layer,
        cache: "PersistentCache",
        fingerprint: str,
        counters: _Counters,
        clock=time.perf_counter,
    ):
        self.next = next_layer
        self.cache = cache
        self.fingerprint = fingerprint
        self._counters = counters
        self._clock = clock
        #: Timed write-backs since the last :meth:`pop_writes` — surfaced
        #: to tracing kernels as ``cache-write`` spans.
        self._writes: list[dict] = []

    def evaluate_many(self, genomes: Sequence[Genome]) -> list[Outcome]:
        results: list[Outcome] = [None] * len(genomes)
        misses: list[Genome] = []
        positions: list[int] = []
        for i, genome in enumerate(genomes):
            found, metrics = self.cache.get(genome, self.fingerprint)
            if found:
                self._counters.persistent_hits += 1
                results[i] = (
                    metrics
                    if metrics is not None
                    else InfeasibleDesignError(
                        "design recorded as infeasible in the persistent cache"
                    )
                )
            else:
                misses.append(genome)
                positions.append(i)
        if misses:
            outcomes = self.next.evaluate_many(misses)
            started = self._clock()
            self.cache.put_many(
                zip(misses, outcomes), self.fingerprint
            )
            self._writes.append(
                {"entries": len(misses), "duration_s": self._clock() - started}
            )
            for position, outcome in zip(positions, outcomes):
                results[position] = outcome
        return results

    def pop_writes(self) -> list[dict]:
        """Timed cache write-backs since the last call (then reset)."""
        writes, self._writes = self._writes, []
        return writes


class _ArchiveTap:
    """Record outcomes flowing past the memo into a cross-campaign archive.

    Sits between the memo cache and the persistent layer, so every memo
    miss — fresh backend results *and* persistent-cache hits — lands in the
    archive exactly once per stack. Pure observation: no counters, no RNG,
    no reordering, so seeded curves are bit-identical with or without a
    tap (the archive-off engine-parity guarantee).
    """

    def __init__(self, next_layer, archive, fingerprint: str, campaign: str):
        self.next = next_layer
        self.archive = archive
        self.fingerprint = fingerprint
        self.campaign = campaign

    def evaluate_many(self, genomes: Sequence[Genome]) -> list[Outcome]:
        outcomes = self.next.evaluate_many(genomes)
        self.archive.record_many(
            zip(genomes, outcomes), self.fingerprint, campaign=self.campaign
        )
        return outcomes


class _MemoCache:
    """The outermost layer: in-memory memoization and request accounting."""

    def __init__(self, next_layer, counters: _Counters):
        self.next = next_layer
        self.entries: dict[tuple, Outcome] = {}
        self._counters = counters

    def evaluate_many(self, genomes: Sequence[Genome]) -> list[Outcome]:
        entries = self.entries
        self._counters.requests += len(genomes)
        misses = [g for g in genomes if g.key not in entries]
        self._counters.memo_hits += len(genomes) - len(misses)
        if misses:
            for genome, outcome in zip(misses, self.next.evaluate_many(misses)):
                entries[genome.key] = outcome
        return [entries[g.key] for g in genomes]


# ---------------------------------------------------------------------------
# persistent cache store
# ---------------------------------------------------------------------------


class PersistentCache:
    """Content-addressed, append-only evaluation cache shared across runs.

    Layout: one JSON-lines file per (design space, evaluator fingerprint)
    under ``root``, named ``<space>-<sha1(fingerprint)[:12]>.jsonl``. The
    first line is a self-describing header (space, parameter names, the full
    fingerprint); each following line is one design point::

        {"space": "spiral_fft", "params": ["radix", ...], "fingerprint": "..."}
        {"values": [4, 16, ...], "metrics": {"luts": 512.0, ...}}
        {"values": [8, 16, ...], "metrics": null}        # infeasible

    ``metrics: null`` records an :class:`InfeasibleDesignError` — a failed
    synthesis attempt still consumed a job, and replaying it must fail the
    same way. Rows are appended one line per ``write()`` call and a torn
    trailing line (killed daemon) is skipped on load, so the cache survives
    crashes without any locking protocol beyond append.

    Thread safety: one lock guards the in-memory maps and file appends, so
    many campaign stacks in one scheduler can share a single instance.
    """

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self._lock = threading.Lock()
        #: (space_name, fingerprint) -> {values_key: metrics | None}
        self._spaces: dict[tuple[str, str], dict[tuple, dict | None]] = {}

    # -- file mapping -----------------------------------------------------------

    def _path(self, space_name: str, fingerprint: str) -> Path:
        digest = hashlib.sha1(fingerprint.encode("utf-8")).hexdigest()[:12]
        return self.root / f"{space_name}-{digest}.jsonl"

    # The canonical key (repro.core.params.values_key) — the same frozen
    # form Genome.key carries, so JSON round-trips (tuples → lists) land
    # back on identical keys. This *is* the on-disk key format; changing it
    # orphans every existing cache file.
    _values_key = staticmethod(values_key)

    def _load(self, space: "DesignSpace", fingerprint: str) -> dict[tuple, dict | None]:
        slot = (space.name, fingerprint)
        rows = self._spaces.get(slot)
        if rows is not None:
            return rows
        rows = {}
        path = self._path(space.name, fingerprint)
        if path.exists():
            with open(path, "r", encoding="utf-8") as fh:
                header: dict | None = None
                for line in fh:
                    try:
                        payload = json.loads(line)
                    except ValueError:
                        continue  # torn trailing line from a killed writer
                    if header is None:
                        header = payload
                        if (
                            header.get("space") != space.name
                            or tuple(header.get("params", ())) != space.param_names
                            or header.get("fingerprint") != fingerprint
                        ):
                            raise NautilusError(
                                f"persistent cache {path} does not match space "
                                f"{space.name!r} / fingerprint {fingerprint!r}"
                            )
                        continue
                    rows[self._values_key(payload["values"])] = payload["metrics"]
        self._spaces[slot] = rows
        return rows

    # -- access -----------------------------------------------------------------

    def get(self, genome: Genome, fingerprint: str) -> tuple[bool, dict | None]:
        """``(found, metrics)``; ``metrics is None`` marks infeasible."""
        with self._lock:
            rows = self._load(genome.space, fingerprint)
            key = genome.key[1]
            if key in rows:
                metrics = rows[key]
                return True, dict(metrics) if metrics is not None else None
            return False, None

    def put_many(self, outcomes, fingerprint: str) -> int:
        """Append fresh ``(genome, outcome)`` rows; returns rows written.

        Metrics and :class:`InfeasibleDesignError` outcomes are persisted;
        other exceptions (transient failures, setup bugs) are not — they
        must not poison future campaigns.
        """
        written = 0
        with self._lock:
            fh = None
            try:
                for genome, outcome in outcomes:
                    if isinstance(outcome, InfeasibleDesignError):
                        metrics = None
                    elif isinstance(outcome, Exception):
                        continue
                    else:
                        metrics = dict(outcome)
                    rows = self._load(genome.space, fingerprint)
                    key = genome.key[1]
                    if key in rows:
                        continue
                    if fh is None:
                        path = self._path(genome.space.name, fingerprint)
                        path.parent.mkdir(parents=True, exist_ok=True)
                        fresh_file = not path.exists()
                        fh = open(path, "a", encoding="utf-8")
                        if fresh_file:
                            fh.write(
                                json.dumps(
                                    {
                                        "space": genome.space.name,
                                        "params": list(genome.space.param_names),
                                        "fingerprint": fingerprint,
                                    }
                                )
                                + "\n"
                            )
                    rows[key] = metrics
                    fh.write(
                        json.dumps({"values": list(genome.key[1]), "metrics": metrics})
                        + "\n"
                    )
                    written += 1
                if fh is not None:
                    fh.flush()
            finally:
                if fh is not None:
                    fh.close()
        return written

    def entries(self, space: "DesignSpace", fingerprint: str) -> int:
        """Number of cached rows for one (space, fingerprint)."""
        with self._lock:
            return len(self._load(space, fingerprint))

    def compact(self) -> dict[str, Any]:
        """Rewrite every cache file, dropping duplicate and torn rows.

        ``put_many`` dedupes within one process, but several writers
        appending to the same file (fleet workers, parallel daemons,
        repeated crash-restart cycles) accrete superseded duplicate rows —
        the file only ever grows. Compaction keeps the *last* payload per
        values key (matching ``_load``'s read semantics) in first-appearance
        order, silently drops unparsable or malformed lines, and rewrites
        each file atomically (tmp + rename). In-memory maps are invalidated
        so the next access reloads from the rewritten files.

        Returns ``{"files": {name: {"rows", "reclaimed"}}, "rows", "reclaimed"}``.
        """
        report: dict[str, Any] = {"files": {}, "rows": 0, "reclaimed": 0}
        with self._lock:
            paths = sorted(self.root.glob("*.jsonl")) if self.root.exists() else []
            for path in paths:
                header: dict | None = None
                rows: dict[tuple, Any] = {}
                order: list[tuple] = []
                dropped = 0
                with open(path, "r", encoding="utf-8") as fh:
                    for line in fh:
                        try:
                            payload = json.loads(line)
                        except ValueError:
                            dropped += 1  # torn line from a killed writer
                            continue
                        if header is None:
                            header = payload
                            continue
                        try:
                            key = self._values_key(payload["values"])
                            payload["metrics"]
                        except (KeyError, TypeError):
                            dropped += 1
                            continue
                        if key in rows:
                            dropped += 1  # superseded duplicate
                        else:
                            order.append(key)
                        rows[key] = payload
                if header is None:
                    continue  # empty or headerless file; nothing to keep
                if dropped:
                    tmp = path.with_suffix(path.suffix + ".tmp")
                    with open(tmp, "w", encoding="utf-8") as out:
                        out.write(json.dumps(header) + "\n")
                        for key in order:
                            out.write(json.dumps(rows[key]) + "\n")
                    tmp.replace(path)
                report["files"][path.name] = {
                    "rows": len(order),
                    "reclaimed": dropped,
                }
                report["rows"] += len(order)
                report["reclaimed"] += dropped
            self._spaces.clear()
        return report

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PersistentCache({str(self.root)!r})"


# ---------------------------------------------------------------------------
# the stack
# ---------------------------------------------------------------------------


class _RegistryMetrics:
    """Publishes stack counters into a Prometheus-style metrics registry.

    The registry is duck-typed (``counter``/``histogram`` factories with
    ``inc``/``observe``) so :mod:`repro.core` never imports
    :mod:`repro.obs`; in practice it is a
    :class:`repro.obs.registry.MetricsRegistry` shared by every campaign
    stack of one service daemon.
    """

    def __init__(self, registry):
        self.requests = registry.counter(
            "nautilus_eval_requests_total",
            "Evaluation requests, including every kind of cache hit.",
        )
        self.distinct = registry.counter(
            "nautilus_eval_distinct_total",
            "Distinct designs paid for at the backend (synthesis jobs).",
        )
        self.memo_hits = registry.counter(
            "nautilus_eval_memo_hits_total",
            "Requests served by the in-memory memo cache.",
        )
        self.persistent_hits = registry.counter(
            "nautilus_eval_persistent_hits_total",
            "Requests served by the persistent on-disk cache.",
        )
        self.infeasible = registry.counter(
            "nautilus_eval_infeasible_total",
            "Paid evaluations that came back unbuildable.",
        )
        self.errors = registry.counter(
            "nautilus_eval_errors_total",
            "Paid evaluations that raised a non-infeasibility error.",
        )
        self.batch_seconds = registry.histogram(
            "nautilus_eval_batch_seconds",
            "Wall time of one evaluation batch through the stack.",
        )

    def record(self, delta: EvalStats, elapsed_s: float) -> None:
        if delta.requests:
            self.requests.inc(delta.requests)
        if delta.distinct:
            self.distinct.inc(delta.distinct)
        if delta.memo_hits:
            self.memo_hits.inc(delta.memo_hits)
        if delta.persistent_hits:
            self.persistent_hits.inc(delta.persistent_hits)
        if delta.infeasible:
            self.infeasible.inc(delta.infeasible)
        if delta.errors:
            self.errors.inc(delta.errors)
        self.batch_seconds.observe(elapsed_s)


class EvaluationStack:
    """One layered, batch-first evaluation pipeline (see module docstring).

    Args:
        inner: The base evaluator that actually scores designs.
        backend: ``"auto"`` (default: inline, delegating whole batches to an
            inner ``evaluate_many`` when it has one), ``"inline"`` (strictly
            sequential), ``"thread"`` or ``"process"`` (pool fan-out; the
            useful pool size is the GA population — the paper's parallelism
            cap), or ``"fleet"`` (dispatch batches to the distributed
            worker fleet of ``fleet``, degrading to inline execution when
            no worker can serve the space — see :mod:`repro.distributed`).
        workers: Pool size for the thread/process backends.
        fleet: The :class:`repro.distributed.FleetCoordinator` backing the
            ``"fleet"`` backend (required for it, ignored otherwise).
        persistent: Optional shared :class:`PersistentCache`; campaigns over
            the same space then never re-pay a synthesis job, across
            processes and daemon restarts.
        batch_size: Optional chunking of huge batches (the dataset
            characterization pipeline streams a whole space through one
            stack this way).
        fingerprint: Evaluator-content fingerprint override; defaults to
            :func:`evaluator_fingerprint` of ``inner``.
        clock: Timer used for the wall/backend timings (tests inject one).
        registry: Optional :class:`repro.obs.registry.MetricsRegistry`;
            when given, the stack also publishes its counters as
            Prometheus families (``nautilus_eval_*``) after every batch.
            Duck-typed — the stack never imports :mod:`repro.obs` — and
            purely additive: the :class:`EvalStats` accounting is
            byte-for-byte identical with or without a registry.
        archive: Optional :class:`repro.archive.DesignArchive` (duck-typed
            — only ``record_many`` is called); every memo miss is recorded
            into it under ``campaign``. Pure observation: counters, RNG
            and seeded curves are identical with or without an archive.
        campaign: Campaign id stamped onto archived rows.
    """

    def __init__(
        self,
        inner: "Evaluator",
        *,
        backend: str = "auto",
        workers: int = 1,
        persistent: PersistentCache | None = None,
        batch_size: int | None = None,
        fingerprint: str | None = None,
        clock=time.perf_counter,
        registry=None,
        fleet=None,
        archive=None,
        campaign: str = "",
    ):
        if backend not in _BACKENDS:
            raise NautilusError(
                f"backend must be one of {_BACKENDS}, got {backend!r}"
            )
        if isinstance(inner, EvaluationStack):
            raise NautilusError("cannot stack an EvaluationStack inside another")
        self.inner = inner
        self.backend_kind = backend
        self.workers = workers
        self.persistent = persistent
        self.archive = archive
        self.fingerprint = fingerprint or evaluator_fingerprint(inner)
        self._counters = _Counters()
        self._clock = clock
        self.registry = registry
        self._metrics = _RegistryMetrics(registry) if registry is not None else None

        if backend == "fleet":
            if fleet is None:
                raise NautilusError(
                    "backend='fleet' requires a FleetCoordinator via fleet="
                )
            # Imported lazily: repro.distributed depends on this module.
            from ..distributed.fleetbackend import FleetBackend

            tail = FleetBackend(inner, fleet, self.fingerprint)
        elif backend in ("thread", "process"):
            tail = _PoolBackend(inner, workers=workers, kind=backend)
        else:
            tail = _InlineBackend(inner, delegate_batches=backend == "auto")
        self._tail = tail
        layer = _Instrumentation(tail, self._counters, clock=clock)
        layer = _Batcher(layer, self._counters, batch_size=batch_size)
        self._persistent_layer: _PersistentLayer | None = None
        if persistent is not None:
            layer = _PersistentLayer(
                layer, persistent, self.fingerprint, self._counters, clock=clock
            )
            self._persistent_layer = layer
        if archive is not None:
            layer = _ArchiveTap(layer, archive, self.fingerprint, campaign)
        self._memo = _MemoCache(layer, self._counters)

    # -- construction helpers ---------------------------------------------------

    @classmethod
    def wrap(cls, evaluator: "Evaluator | EvaluationStack", **options) -> "EvaluationStack":
        """Return ``evaluator`` unchanged if it already is a stack."""
        if isinstance(evaluator, EvaluationStack):
            return evaluator
        return cls(evaluator, **options)

    @classmethod
    def for_dataset(cls, dataset, **options) -> "EvaluationStack":
        """A stack over a characterized dataset (the service's backend)."""
        from .evaluator import DatasetEvaluator

        return cls(DatasetEvaluator(dataset), **options)

    # -- evaluation -------------------------------------------------------------

    def evaluate_many(self, genomes: Sequence[Genome]) -> list[Outcome]:
        """Evaluate a batch; one metrics dict or exception per genome.

        This is the primitive every layer composes over; callers re-raise
        or score exceptions as infeasible as appropriate.
        """
        batch = list(genomes)
        before = self._counters.snapshot() if self._metrics is not None else None
        started = self._clock()
        outcomes = self._memo.evaluate_many(batch)
        elapsed = self._clock() - started
        self._counters.wall_time_s += elapsed
        if self._metrics is not None and batch:
            self._metrics.record(self._counters.snapshot().minus(before), elapsed)
        return outcomes

    def evaluate(self, genome: Genome) -> Metrics:
        """A batch of one. Cached failures re-raise as *fresh* copies.

        Re-raising the cached exception instance itself would append to its
        ``__traceback__`` on every revisit, growing an unbounded chain over
        a long campaign; the copy keeps the original (with its first
        traceback) reachable as ``__cause__`` instead.
        """
        outcome = self.evaluate_many([genome])[0]
        if isinstance(outcome, Exception):
            raise _fresh_exception(outcome) from outcome
        return outcome

    def seen(self, genome: Genome) -> bool:
        """Whether this design point is already memoized."""
        return genome.key in self._memo.entries

    # -- accounting -------------------------------------------------------------

    @property
    def distinct_evaluations(self) -> int:
        """Unique design points paid for at the backend (synthesis jobs)."""
        return self._counters.distinct

    @property
    def total_requests(self) -> int:
        """Evaluation requests, including every kind of cache hit."""
        return self._counters.requests

    @property
    def cache_hits(self) -> int:
        """Requests served without paying for a backend execution."""
        return self._counters.requests - self._counters.distinct

    def stats(self) -> EvalStats:
        """A consistent snapshot of every layer's counters and timers."""
        return self._counters.snapshot()

    def pop_annotations(self) -> dict[str, Any] | None:
        """Backend-specific trace annotations since the last call, or None.

        Duck-typed on the tail backend: the fleet backend reports which
        workers served the recent evaluations (``{"workers": {name: n}}``)
        so run traces can attribute eval batches; local backends have
        nothing to add and the kernel emits its events unchanged.
        """
        pop = getattr(self._tail, "pop_dispatch_log", None)
        if pop is None:
            return None
        log = pop()
        return {"workers": log} if log else None

    # -- span tracing pass-throughs (duck-typed; see repro.obs.tracing) ----------

    def push_trace_context(self, ctx: dict[str, Any]) -> None:
        """Forward a span context to the tail backend for the next batch.

        Only the fleet backend consumes it (the context travels in the
        protocol's batch frames); other backends have no hook and the call
        is a no-op, so tracing kernels can push unconditionally.
        """
        push = getattr(self._tail, "push_trace_context", None)
        if push is not None:
            push(ctx)

    def pop_task_traces(self) -> list[dict[str, Any]]:
        """Per-task fleet timelines since the last call (empty inline)."""
        pop = getattr(self._tail, "pop_task_traces", None)
        return pop() if pop is not None else []

    def pop_cache_writes(self) -> list[dict[str, Any]]:
        """Timed persistent-cache write-backs since the last call."""
        layer = self._persistent_layer
        return layer.pop_writes() if layer is not None else []

    # -- memo import/export (checkpointing) -------------------------------------

    def memo_items(self) -> Iterator[tuple[tuple, Outcome]]:
        """Iterate ``(genome key, outcome)`` over the in-memory cache."""
        return iter(self._memo.entries.items())

    def preload(
        self, genome: Genome, metrics: Metrics | None, charge: bool = True
    ) -> None:
        """Seed the memo with an already-paid-for outcome (checkpoint resume).

        ``metrics=None`` restores an infeasible result. ``charge`` counts
        the entry as a distinct evaluation — the job *was* paid for by this
        campaign, just before the snapshot.
        """
        outcome: Outcome = (
            metrics
            if metrics is not None
            else InfeasibleDesignError("restored from checkpoint")
        )
        if genome.key not in self._memo.entries and charge:
            self._counters.distinct += 1
        self._memo.entries[genome.key] = outcome

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        s = self._counters
        return (
            f"EvaluationStack({type(self.inner).__name__}, "
            f"backend={self.backend_kind!r}, distinct={s.distinct}, "
            f"requests={s.requests})"
        )


def _fresh_exception(exc: Exception) -> Exception:
    """A traceback-free copy of a cached exception, safe to re-raise."""
    try:
        fresh = copy.copy(exc)
        if fresh is exc:  # a pathological __copy__; fall back to the original
            return exc
    except Exception:
        return exc
    fresh.__traceback__ = None
    return fresh
