"""The guidance stack — hints as a serializable, provider-driven layer.

The paper's hints (Section 3) are *data* an IP author attaches to a
generator, yet a search engine consumes them through two moving parts: the
per-generation importance decay and the global confidence knob (which the
adaptive controller turns at run time). This module separates those
concerns:

* :class:`GuidanceState` is the **per-generation snapshot** the genetic
  operators consume: effective (decayed) importances, the bias/target
  channels (via the oriented :class:`~repro.core.hints.HintSet`) and the
  confidence in force *this* generation. Operators never see generation
  counters or raw hint sets.
* :class:`GuidanceProvider` is the **policy** that produces those states.
  The kernel calls :meth:`GuidanceProvider.advance` exactly once per
  generation (feeding back the population's best score) and checkpoints
  provider state alongside RNG streams, so guided searches resume
  bit-identically.

Three providers rebase the pre-existing behavior:

* :class:`StaticHints` — an author :class:`HintSet` as-is; decay is folded
  into each generation's effective importances (the classic Nautilus run).
* :class:`AdaptiveConfidence` — the stall/backoff/recovery confidence
  controller previously hard-wired into ``AdaptiveSearch``, now an engine-
  independent policy any generational engine can compose.
* :class:`EstimatedHints` — runs an :func:`~repro.core.estimation.estimate_hints`
  sweep on first use (charged to the engine's own evaluation stack) and then
  behaves like :class:`StaticHints`; the estimated set is checkpointed so a
  resume never re-sweeps.

The second half of the module is the **wire format**: schema-versioned,
lossless JSON for :class:`ParamHints` / :class:`HintSet` and provider specs,
validated against a target :class:`~repro.core.space.DesignSpace` with
field-level structured errors (:class:`HintSpecError`). This is what lets
``nautilus estimate --output hints.json`` feed ``nautilus submit --hints
hints.json`` — the paper's non-expert estimate-then-search methodology
(Section 4.1) as a two-command pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from .errors import HintError, NautilusError
from .fitness import Objective
from .hints import DEFAULT_IMPORTANCE, HintSet, ParamHints
from .space import DesignSpace

__all__ = [
    "GuidanceState",
    "GuidanceProvider",
    "StaticHints",
    "AdaptiveConfidence",
    "EstimatedHints",
    "HintSpecError",
    "HINTS_SCHEMA_VERSION",
    "hintset_to_json",
    "hintset_from_json",
    "provider_from_spec",
]

#: Version stamp carried by every serialized hint set and provider spec.
HINTS_SCHEMA_VERSION = 1

#: Effective importance of a parameter the author said nothing about — the
#: same float both the decayed and undecayed code paths produce for it.
_NEUTRAL_IMPORTANCE = float(DEFAULT_IMPORTANCE)


# ---------------------------------------------------------------------------
# Per-generation state
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GuidanceState:
    """Everything the operators need to know about guidance, one generation.

    States are immutable snapshots and providers emit a *fresh* object every
    generation (even when nothing changed) — the operators rely on this,
    resolving each state against the space codec once and caching the
    resolution by object identity for the generation's whole breeding pass.

    Attributes:
        generation: The generation this state applies to.
        confidence: The confidence in force (0..1). May differ from the
            author's value when an adaptive provider is steering it.
        hints: The oriented :class:`HintSet` supplying bias/target/ordering/
            step channels, or ``None`` for an unguided (baseline) run.
        effective_importance: Decayed importance per *hinted* parameter at
            this generation. Unhinted parameters are implicitly at the
            default importance (50).
    """

    generation: int
    confidence: float
    hints: HintSet | None
    effective_importance: Mapping[str, float] = field(default_factory=dict)

    @property
    def guided(self) -> bool:
        """Whether any hint channels are active this generation."""
        return self.hints is not None and bool(self.hints.params)

    def for_param(self, name: str) -> ParamHints | None:
        """Hint channels for one parameter, or None on an unguided run."""
        if self.hints is None:
            return None
        return self.hints.for_param(name)

    @classmethod
    def neutral(cls, generation: int = 0) -> "GuidanceState":
        """The unguided state: no channels, zero confidence."""
        return cls(generation=generation, confidence=0.0, hints=None)

    @classmethod
    def from_hints(
        cls,
        hints: HintSet | None,
        generation: int,
        confidence: float | None = None,
    ) -> "GuidanceState":
        """Snapshot a hint set at a generation, optionally overriding
        confidence (the adaptive controller's knob)."""
        if hints is None:
            return cls.neutral(generation)
        return cls(
            generation=generation,
            confidence=hints.confidence if confidence is None else confidence,
            hints=hints,
            effective_importance={
                name: hints.effective_importance(name, generation)
                for name in hints.params
            },
        )


# ---------------------------------------------------------------------------
# Providers
# ---------------------------------------------------------------------------


class GuidanceProvider:
    """Produces one :class:`GuidanceState` per generation for an engine.

    Lifecycle: the engine calls :meth:`bind` once at construction (giving
    the provider its design space, objective, and evaluation stack), the
    kernel calls :meth:`start` at generation 0 and :meth:`advance` once per
    subsequent generation, and the checkpoint layer round-trips
    :meth:`state_dict` / :meth:`load_state_dict`.
    """

    kind: str = "abstract"

    #: The oriented hint set in force, or None (unguided, or not yet
    #: estimated). Engines expose this as their ``hints`` attribute.
    hints: HintSet | None = None

    def bind(
        self,
        space: DesignSpace,
        objective: Objective | None = None,
        evaluator: Any = None,
    ) -> "GuidanceProvider":
        """Attach the provider to a search: validate hints against the
        space and orient them for the objective's direction (when one is
        given). Returns self for chaining."""
        raise NotImplementedError

    def start(self) -> GuidanceState:
        """The state for generation 0 (the initial population)."""
        return self.peek(0)

    def advance(self, generation: int, feedback: float | None = None) -> GuidanceState:
        """The state for the next generation; ``feedback`` is the best
        population score before breeding (None when unavailable)."""
        return self.peek(generation)

    def peek(self, generation: int) -> GuidanceState:
        """The state the provider would produce at a generation, without
        mutating controller state. Used on checkpoint resume."""
        raise NotImplementedError

    # -- persistence ------------------------------------------------------------

    def state_dict(self) -> dict[str, Any]:
        """JSON-serializable mutable state, checkpointed by the kernel."""
        return {"kind": self.kind}

    def load_state_dict(self, payload: Mapping[str, Any]) -> None:
        """Restore mutable state captured by :meth:`state_dict`."""
        self._check_kind(payload)

    def to_spec(self) -> dict[str, Any]:
        """Schema-versioned construction spec (see :func:`provider_from_spec`)."""
        raise NotImplementedError

    def _check_kind(self, payload: Mapping[str, Any]) -> None:
        kind = payload.get("kind")
        if kind != self.kind:
            raise NautilusError(
                f"checkpointed guidance state is for provider kind {kind!r}, "
                f"but this search uses {self.kind!r}"
            )

    @staticmethod
    def _orient(
        hints: HintSet, space: DesignSpace, objective: Objective | None
    ) -> HintSet:
        oriented = hints
        if objective is not None and not objective.maximizing:
            oriented = oriented.for_minimization()
        oriented.validate(space)
        return oriented


class StaticHints(GuidanceProvider):
    """An author hint set, applied as-is; decay folds into each state."""

    kind = "static"

    def __init__(self, hints: HintSet):
        if hints is None:
            raise NautilusError("StaticHints requires a HintSet")
        self._author = hints
        self.hints = hints

    def bind(self, space, objective=None, evaluator=None):
        self.hints = self._orient(self._author, space, objective)
        return self

    def peek(self, generation: int) -> GuidanceState:
        return GuidanceState.from_hints(self.hints, generation)

    def to_spec(self) -> dict[str, Any]:
        return {
            "schema": HINTS_SCHEMA_VERSION,
            "kind": self.kind,
            "hints": hintset_to_json(self._author),
        }


class AdaptiveConfidence(GuidanceProvider):
    """The paper-faithful adaptive variant of Nautilus as a guidance policy.

    The search trusts the author's hints while they deliver: every
    generation it looks at the best score of the incoming population; on
    improvement, confidence recovers by ``recovery`` (never above the
    author's value); after ``patience`` consecutive stalled generations it
    backs off by ``backoff`` (never below ``min_confidence``), so a run
    started with wrong hints degrades toward the baseline GA instead of
    being dragged to a poor corner of the space.
    """

    kind = "adaptive"

    def __init__(
        self,
        hints: HintSet,
        patience: int = 6,
        backoff: float = 0.6,
        recovery: float = 1.15,
        min_confidence: float = 0.05,
    ):
        if hints is None:
            raise NautilusError("AdaptiveConfidence requires hints to adapt")
        if patience < 1:
            raise NautilusError(f"patience must be >= 1, got {patience}")
        if not 0.0 < backoff < 1.0:
            raise NautilusError(f"backoff must be in (0, 1), got {backoff}")
        if recovery < 1.0:
            raise NautilusError(f"recovery must be >= 1, got {recovery}")
        self._author = hints
        self.hints = hints
        self.patience = patience
        self.backoff = backoff
        self.recovery = recovery
        self.min_confidence = min_confidence
        self._author_confidence = hints.confidence
        self.confidence = hints.confidence
        self._stall = 0
        self._last_best = float("-inf")
        #: ``(generation, confidence)`` pairs, one per generation advanced —
        #: the run's confidence trajectory for analysis and plots.
        self.confidence_trace: list[tuple[int, float]] = []

    def bind(self, space, objective=None, evaluator=None):
        self.hints = self._orient(self._author, space, objective)
        return self

    def _set_confidence(self, value: float) -> None:
        self.confidence = min(max(value, self.min_confidence), self._author_confidence)

    def advance(self, generation: int, feedback: float | None = None) -> GuidanceState:
        if feedback is not None:
            if feedback > self._last_best:
                self._last_best = feedback
                self._stall = 0
                self._set_confidence(self.confidence * self.recovery)
            else:
                self._stall += 1
                if self._stall >= self.patience:
                    self._stall = 0
                    self._set_confidence(self.confidence * self.backoff)
        self.confidence_trace.append((generation, self.confidence))
        return self.peek(generation)

    def peek(self, generation: int) -> GuidanceState:
        return GuidanceState.from_hints(self.hints, generation, self.confidence)

    def state_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "confidence": self.confidence,
            "stall": self._stall,
            "last_best": self._last_best,
            "trace": [[g, c] for g, c in self.confidence_trace],
        }

    def load_state_dict(self, payload: Mapping[str, Any]) -> None:
        self._check_kind(payload)
        self.confidence = float(payload["confidence"])
        self._stall = int(payload["stall"])
        self._last_best = float(payload["last_best"])
        self.confidence_trace = [(int(g), float(c)) for g, c in payload["trace"]]

    def to_spec(self) -> dict[str, Any]:
        return {
            "schema": HINTS_SCHEMA_VERSION,
            "kind": self.kind,
            "hints": hintset_to_json(self._author),
            "patience": self.patience,
            "backoff": self.backoff,
            "recovery": self.recovery,
            "min_confidence": self.min_confidence,
        }


class EstimatedHints(GuidanceProvider):
    """Derive hints from a short characterization sweep, then apply them.

    The sweep (:func:`~repro.core.estimation.estimate_hints`) runs lazily on
    the first state request, against the engine's own evaluation stack — so
    sweep points are cached, charged to the run's distinct-evaluation budget,
    and shared with the search itself. The estimated set is carried in
    :meth:`state_dict`, so a checkpoint resume never re-sweeps.
    """

    kind = "estimated"

    def __init__(
        self,
        budget: int = 80,
        confidence: float = 0.5,
        seed: int | None = None,
        min_bias: float = 0.2,
        refine: bool = True,
    ):
        if budget < 1:
            raise NautilusError(f"estimation budget must be >= 1, got {budget}")
        self.budget = budget
        self.confidence = confidence
        self.seed = seed
        self.min_bias = min_bias
        self.refine = refine
        self.hints = None
        #: Distinct evaluations the sweep consumed (None until it runs).
        self.used: int | None = None
        self._space: DesignSpace | None = None
        self._objective: Objective | None = None
        self._evaluator: Any = None

    def bind(self, space, objective=None, evaluator=None):
        self._space = space
        self._objective = objective
        self._evaluator = evaluator
        if self.hints is not None:  # restored from a checkpoint
            self.hints.validate(space)
        return self

    def _ensure_estimated(self) -> None:
        if self.hints is not None:
            return
        if self._space is None or self._evaluator is None:
            raise NautilusError(
                "EstimatedHints must be bound to a space and evaluator "
                "before it can sweep"
            )
        from .estimation import estimate_hints

        hints, used = estimate_hints(
            self._space,
            self._evaluator,
            self._objective,
            budget=self.budget,
            confidence=self.confidence,
            seed=self.seed,
            min_bias=self.min_bias,
            refine=self.refine,
        )
        # estimate_hints derives bias w.r.t. the raw metric; reorient for
        # the engine's internal (maximized) score, like any author hint set.
        if self._objective is not None and not self._objective.maximizing:
            hints = hints.for_minimization()
        self.hints = hints
        self.used = used

    def peek(self, generation: int) -> GuidanceState:
        self._ensure_estimated()
        return GuidanceState.from_hints(self.hints, generation)

    def state_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "hints": None if self.hints is None else hintset_to_json(self.hints),
            "used": self.used,
        }

    def load_state_dict(self, payload: Mapping[str, Any]) -> None:
        self._check_kind(payload)
        hints = payload.get("hints")
        self.hints = None if hints is None else hintset_from_json(hints)
        self.used = payload.get("used")

    def to_spec(self) -> dict[str, Any]:
        return {
            "schema": HINTS_SCHEMA_VERSION,
            "kind": self.kind,
            "budget": self.budget,
            "confidence": self.confidence,
            "seed": self.seed,
            "min_bias": self.min_bias,
            "refine": self.refine,
        }


# ---------------------------------------------------------------------------
# JSON wire format
# ---------------------------------------------------------------------------


class HintSpecError(HintError):
    """A serialized hint spec is invalid; carries field-level errors.

    ``errors`` is a list of ``{"field": ..., "message": ...}`` dicts — the
    payload the service surfaces in its HTTP 400 responses so a client can
    point at the exact offending field (``params.depth.bias``, say) instead
    of guessing from a prose message.
    """

    def __init__(self, message: str, errors: list[dict[str, str]] | None = None):
        self.errors = errors or []
        if self.errors:
            details = "; ".join(
                f"{e['field']}: {e['message']}" if e["field"] else e["message"]
                for e in self.errors
            )
            message = f"{message}: {details}"
        super().__init__(message)


def hintset_to_json(hints: HintSet) -> dict[str, Any]:
    """Serialize a :class:`HintSet` losslessly to plain JSON types."""
    params: dict[str, Any] = {}
    for name in sorted(hints.params):
        params[name] = _param_hints_to_json(hints.params[name])
    return {
        "schema": HINTS_SCHEMA_VERSION,
        "confidence": hints.confidence,
        "importance_decay": hints.importance_decay,
        "params": params,
    }


def _param_hints_to_json(hints: ParamHints) -> dict[str, Any]:
    payload: dict[str, Any] = {
        "importance": hints.importance,
        "bias": hints.bias,
    }
    if hints.target is not None:
        payload["target"] = _value_to_json(hints.target)
    if hints.ordering is not None:
        payload["ordering"] = [_value_to_json(v) for v in hints.ordering]
    if hints.step is not None:
        payload["step"] = hints.step
    return payload


def _value_to_json(value: Any) -> Any:
    # Tuples survive the trip as lists; _value_from_json restores them.
    if isinstance(value, tuple):
        return {"__tuple__": [_value_to_json(v) for v in value]}
    return value


def _value_from_json(value: Any) -> Any:
    if isinstance(value, Mapping) and set(value) == {"__tuple__"}:
        return tuple(_value_from_json(v) for v in value["__tuple__"])
    return value


_HINTSET_KEYS = {"schema", "confidence", "importance_decay", "params"}
_PARAM_KEYS = {"importance", "bias", "target", "ordering", "step"}


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def hintset_from_json(
    payload: Any, space: DesignSpace | None = None
) -> HintSet:
    """Parse a serialized hint set, collecting field-level errors.

    With ``space`` given, the result is additionally validated against that
    design space (unknown parameters, out-of-domain targets, non-permutation
    orderings), still with per-field attribution. Raises
    :class:`HintSpecError` carrying every problem found.
    """
    if not isinstance(payload, Mapping):
        raise HintSpecError(
            "invalid hint spec",
            [{"field": "", "message": f"expected a JSON object, got {type(payload).__name__}"}],
        )
    errors: list[dict[str, str]] = []
    schema = payload.get("schema")
    if schema != HINTS_SCHEMA_VERSION:
        raise HintSpecError(
            "invalid hint spec",
            [{
                "field": "schema",
                "message": f"unsupported hints schema {schema!r}; "
                f"this build speaks schema {HINTS_SCHEMA_VERSION}",
            }],
        )
    for key in sorted(set(payload) - _HINTSET_KEYS):
        errors.append({"field": key, "message": "unknown field"})

    confidence = payload.get("confidence", 0.5)
    if not _is_number(confidence):
        errors.append(
            {"field": "confidence", "message": "must be a number in [0, 1]"}
        )
        confidence = 0.5
    decay = payload.get("importance_decay", 0.0)
    if not _is_number(decay):
        errors.append(
            {"field": "importance_decay", "message": "must be a number in [0, 1]"}
        )
        decay = 0.0

    parsed: dict[str, ParamHints] = {}
    params_payload = payload.get("params", {})
    if not isinstance(params_payload, Mapping):
        errors.append({"field": "params", "message": "must be an object"})
    else:
        for name in sorted(params_payload):
            entry = params_payload[name]
            hints = _param_hints_from_json(entry, f"params.{name}", errors)
            if hints is not None:
                parsed[name] = hints

    if errors:
        raise HintSpecError("invalid hint spec", errors)

    try:
        result = HintSet(parsed, confidence=confidence, importance_decay=decay)
    except HintError as exc:
        field_name = "confidence" if "confidence" in str(exc) else "importance_decay"
        raise HintSpecError(
            "invalid hint spec", [{"field": field_name, "message": str(exc)}]
        ) from None

    if space is not None:
        for name, hints in result.params.items():
            if name not in space:
                errors.append({
                    "field": f"params.{name}",
                    "message": f"unknown parameter for space {space.name!r} "
                    f"(has {list(space.param_names)})",
                })
                continue
            try:
                HintSet._validate_param(space.param(name), hints)
            except HintError as exc:
                errors.append({"field": f"params.{name}", "message": str(exc)})
        if errors:
            raise HintSpecError("invalid hint spec", errors)
    return result


def _param_hints_from_json(
    entry: Any, field_name: str, errors: list[dict[str, str]]
) -> ParamHints | None:
    if not isinstance(entry, Mapping):
        errors.append({"field": field_name, "message": "must be an object"})
        return None
    bad = False
    for key in sorted(set(entry) - _PARAM_KEYS):
        errors.append({"field": f"{field_name}.{key}", "message": "unknown field"})
        bad = True
    kwargs: dict[str, Any] = {}
    importance = entry.get("importance", DEFAULT_IMPORTANCE)
    if not isinstance(importance, int) or isinstance(importance, bool):
        errors.append(
            {"field": f"{field_name}.importance", "message": "must be an integer"}
        )
        bad = True
    else:
        kwargs["importance"] = importance
    bias = entry.get("bias", 0.0)
    if not _is_number(bias):
        errors.append({"field": f"{field_name}.bias", "message": "must be a number"})
        bad = True
    else:
        kwargs["bias"] = bias
    if "target" in entry:
        kwargs["target"] = _value_from_json(entry["target"])
    ordering = entry.get("ordering")
    if ordering is not None:
        if not isinstance(ordering, (list, tuple)):
            errors.append(
                {"field": f"{field_name}.ordering", "message": "must be a list"}
            )
            bad = True
        else:
            kwargs["ordering"] = tuple(_value_from_json(v) for v in ordering)
    step = entry.get("step")
    if step is not None:
        if not isinstance(step, int) or isinstance(step, bool):
            errors.append(
                {"field": f"{field_name}.step", "message": "must be an integer >= 1"}
            )
            bad = True
        else:
            kwargs["step"] = step
    if bad:
        return None
    try:
        return ParamHints(**kwargs)
    except HintError as exc:
        errors.append({"field": field_name, "message": str(exc)})
        return None


# ---------------------------------------------------------------------------
# Provider specs
# ---------------------------------------------------------------------------

_PROVIDER_KINDS = ("static", "adaptive", "estimated", "archive")


def provider_from_spec(spec: Any) -> GuidanceProvider:
    """Build a provider from its schema-versioned construction spec."""
    if not isinstance(spec, Mapping):
        raise HintSpecError(
            "invalid provider spec",
            [{"field": "", "message": f"expected a JSON object, got {type(spec).__name__}"}],
        )
    schema = spec.get("schema")
    if schema != HINTS_SCHEMA_VERSION:
        raise HintSpecError(
            "invalid provider spec",
            [{
                "field": "schema",
                "message": f"unsupported schema {schema!r}; "
                f"this build speaks schema {HINTS_SCHEMA_VERSION}",
            }],
        )
    kind = spec.get("kind")
    if kind not in _PROVIDER_KINDS:
        raise HintSpecError(
            "invalid provider spec",
            [{
                "field": "kind",
                "message": f"unknown provider kind {kind!r}; "
                f"expected one of {list(_PROVIDER_KINDS)}",
            }],
        )
    if kind == "static":
        return StaticHints(hintset_from_json(spec.get("hints")))
    if kind == "adaptive":
        return AdaptiveConfidence(
            hintset_from_json(spec.get("hints")),
            patience=spec.get("patience", 6),
            backoff=spec.get("backoff", 0.6),
            recovery=spec.get("recovery", 1.15),
            min_confidence=spec.get("min_confidence", 0.05),
        )
    if kind == "archive":
        # Imported lazily: repro.archive depends on this module.
        from ..archive import ArchiveGuidance

        return ArchiveGuidance(
            root=spec.get("root"),
            confidence=spec.get("confidence", 0.5),
            min_rows=spec.get("min_rows", 20),
            min_bias=spec.get("min_bias", 0.2),
            top_fraction=spec.get("top_fraction", 0.25),
        )
    return EstimatedHints(
        budget=spec.get("budget", 80),
        confidence=spec.get("confidence", 0.5),
        seed=spec.get("seed"),
        min_bias=spec.get("min_bias", 0.2),
        refine=spec.get("refine", True),
    )
