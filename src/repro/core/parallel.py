"""Parallel fitness evaluation.

Section 2 of the paper: "the population size effectively caps the available
parallelism during the evaluation phase of the algorithm that calculates the
fitness scores" — in production, each fitness evaluation is an independent
CAD job that farms out to a cluster. This module provides that evaluation
layer:

* :class:`BatchEvaluator` — the protocol: anything with ``evaluate_many``.
* :class:`ParallelEvaluator` — runs a batch of evaluations on a thread or
  process pool. Results are returned in submission order and exceptions are
  propagated per-design (an infeasible design doesn't poison its batch).

The engines call ``evaluate_many`` when the evaluator provides it, falling
back to sequential ``evaluate`` otherwise, so parallelism is purely opt-in
and never changes results: a generation's designs are independent by
construction.
"""

from __future__ import annotations

from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Protocol, Sequence

from .errors import NautilusError
from .evaluator import Evaluator
from .fitness import Metrics
from .genome import Genome

__all__ = ["BatchEvaluator", "ParallelEvaluator", "evaluate_batch"]


class BatchEvaluator(Protocol):
    """An evaluator that can process many designs at once."""

    def evaluate(self, genome: Genome) -> Metrics: ...  # pragma: no cover

    def evaluate_many(
        self, genomes: Sequence[Genome]
    ) -> list[Metrics | Exception]: ...  # pragma: no cover


def evaluate_batch(
    evaluator: Evaluator, genomes: Sequence[Genome]
) -> list[Metrics | Exception]:
    """Evaluate a batch, using ``evaluate_many`` when available.

    Returns one entry per genome in order: the metrics dict, or the
    exception the evaluation raised (callers re-raise or score as
    infeasible as appropriate).
    """
    many = getattr(evaluator, "evaluate_many", None)
    if many is not None:
        return many(genomes)
    results: list[Metrics | Exception] = []
    for genome in genomes:
        try:
            results.append(evaluator.evaluate(genome))
        except Exception as exc:
            results.append(exc)
    return results


class ParallelEvaluator:
    """Fan evaluation of a batch out to a worker pool.

    Args:
        inner: The underlying evaluator. For ``kind="process"`` it must be
            picklable (module-level classes like
            :class:`repro.noc.space.RouterEvaluator` are).
        workers: Pool size. The useful maximum is the GA population size —
            the paper's parallelism cap.
        kind: ``"thread"`` (default; right for evaluators that release the
            GIL or wrap external tools) or ``"process"`` (right for pure-
            Python compute-bound evaluators).
    """

    def __init__(self, inner: Evaluator, workers: int = 4, kind: str = "thread"):
        if workers < 1:
            raise NautilusError("workers must be >= 1")
        if kind not in ("thread", "process"):
            raise NautilusError(f"kind must be 'thread' or 'process', got {kind!r}")
        self.inner = inner
        self.workers = workers
        self.kind = kind

    def _executor(self) -> Executor:
        if self.kind == "process":
            return ProcessPoolExecutor(max_workers=self.workers)
        return ThreadPoolExecutor(max_workers=self.workers)

    def evaluate(self, genome: Genome) -> Metrics:
        """Single-design evaluation passes straight through."""
        return self.inner.evaluate(genome)

    def evaluate_many(
        self, genomes: Sequence[Genome]
    ) -> list[Metrics | Exception]:
        """Evaluate a batch concurrently, preserving order.

        Per-design exceptions (e.g. ``InfeasibleDesignError``) are captured
        and returned in place rather than aborting the batch — exactly how
        a cluster of synthesis jobs behaves when one run fails.
        """
        if not genomes:
            return []
        with self._executor() as pool:
            futures = [pool.submit(self.inner.evaluate, g) for g in genomes]
            results: list[Metrics | Exception] = []
            for future in futures:
                try:
                    results.append(future.result())
                except Exception as exc:
                    results.append(exc)
            return results
