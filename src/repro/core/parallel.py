"""Parallel fitness evaluation (legacy entry points).

Section 2 of the paper: "the population size effectively caps the available
parallelism during the evaluation phase of the algorithm that calculates the
fitness scores" — in production, each fitness evaluation is an independent
CAD job that farms out to a cluster.

Since the evaluation-stack refactor the actual pool fan-out lives in the
backend layer of :class:`repro.core.evalstack.EvaluationStack`
(``backend="thread"`` / ``"process"``); this module keeps the historical
entry points as thin shims (see ``docs/evaluation.md``):

* :class:`BatchEvaluator` — the protocol: anything with ``evaluate_many``.
* :class:`ParallelEvaluator` — a bare pool backend with the old API: runs a
  batch on a thread or process pool, results in submission order,
  exceptions propagated per-design (an infeasible design doesn't poison its
  batch). It performs no caching — wrap it in a stack (or let an engine do
  so) for memoization and accounting.
* :func:`evaluate_batch` — run one batch through an evaluator, using its
  ``evaluate_many`` when available.
"""

from __future__ import annotations

from typing import Protocol, Sequence

from .errors import NautilusError
from .evalstack import _PoolBackend, run_backend_batch
from .evaluator import Evaluator
from .fitness import Metrics
from .genome import Genome

__all__ = ["BatchEvaluator", "ParallelEvaluator", "evaluate_batch"]


class BatchEvaluator(Protocol):
    """An evaluator that can process many designs at once."""

    def evaluate(self, genome: Genome) -> Metrics: ...  # pragma: no cover

    def evaluate_many(
        self, genomes: Sequence[Genome]
    ) -> list[Metrics | Exception]: ...  # pragma: no cover


def evaluate_batch(
    evaluator: Evaluator, genomes: Sequence[Genome]
) -> list[Metrics | Exception]:
    """Evaluate a batch, using ``evaluate_many`` when available.

    Returns one entry per genome in order: the metrics dict, or the
    exception the evaluation raised (callers re-raise or score as
    infeasible as appropriate).
    """
    many = getattr(evaluator, "evaluate_many", None)
    if many is not None:
        return many(genomes)
    return run_backend_batch(evaluator, genomes)


class ParallelEvaluator:
    """Fan evaluation of a batch out to a worker pool.

    Args:
        inner: The underlying evaluator. For ``kind="process"`` it must be
            picklable (module-level classes like
            :class:`repro.noc.space.RouterEvaluator` are).
        workers: Pool size. The useful maximum is the GA population size —
            the paper's parallelism cap.
        kind: ``"thread"`` (default; right for evaluators that release the
            GIL or wrap external tools) or ``"process"`` (right for pure-
            Python compute-bound evaluators).
    """

    def __init__(self, inner: Evaluator, workers: int = 4, kind: str = "thread"):
        if kind not in ("thread", "process"):
            raise NautilusError(f"kind must be 'thread' or 'process', got {kind!r}")
        self.inner = inner
        self.workers = workers
        self.kind = kind
        self._backend = _PoolBackend(inner, workers=workers, kind=kind)

    def evaluate(self, genome: Genome) -> Metrics:
        """Single-design evaluation passes straight through."""
        return self.inner.evaluate(genome)

    def evaluate_many(
        self, genomes: Sequence[Genome]
    ) -> list[Metrics | Exception]:
        """Evaluate a batch concurrently, preserving order.

        Per-design exceptions (e.g. ``InfeasibleDesignError``) are captured
        and returned in place rather than aborting the batch — exactly how
        a cluster of synthesis jobs behaves when one run fails.
        """
        return self._backend.evaluate_many(genomes)
