"""Multi-objective (Pareto) search — an extension beyond the paper's queries.

The paper's related-work section contrasts Nautilus with active-learning
approaches that "model the entire Pareto-optimal set of design points across
a multi-objective space" and argues query-based search scales better. Still,
IP users often want to *see* a trade-off front (Figure 2 is one), so this
module extends the engine with an NSGA-II-style multi-objective GA that
reuses the whole Nautilus substrate:

* the same genomes/spaces/evaluators (and distinct-evaluation accounting);
* the same hint-guided mutation operators — importance, decay, orderings and
  steps apply unchanged; bias/target hints, which are inherently directional,
  are taken as authored (pointing at the region of interest);
* classic fast non-dominated sorting plus crowding-distance selection
  (Deb et al., 2002);
* the same :class:`~repro.core.kernel.SearchKernel` substrate as the
  single-objective engines — NSGA-II is just a different selection
  strategy (rank/crowding tournament) and survivor rule plugged into the
  shared generational loop, so :class:`ParetoSearch` speaks the full
  incremental protocol (``start()``/``step()``/``stop_reason``,
  ``max_evaluations``/``stall_generations`` cutoffs, RNG-stream
  checkpointing, and the structured :class:`~repro.core.kernel.RunEvent`
  trace) and the service can schedule and resume Pareto campaigns like any
  other engine.

Progress bookkeeping: the per-generation :class:`GenerationRecord` curve is
the projection of the front onto the *first* objective (best raw/score of
the non-dominated set), so multi-objective campaigns plot on the same axes
as single-objective ones; stall detection instead watches the whole front —
a generation "improves" when the non-dominated set changes at all.
"""

from __future__ import annotations

from typing import Any, Sequence

from .engine import GAConfig, _CROSSOVERS
from .errors import InfeasibleDesignError, NautilusError
from .evalstack import EvalStats
from .evaluator import Evaluator
from .fitness import Objective
from .genome import Genome
from .guidance import GuidanceProvider, StaticHints
from .hints import HintSet
from .kernel import GenerationalEngine, GenerationRecord, RunEvent
from .operators import BreedingPipeline, GeneticOperators
from .selection import Individual
from .space import DesignSpace

__all__ = [
    "ParetoIndividual",
    "ParetoResult",
    "ParetoSearch",
    "dominates",
    "non_dominated_sort",
    "crowding_distances",
    "hypervolume_2d",
]


class ParetoIndividual:
    """A genome scored against several objectives."""

    __slots__ = ("genome", "raws", "scores", "rank", "crowding")

    def __init__(self, genome: Genome, raws: tuple[float, ...], scores: tuple[float, ...]):
        self.genome = genome
        #: Raw metric values in objective order (natural signs).
        self.raws = raws
        #: Internal scores, each higher-is-better.
        self.scores = scores
        self.rank = 0
        self.crowding = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ParetoIndividual(raws={self.raws}, rank={self.rank})"


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """Whether score vector ``a`` Pareto-dominates ``b`` (higher is better)."""
    at_least_as_good = all(x >= y for x, y in zip(a, b))
    strictly_better = any(x > y for x, y in zip(a, b))
    return at_least_as_good and strictly_better


def non_dominated_sort(
    population: Sequence[ParetoIndividual],
) -> list[list[ParetoIndividual]]:
    """Fast non-dominated sorting into fronts (front 0 = non-dominated)."""
    dominated_by: list[list[int]] = [[] for _ in population]
    domination_count = [0] * len(population)
    fronts: list[list[int]] = [[]]
    for i, a in enumerate(population):
        for j, b in enumerate(population):
            if i == j:
                continue
            if dominates(a.scores, b.scores):
                dominated_by[i].append(j)
            elif dominates(b.scores, a.scores):
                domination_count[i] += 1
        if domination_count[i] == 0:
            population[i].rank = 0
            fronts[0].append(i)
    current = 0
    while fronts[current]:
        next_front: list[int] = []
        for i in fronts[current]:
            for j in dominated_by[i]:
                domination_count[j] -= 1
                if domination_count[j] == 0:
                    population[j].rank = current + 1
                    next_front.append(j)
        current += 1
        fronts.append(next_front)
    return [
        [population[i] for i in front] for front in fronts if front
    ]


def crowding_distances(front: Sequence[ParetoIndividual]) -> None:
    """Assign crowding distances in place (extremes get infinity)."""
    n = len(front)
    for individual in front:
        individual.crowding = 0.0
    if n <= 2:
        for individual in front:
            individual.crowding = float("inf")
        return
    num_objectives = len(front[0].scores)
    for m in range(num_objectives):
        ordered = sorted(front, key=lambda ind: ind.scores[m])
        ordered[0].crowding = float("inf")
        ordered[-1].crowding = float("inf")
        span = ordered[-1].scores[m] - ordered[0].scores[m]
        if span <= 0.0:
            continue
        for k in range(1, n - 1):
            ordered[k].crowding += (
                ordered[k + 1].scores[m] - ordered[k - 1].scores[m]
            ) / span


def hypervolume_2d(
    front: Sequence[tuple[float, float]], reference: tuple[float, float]
) -> float:
    """2-D hypervolume (higher-is-better scores) w.r.t. a reference point."""
    points = sorted(
        (p for p in front if p[0] > reference[0] and p[1] > reference[1]),
        key=lambda p: p[0],
    )
    # Keep only the non-dominated staircase.
    volume = 0.0
    best_y = reference[1]
    for x, y in sorted(points, key=lambda p: -p[0]):
        if y > best_y:
            volume += (x - reference[0]) * (y - best_y)
            best_y = y
    return volume


class ParetoResult:
    """Outcome of a multi-objective search."""

    def __init__(
        self,
        objectives: Sequence[Objective],
        front: list[ParetoIndividual],
        distinct_evaluations: int,
        eval_stats: EvalStats | None = None,
        label: str = "pareto",
        stop_reason: str = "horizon",
        records: Sequence[GenerationRecord] = (),
        events: Sequence[RunEvent] = (),
    ):
        self.objectives = list(objectives)
        self.front = front
        self.distinct_evaluations = distinct_evaluations
        #: Evaluation-pipeline counters/timers for the whole run.
        self.eval_stats = eval_stats or EvalStats()
        self.label = label
        #: Why the search ended (same vocabulary as single-objective runs).
        self.stop_reason = stop_reason
        #: First-objective projection of the front, one record per generation.
        self.records = list(records)
        #: The structured trace of the run (empty for hand-built results).
        self.events = list(events)

    def front_raws(self) -> list[tuple[float, ...]]:
        """Raw metric tuples of the non-dominated set, sorted by the first."""
        return sorted(ind.raws for ind in self.front)

    def front_configs(self) -> list[dict[str, Any]]:
        """Parameter assignments of the non-dominated set."""
        return [ind.genome.as_dict() for ind in self.front]

    def curve(self) -> list[tuple[int, float]]:
        """(distinct evals, first-objective best raw) after each generation."""
        return [(r.distinct_evaluations, r.best_raw) for r in self.records]

    def operator_timings(self) -> dict[str, dict[str, float]]:
        """{operator: {calls, time_s}} aggregated from the run's trace."""
        totals: dict[str, dict[str, float]] = {}
        for event in self.events:
            if event.kind != "operator-applied":
                continue
            entry = totals.setdefault(
                str(event.payload.get("operator", "?")),
                {"calls": 0, "time_s": 0.0},
            )
            entry["calls"] += int(event.payload.get("calls", 0))
            entry["time_s"] += float(event.payload.get("time_s", 0.0))
        return totals

    def hypervolume(self, reference_raws: tuple[float, float]) -> float:
        """2-objective hypervolume against a reference point in raw units."""
        if len(self.objectives) != 2:
            raise NautilusError("hypervolume() supports exactly 2 objectives")
        ref = tuple(
            raw if obj.maximizing else -raw
            for obj, raw in zip(self.objectives, reference_raws)
        )
        points = [
            tuple(
                raw if obj.maximizing else -raw
                for obj, raw in zip(self.objectives, ind.raws)
            )
            for ind in self.front
        ]
        return hypervolume_2d(points, ref)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ParetoResult({len(self.front)} non-dominated designs, "
            f"{self.distinct_evaluations} evals)"
        )


class ParetoSearch(GenerationalEngine):
    """NSGA-II-style multi-objective search over a design space.

    Args:
        space: Design space.
        evaluator: Metric source (wrapped in a counting cache).
        objectives: Two or more objectives; each may be a metric name
            wrapped by :func:`~repro.core.fitness.maximize` /
            :func:`~repro.core.fitness.minimize` or a composite.
        config: Reuses :class:`~repro.core.engine.GAConfig`; multi-objective
            runs usually want a larger population than single-query runs.
            ``max_evaluations`` and ``stall_generations`` cut the run off
            with the same budget → horizon → stall precedence as the
            single-objective engines (a generation counts as *stalled* when
            the non-dominated front did not change).
        hints: Optional author hints; see the module docstring for how the
            directional hints are interpreted. Shorthand for
            ``guidance=StaticHints(hints)``.
        label: Free-form label carried into the result.
        guidance: A :class:`~repro.core.guidance.GuidanceProvider`;
            mutually exclusive with ``hints``. Providers are bound without
            an orienting objective — multi-objective hints are taken as
            authored (see the module docstring).
    """

    def __init__(
        self,
        space: DesignSpace,
        evaluator: Evaluator,
        objectives: Sequence[Objective],
        config: GAConfig | None = None,
        hints: HintSet | None = None,
        label: str = "pareto",
        guidance: GuidanceProvider | None = None,
        clock=None,
    ):
        if len(objectives) < 2:
            raise NautilusError("ParetoSearch needs at least 2 objectives")
        if hints is not None and guidance is not None:
            raise NautilusError(
                "pass either hints or a guidance provider, not both"
            )
        self.objectives = list(objectives)
        self.config = config or GAConfig(population_size=24, elitism=1)
        super().__init__(
            space,
            evaluator,
            # Records/curves project onto the first objective.
            self.objectives[0],
            label=label,
            seed=self.config.seed,
            max_evaluations=self.config.max_evaluations,
            horizon=self.config.generations,
            stall_generations=self.config.stall_generations,
            split_rngs=self.config.rng_streams == "split",
            observability=self.config.observability,
            tracing=self.config.tracing,
            clock=clock,
        )
        provider = guidance if guidance is not None else (
            StaticHints(hints) if hints is not None else None
        )
        if provider is not None:
            # No orienting objective: directional hints point at the region
            # of interest as authored (module docstring), so only validate.
            provider.bind(space, None, self._counter)
        self._guidance = provider
        self.operators = GeneticOperators(space, self.config.mutation_rate)
        if self.config.observability:
            from ..obs.attribution import BreedingObserver

            self.operators.observer = BreedingObserver()
        self.pipeline = BreedingPipeline(
            space,
            self.operators,
            self._tournament,
            _CROSSOVERS[self.config.crossover],
            self.config.crossover_rate,
            clock=self._clock,
        )
        self._front_signature: tuple = ()

    @property
    def hints(self) -> HintSet | None:
        """The hint set in force, or None on an unguided run."""
        return self._guidance.hints if self._guidance is not None else None

    # -- scoring ------------------------------------------------------------------

    def _assess(self, genome: Genome) -> ParetoIndividual:
        return self._assess_all([genome])[0]

    def _assess_all(self, genomes: Sequence[Genome]) -> list[ParetoIndividual]:
        """Score genomes as one batch, outside the kernel's traced path."""
        return self._to_individuals(genomes, self._counter.evaluate_many(genomes))

    def _to_individuals(
        self, genomes: Sequence[Genome], outcomes: Sequence
    ) -> list[ParetoIndividual]:
        individuals = []
        for genome, outcome in zip(genomes, outcomes):
            if isinstance(outcome, InfeasibleDesignError):
                worst = tuple(float("-inf") for _ in self.objectives)
                nan = tuple(float("nan") for _ in self.objectives)
                individuals.append(ParetoIndividual(genome, nan, worst))
            elif isinstance(outcome, Exception):
                raise outcome
            else:
                raws = tuple(obj.raw(outcome) for obj in self.objectives)
                scores = tuple(obj.score(outcome) for obj in self.objectives)
                individuals.append(ParetoIndividual(genome, raws, scores))
        return individuals

    @staticmethod
    def _tournament(
        population: Sequence[ParetoIndividual], rng
    ) -> ParetoIndividual:
        a = population[rng.randrange(len(population))]
        b = population[rng.randrange(len(population))]
        if a.rank != b.rank:
            return a if a.rank < b.rank else b
        return a if a.crowding >= b.crowding else b

    # -- kernel hooks --------------------------------------------------------------

    def _guidance_feedback(self) -> float | None:
        # Project onto the first objective, like the record/curve bookkeeping.
        if not self._population:
            return None
        return max(ind.scores[0] for ind in self._population)

    def _initial_genomes(self) -> list[Genome]:
        return self.space.random_population(
            self.config.population_size, self.rngs.init
        )

    def _propose(
        self, generation: int, timings: dict[str, list[float]]
    ) -> list[Genome]:
        # Breed the whole generation first, then score it as one batch —
        # breeding never reads fitness of the offspring, so this is
        # bit-identical to assessing each child as it is bred, and it
        # gives the stack population-sized batches to fan out. NSGA-II's
        # elitism lives in the survivor rule (parents compete in the pool),
        # so no individuals are copied here.
        return [
            self.pipeline.breed(
                self._population, self._guidance_state, self.rngs, timings
            )
            for _ in range(self.config.population_size)
        ]

    def _offspring_attribution(self, offspring) -> list:
        # Every offspring is bred (NSGA-II elitism lives in the survivor
        # rule); attribution projects onto the first objective like the
        # record/curve bookkeeping.
        return [
            (ind.scores[0], ind.scores[0] != float("-inf")) for ind in offspring
        ]

    def _survivors(self, offspring: list[ParetoIndividual]) -> list[ParetoIndividual]:
        # Environmental selection over the combined parent+offspring pool.
        pool = self._population + offspring
        fronts = non_dominated_sort(pool)
        survivors: list[ParetoIndividual] = []
        for front in fronts:
            crowding_distances(front)
            if len(survivors) + len(front) <= self.config.population_size:
                survivors.extend(front)
            else:
                remaining = self.config.population_size - len(survivors)
                survivors.extend(
                    sorted(front, key=lambda ind: -ind.crowding)[:remaining]
                )
                break
        self._rank(survivors)
        return survivors

    def _observe_start(self) -> None:
        self._rank(self._population)
        self._front_signature = self._signature()
        self._best = self._projected_best()

    def _observe(self, generation: int) -> bool:
        signature = self._signature()
        improved = signature != self._front_signature
        self._front_signature = signature
        self._best = self._projected_best()
        return improved

    def _make_record(self, generation: int) -> GenerationRecord:
        finite = [
            ind.scores[0]
            for ind in self._population
            if ind.scores[0] != float("-inf")
        ]
        mean_score = sum(finite) / len(finite) if finite else float("-inf")
        return GenerationRecord(
            generation=generation,
            best_raw=self._best.raw,
            best_score=self._best.score,
            mean_score=mean_score,
            distinct_evaluations=self._counter.distinct_evaluations,
            best_config=self._best.genome.as_dict(),
        )

    # -- front bookkeeping ---------------------------------------------------------

    def _signature(self) -> tuple:
        """Canonical fingerprint of the current non-dominated set.

        Built on code vectors: signatures are only ever compared for
        equality (stall detection), and within one space codes identify a
        design exactly — no value decode needed.
        """
        return tuple(
            sorted(
                (ind.genome.codes, ind.scores)
                for ind in self._finite_front()
            )
        )

    def _finite_front(self) -> list[ParetoIndividual]:
        """Deduplicated feasible front-0 members of the current population."""
        finite = [
            ind
            for ind in self._population
            if all(score != float("-inf") for score in ind.scores)
        ]
        fronts = non_dominated_sort(finite) if finite else [[]]
        seen: set[tuple] = set()
        front = []
        for ind in fronts[0]:
            if ind.genome.codes not in seen:
                seen.add(ind.genome.codes)
                front.append(ind)
        return front

    def _projected_best(self) -> Individual:
        """The population's best design on the first objective, as an
        :class:`Individual`, for the record/curve projection."""
        best = max(self._population, key=lambda ind: ind.scores[0])
        return Individual(best.genome, best.scores[0], best.raws[0])

    def front(self) -> list[ParetoIndividual]:
        """The current non-dominated set (live view, callable mid-run)."""
        if not self.started:
            raise NautilusError("search has not started")
        return self._finite_front()

    def front_raws(self) -> list[tuple[float, ...]]:
        """Raw metric tuples of the current front, sorted by the first."""
        return sorted(ind.raws for ind in self.front())

    # -- results -------------------------------------------------------------------

    def result(self) -> ParetoResult:
        """Package the non-dominated set reached so far."""
        if self._best is None:
            raise NautilusError("search has not started")
        return ParetoResult(
            self.objectives,
            self._finite_front(),
            self._counter.distinct_evaluations,
            eval_stats=self._counter.stats(),
            label=self.label,
            stop_reason=self.stop_reason or "cancelled",
            records=self.records,
            events=self.trace_events,
        )

    def run(self) -> ParetoResult:
        """Evolve the population and return the final non-dominated set."""
        return super().run()

    @staticmethod
    def _rank(population: list[ParetoIndividual]) -> None:
        for front in non_dominated_sort(population):
            crowding_distances(front)
